"""Ablation — the Store Sets footprint-scale substitution (DESIGN.md §2).

Documents how the calibrated SSIT-pressure emulation affects Store Sets:
with a literal 8K SSIT our few-hundred-instruction synthetic programs never
alias, which would hide the paper's Fig. 9 result entirely.
"""

from repro.experiments import run_ipc_suite
from repro.experiments.suite import PREDICTOR_FACTORIES
from repro.predictors import StoreSets

from conftest import bench_suite, bench_uops, run_once


def test_footprint_scale_sensitivity(benchmark):
    def run():
        results = {}
        original = PREDICTOR_FACTORIES["store-sets"]
        try:
            for scale in (1, 64, 192):
                PREDICTOR_FACTORIES["store-sets"] = (
                    lambda s=scale: StoreSets(footprint_scale=s)
                )
                suite = run_ipc_suite(["store-sets"], bench_suite(),
                                      bench_uops())
                results[scale] = suite.geomean("store-sets")
        finally:
            PREDICTOR_FACTORIES["store-sets"] = original
        return results

    results = run_once(benchmark, run)
    print()
    for scale, geomean in results.items():
        print(f"footprint_scale={scale:4d}: {100 * (geomean - 1):+.3f}% "
              "vs perfect MDP")
    print("Paper anchor: Store Sets ~6% behind MDP-only MASCOT (Fig. 9).")
    assert results[1] > results[192]  # pressure must cost performance
