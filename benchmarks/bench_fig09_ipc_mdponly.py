"""Fig. 9 — MDP-only IPC: Store Sets / PHAST / MASCOT-MDP vs perfect MDP.

Paper: MDP-only MASCOT beats Store Sets by 6.2% and PHAST by 0.4%; on some
benchmarks (gcc4, gcc5, mcf, nab) real predictors beat the conservative
oracle.
"""

from repro.experiments import fig9_ipc_mdp_only

from conftest import bench_suite, bench_uops, run_once, suite_kwargs


def test_fig9_ipc_mdp_only(benchmark):
    result = run_once(
        benchmark, lambda: fig9_ipc_mdp_only(bench_suite(), bench_uops(),
                                   **suite_kwargs())
    )
    print()
    print(result.render())
    g = {p: result.geomean(p) for p in result.predictors}
    print(f"MASCOT-MDP vs Store Sets: "
          f"{100 * (g['mascot-mdp'] / g['store-sets'] - 1):+.2f}% "
          f"(paper: +6.2%)")
    print(f"MASCOT-MDP vs PHAST: "
          f"{100 * (g['mascot-mdp'] / g['phast'] - 1):+.2f}% "
          f"(paper: +0.4%)")
    assert g["mascot-mdp"] >= g["store-sets"] * 0.999
    assert g["mascot-mdp"] >= g["phast"] * 0.995
