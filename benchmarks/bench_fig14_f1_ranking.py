"""Fig. 14 — F1 scores of entries ranked within each table.

Paper observations: table 1's worst entries still rank like table 2's top
entries (grow it); tables 5-8's tails are cold (shrink them) — the analysis
behind MASCOT-OPT.
"""

from repro.analysis import suggest_table_sizes
from repro.experiments import fig14_f1_ranking
from repro.predictors.configs import MASCOT_DEFAULT

from conftest import bench_suite, bench_uops, run_once, suite_kwargs


def test_fig14_f1_ranking(benchmark):
    result = run_once(
        benchmark,
        lambda: fig14_f1_ranking(bench_suite(), bench_uops(),
                                 period_loads=5_000, **suite_kwargs()),
    )
    print()
    print(result.render())
    suggestion = suggest_table_sizes(result.profile,
                                     MASCOT_DEFAULT.table_entries)
    print(f"heuristic size suggestion: {suggestion}")
    print(f"paper's MASCOT-OPT sizes : [1024, 512, 512, 512, 256, 256, "
          f"256, 128]")
    # Early tables carry more useful entries than late ones.
    early = sum(result.profile.table_mean(t) for t in range(4))
    late = sum(result.profile.table_mean(t) for t in range(4, 8))
    assert early > late
