"""Table II — predictor configuration and storage budgets.

Paper values: Store Sets 18.5 KB, NoSQ 19 KB, PHAST 14.5 KB, MASCOT 14 KB
(plus Fig. 15's MASCOT-OPT at 11.8 KiB and tags-4 at 10.1 KiB).
"""

import pytest

from repro.experiments import table2_sizes

from conftest import run_once


def test_table2_sizes(benchmark):
    result = run_once(benchmark, table2_sizes)
    print()
    print(result.render())
    by_name = {row.name: row for row in result.rows}
    assert by_name["phast"].kib == pytest.approx(14.5)
    assert by_name["mascot"].kib == pytest.approx(14.0)
    assert by_name["nosq"].kib == pytest.approx(19.0)
    assert by_name["mascot-opt-tag4"].kib == pytest.approx(10.1, abs=0.05)
