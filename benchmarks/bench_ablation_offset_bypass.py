"""Ablation — offset-capable bypassing (Sec. IV-E extension).

The paper argues same-address bypassing covers "the vast majority" of
opportunities and that a shifting field could add OFFSET-class bypasses.
This bench measures what that extension buys: MASCOT with offset bypassing
vs default, on the benchmarks with the largest Offset shares.
"""

from repro.experiments import run_ipc_suite

from conftest import bench_suite, bench_uops, run_once


def test_offset_bypass_extension(benchmark):
    def run():
        return run_ipc_suite(["mascot", "mascot-offset"],
                             bench_suite(), bench_uops())

    suite = run_once(benchmark, run)
    base = suite.geomean("mascot")
    extended = suite.geomean("mascot-offset")
    print()
    print(f"mascot          : {100 * (base - 1):+.3f}% vs perfect MDP")
    print(f"mascot + offset : {100 * (extended - 1):+.3f}% vs perfect MDP")
    print("Paper expectation: a small additional gain — Fig. 2 shows the "
          "Offset class is a minor share of opportunities.")
    # The extension must not hurt, and cannot exceed a modest delta.
    assert extended >= base - 0.002
