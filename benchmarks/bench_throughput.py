"""Engine throughput — scalar reference vs batched hot path.

Times the fig7 IPC cell (perlbench1 × mascot × golden-cove) under both
timing engines and prints the speedup.  The committed perf baseline lives
in ``benchmarks/BENCH_throughput.json`` (regenerate with ``repro
bench-baseline``; CI checks it with ``--check``); this bench is the
interactive view of the same measurement.

Run:  pytest benchmarks/bench_throughput.py --benchmark-only -s
"""

from repro.experiments.bench_baseline import (
    DEFAULT_CELLS,
    FIG7_MIN_SPEEDUP,
    measure_cell,
)

from conftest import run_once


def test_fig7_cell_speedup(benchmark):
    """Batched engine holds the ≥5× floor on the headline cell."""
    fig7 = DEFAULT_CELLS[0]

    def run():
        return measure_cell(fig7, repeats=3)

    row = run_once(benchmark, run)
    print()
    print(f"{fig7.label}: scalar {row['scalar_s']}s "
          f"({row['scalar_kuops_per_s']} kuops/s), "
          f"batched {row['batched_s']}s "
          f"({row['batched_kuops_per_s']} kuops/s) "
          f"-> {row['speedup']}x")
    assert row["speedup"] >= FIG7_MIN_SPEEDUP


def test_secondary_cells_speedup(benchmark):
    """The non-headline baseline cells also come out well ahead."""

    def run():
        return [measure_cell(cell, repeats=2) for cell in DEFAULT_CELLS[1:]]

    rows = run_once(benchmark, run)
    print()
    for row in rows:
        print(f"{row['benchmark']} x {row['predictor']} x {row['core']}: "
              f"scalar {row['scalar_s']}s, batched {row['batched_s']}s "
              f"-> {row['speedup']}x")
    for row in rows:
        assert row["speedup"] > 1.5
