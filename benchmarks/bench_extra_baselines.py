"""Additional historical baselines — TAGE-MDP and IDist+StoreSets.

Sec. II describes both designs; neither appears in the paper's headline
figures, but they bracket MASCOT's lineage: TAGE-MDP is the ancestor whose
3-bit distance field and single usefulness bit MASCOT generalises, and
IDist+StoreSets is the split MDP/SMB design whose doubled storage MASCOT's
unification eliminates.
"""

from repro.experiments import make_predictor, run_ipc_suite, render_table

from conftest import bench_suite, bench_uops, run_once


def test_extra_baselines(benchmark):
    predictors = ["tage-mdp", "idist+store-sets", "phast", "mascot"]

    def run():
        return run_ipc_suite(predictors, bench_suite(), bench_uops())

    suite = run_once(benchmark, run)
    rows = []
    for name in predictors:
        rows.append([
            name,
            f"{100 * (suite.geomean(name) - 1):+.3f}%",
            f"{make_predictor(name).storage_kib:.1f}",
        ])
    print()
    print(render_table(
        ["predictor", "IPC vs perfect MDP", "KiB"],
        rows,
        title="Historical baselines (Sec. II) vs MASCOT",
    ))
    # MASCOT dominates both ancestors.
    assert suite.geomean("mascot") > suite.geomean("tage-mdp")
    assert suite.geomean("mascot") > suite.geomean("idist+store-sets")
