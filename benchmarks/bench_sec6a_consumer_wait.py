"""Sec. VI-A analysis — issue-stage waits of load consumers.

Paper: "for instructions that depend on one load or more, the average
number of cycles spent in the issue stage waiting for dependencies"
drops from 38.7 to 15.7 cycles (-60%) for perlbench2 when bypassing is
enabled, but only -1.9% for lbm — perlbench is peculiarly sensitive to
load values arriving early.
"""

from repro.core import Pipeline
from repro.experiments import default_cache, make_predictor, render_table

from conftest import bench_uops, run_once


def test_consumer_wait_reduction(benchmark):
    def run():
        cache = default_cache()
        rows = {}
        for bench in ("perlbench2", "lbm"):
            trace = cache.get(bench, bench_uops())
            no_smb = Pipeline(make_predictor("mascot-mdp")).run(trace)
            smb = Pipeline(make_predictor("mascot")).run(trace)
            rows[bench] = (no_smb.mean_consumer_wait, smb.mean_consumer_wait)
        return rows

    rows = run_once(benchmark, run)
    table = []
    cuts = {}
    for bench, (before, after) in rows.items():
        cut = 100.0 * (1.0 - after / before) if before else 0.0
        cuts[bench] = cut
        table.append([bench, f"{before:.1f}", f"{after:.1f}", f"{cut:.1f}%"])
    print()
    print(render_table(
        ["benchmark", "wait w/o SMB", "wait w/ SMB", "reduction"],
        table,
        title="Sec. VI-A — issue-stage wait of load consumers "
              "(paper: perlbench2 -60%, lbm -1.9%)",
    ))
    # Shape: bypassing helps both, but perlbench2 far more than lbm.
    assert cuts["perlbench2"] > 0
    assert cuts["perlbench2"] > cuts["lbm"]
