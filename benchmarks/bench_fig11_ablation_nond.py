"""Fig. 11 — MASCOT vs a TAGE-like predictor without non-dependence
allocation.

Paper: the ablation accumulates more than 12x the false dependencies and
loses most of the SMB gains (decayed entries lose bypass confidence).
"""

from repro.experiments import fig11_ablation

from conftest import bench_suite, bench_uops, run_once, suite_kwargs


def test_fig11_ablation(benchmark):
    result = run_once(
        benchmark, lambda: fig11_ablation(bench_suite(), bench_uops(), **suite_kwargs())
    )
    print()
    print(result.render())
    print(f"false-dependence ratio (ablation / MASCOT): "
          f"{result.false_dep_ratio:.1f}x (paper: >12x)")
    assert result.false_dep_ratio > 2.0
    assert result.ipc.geomean("mascot") >= result.ipc.geomean("tage-no-nd")
