"""Fig. 12 — MASCOT and the perfect MDP+SMB ceiling on larger cores.

Paper: the SMB ceiling over perfect MDP rises from 2.1% (Golden Cove) to
2.8% (Lion Cove); MASCOT's gain rises from 1.0% to 1.3%.
"""

from repro.experiments import fig12_future_architectures

from conftest import bench_suite, bench_uops, run_once, suite_kwargs


def test_fig12_future_architectures(benchmark):
    result = run_once(
        benchmark,
        lambda: fig12_future_architectures(bench_suite(), bench_uops(),
                                           **suite_kwargs()),
    )
    print()
    print(result.render())
    golden = result.geomeans["golden-cove"]
    lion = result.geomeans["lion-cove"]
    # The ceiling exists on both cores and MASCOT captures part of it.
    assert golden["perfect-mdp-smb"] > 1.0
    assert lion["perfect-mdp-smb"] > 1.0
    assert golden["mascot"] <= golden["perfect-mdp-smb"] + 1e-9
    assert lion["mascot"] <= lion["perfect-mdp-smb"] + 1e-9
