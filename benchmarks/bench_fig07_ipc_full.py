"""Fig. 7 — IPC of NoSQ / PHAST / MASCOT (MDP+SMB) vs perfect MDP.

Paper: MASCOT beats NoSQ by 4.9%, PHAST by 1.9% and perfect MDP by 1.0%
(geometric means); peak gains on perlbench2.
"""

from repro.experiments import fig7_ipc_full

from conftest import bench_suite, bench_uops, run_once, suite_kwargs


def test_fig7_ipc_full(benchmark):
    result = run_once(
        benchmark, lambda: fig7_ipc_full(bench_suite(), bench_uops(), **suite_kwargs())
    )
    print()
    print(result.render())
    g = {p: result.geomean(p) for p in result.predictors}
    print(f"MASCOT vs NoSQ : {100 * (g['mascot'] / g['nosq'] - 1):+.2f}% "
          f"(paper: +4.9%)")
    print(f"MASCOT vs PHAST: {100 * (g['mascot'] / g['phast'] - 1):+.2f}% "
          f"(paper: +1.9%)")
    print(f"MASCOT vs perfect MDP: {100 * (g['mascot'] - 1):+.2f}% "
          f"(paper: +1.0%)")
    # Shape assertions: the ordering the paper reports.
    assert g["mascot"] > g["phast"]
    assert g["mascot"] > g["nosq"]
    assert g["nosq"] < 1.0  # NoSQ underperforms perfect MDP
