"""Shared configuration for the figure-regeneration benches.

Every bench regenerates one of the paper's tables or figures and prints
the same rows/series the paper reports.  Scale is controlled by two
environment variables so the default run stays minutes-fast in pure
Python while a full regeneration remains one command away:

* ``REPRO_BENCH_UOPS``  — dynamic micro-ops per benchmark (default 40000).
* ``REPRO_BENCH_FULL``  — set to 1 to run the complete 22-benchmark suite
  instead of the 10-benchmark representative subset.
* ``REPRO_BENCH_JOBS``  — worker processes for suite cells (default 1;
  results are bit-identical for any value).
* ``REPRO_BENCH_CACHE`` — on-disk result cache: unset/``0`` disables,
  ``1`` uses the default directory ($REPRO_CACHE_DIR or
  ~/.cache/repro-mascot), anything else is used as the directory.  A warm
  cache makes a figure regeneration skip every unchanged simulation.

Fault tolerance (see docs/resilience.md; all unset by default, which
keeps the historical fail-fast behaviour):

* ``REPRO_BENCH_TIMEOUT``    — per-cell wall-clock timeout in seconds.
* ``REPRO_BENCH_RETRIES``    — extra attempts per failed cell.
* ``REPRO_BENCH_KEEP_GOING`` — set to 1 to mark exhausted cells as failed
  and complete the rest of the grid instead of aborting the bench.

Run:  pytest benchmarks/ --benchmark-only -s
"""

import os

import pytest

#: Representative subset covering the paper's contrasts: dependence-rich
#: (perlbench, lbm, xz), pointer-chasing (mcf), branchy integer (gcc,
#: deepsjeng), register-resident (exchange2) and streaming FP (bwaves, wrf).
REPRESENTATIVE_SUITE = [
    "perlbench1", "perlbench2", "gcc4", "mcf", "deepsjeng", "exchange2",
    "xz", "bwaves", "lbm", "wrf",
]


def bench_uops() -> int:
    return int(os.environ.get("REPRO_BENCH_UOPS", "40000"))


def bench_suite():
    if os.environ.get("REPRO_BENCH_FULL") == "1":
        from repro.trace import suite_names
        return suite_names()
    return list(REPRESENTATIVE_SUITE)


def bench_jobs() -> int:
    return int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def bench_cache():
    value = os.environ.get("REPRO_BENCH_CACHE", "0")
    if value == "0":
        return False
    if value == "1":
        return True
    return value


def bench_policy():
    """ResiliencePolicy from REPRO_BENCH_*, or None when all are unset."""
    timeout = os.environ.get("REPRO_BENCH_TIMEOUT")
    retries = os.environ.get("REPRO_BENCH_RETRIES")
    keep_going = os.environ.get("REPRO_BENCH_KEEP_GOING") == "1"
    if timeout is None and retries is None and not keep_going:
        return None
    from repro.experiments import ResiliencePolicy
    return ResiliencePolicy(
        cell_timeout=float(timeout) if timeout else None,
        retries=int(retries) if retries else 0,
        fail_fast=not keep_going,
    )


def suite_kwargs():
    """``jobs=``/``cache=``/``policy=`` keywords for the figure calls."""
    kwargs = {"jobs": bench_jobs(), "cache": bench_cache()}
    policy = bench_policy()
    if policy is not None:
        kwargs["policy"] = policy
    return kwargs


@pytest.fixture
def suite():
    return bench_suite()


@pytest.fixture
def uops():
    return bench_uops()


@pytest.fixture
def jobs():
    return bench_jobs()


def run_once(benchmark, fn):
    """Run a figure generator exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def bench_trace(benchmark_name: str, num_uops=None):
    """Memoised trace for throughput benches.

    Delegates to :func:`repro.trace.fixture_cache.cached_trace`, the same
    bounded process-wide cache ``tests/conftest.py`` uses — when tests and
    benches run in one pytest invocation, identical parameters generate
    the trace once.
    """
    from repro.trace.fixture_cache import cached_trace

    return cached_trace(benchmark_name, num_uops or bench_uops())
