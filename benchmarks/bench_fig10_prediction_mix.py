"""Fig. 10 — distribution of MASCOT prediction and misprediction types.

Paper: over 80% of predictions are no-dependence; SMB mispredictions are a
small share except for mcf.
"""

from repro.common.statistics import arithmetic_mean
from repro.experiments import fig10_prediction_mix

from conftest import bench_suite, bench_uops, run_once, suite_kwargs


def test_fig10_prediction_mix(benchmark):
    result = run_once(
        benchmark, lambda: fig10_prediction_mix(bench_suite(), bench_uops(),
                                      **suite_kwargs())
    )
    print()
    print(result.render())
    mean_nodep = arithmetic_mean(
        per["no_dep"] for per in result.prediction_mix.values()
    )
    print(f"mean no-dependence prediction share: {mean_nodep:.1f}% "
          "(paper: >80%)")
    assert mean_nodep > 50.0
