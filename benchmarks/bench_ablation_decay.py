"""Ablation — periodic usefulness decay (Sec. IV-C).

The paper: "We did not find any meaningful changes in performance from
periodically decrementing all usefulness counters", crediting the 4-way
sets and the try-again allocation's set-wide decrements.  This bench checks
that claim holds in the reproduction.
"""

from repro.experiments import run_ipc_suite

from conftest import bench_suite, bench_uops, run_once


def test_periodic_decay_changes_little(benchmark):
    def run():
        return run_ipc_suite(["mascot", "mascot-decay"],
                             bench_suite(), bench_uops())

    suite = run_once(benchmark, run)
    base = suite.geomean("mascot")
    decayed = suite.geomean("mascot-decay")
    delta = 100 * (decayed / base - 1)
    print()
    print(f"mascot        : {100 * (base - 1):+.3f}% vs perfect MDP")
    print(f"mascot + decay: {100 * (decayed - 1):+.3f}% vs perfect MDP")
    print(f"delta: {delta:+.3f}% (paper: no meaningful change)")
    assert abs(delta) < 0.5
