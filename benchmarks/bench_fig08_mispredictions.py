"""Fig. 8 — total mispredictions and false-dep/speculative split.

Paper: MASCOT reduces total errors by 98% vs NoSQ and 85% vs PHAST;
false dependencies drop 91% and speculative errors 39% vs PHAST.
"""

from repro.experiments import fig8_mispredictions

from conftest import bench_suite, bench_uops, run_once, suite_kwargs


def test_fig8_mispredictions(benchmark):
    result = run_once(
        benchmark, lambda: fig8_mispredictions(bench_suite(), bench_uops(),
                                     **suite_kwargs())
    )
    print()
    print(result.render())
    print(f"reduction vs NoSQ : {result.reduction_vs('mascot', 'nosq'):.1f}%"
          " (paper: 98%)")
    print(f"reduction vs PHAST: {result.reduction_vs('mascot', 'phast'):.1f}%"
          " (paper: 85%)")
    fd_cut = 100 * (1 - result.false_dependencies["mascot"]
                    / max(result.false_dependencies["phast"], 1))
    print(f"false-dependence cut vs PHAST: {fd_cut:.1f}% (paper: 91%)")
    assert result.totals["mascot"] < result.totals["phast"]
    assert result.totals["mascot"] < result.totals["nosq"]
    assert (result.false_dependencies["mascot"]
            < result.false_dependencies["phast"])
