"""Window scaling — Fig. 12 generalised to a ROB-size curve.

The paper's Sec. VI-C argument: "the potential gains of SMB are raised" as
core structures grow.  This bench sweeps the ROB (with LQ/SB scaled
proportionally) and checks the perfect-MDP+SMB ceiling grows with it.
"""

from repro.experiments import sweep_core_parameter, render_table

from conftest import bench_suite, bench_uops, run_once


def test_window_scaling(benchmark):
    variations = [
        {"rob_size": 256, "iq_size": 128, "lq_size": 96, "sb_size": 64},
        {"rob_size": 512, "iq_size": 204, "lq_size": 192, "sb_size": 114},
        {"rob_size": 768, "iq_size": 288, "lq_size": 256, "sb_size": 160},
    ]

    def run():
        return sweep_core_parameter(
            variations, ["perfect-mdp-smb", "mascot"],
            benchmarks=bench_suite()[:6], num_uops=bench_uops(),
        )

    result = run_once(benchmark, run)
    rows = []
    for point in result.points:
        rows.append([
            point.config.rob_size,
            f"{100 * (point.geomean('perfect-mdp-smb') - 1):+.2f}%",
            f"{100 * (point.geomean('mascot') - 1):+.2f}%",
        ])
    print()
    print(render_table(
        ["ROB", "perfect MDP+SMB ceiling", "MASCOT"],
        rows,
        title="Sec. VI-C generalised — SMB headroom vs window size "
              "(each point vs its own perfect MDP)",
    ))
    ceilings = [p.geomean("perfect-mdp-smb") for p in result.points]
    assert ceilings[-1] >= ceilings[0] - 0.002
