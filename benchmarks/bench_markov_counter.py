"""Footnote 1 — expected drain time of a saturating confidence counter.

Paper: a 3-bit counter initialised to max with a 70%-dependent load needs
an expected 1,625 predictions to reach 0 — why decrement-only unlearning
is slow and MASCOT allocates non-dependence entries instead.
"""

import pytest

from repro.analysis import expected_drain_from_max
from repro.experiments import render_table

from conftest import run_once


def test_markov_counter_drain(benchmark):
    value = run_once(benchmark, lambda: expected_drain_from_max(3, 0.7))
    rows = [
        [bits, p, f"{expected_drain_from_max(bits, p):.1f}"]
        for bits in (2, 3, 4)
        for p in (0.5, 0.6, 0.7)
    ]
    print()
    print(render_table(
        ["counter bits", "P(correct)", "expected predictions to drain"],
        rows,
        title="Footnote 1 — drain time of decrement-only unlearning",
    ))
    assert value == pytest.approx(1625, rel=0.01)
