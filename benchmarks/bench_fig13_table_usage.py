"""Fig. 13 — distribution of predictions made from each MASCOT table.

Paper shape: table 1 (PC-only) serves the largest tagged share, longer
tables progressively less, and the base predictor covers the cold misses.
"""

from repro.experiments import fig13_table_usage

from conftest import bench_suite, bench_uops, run_once, suite_kwargs


def test_fig13_table_usage(benchmark):
    result = run_once(
        benchmark, lambda: fig13_table_usage(bench_suite(), bench_uops(),
                                   **suite_kwargs())
    )
    print()
    print(result.render())
    tagged = result.shares[:-1]
    assert tagged[0] == max(tagged)  # table 1 dominates the tagged tables
    assert abs(sum(result.shares) - 100.0) < 1e-6
