"""Fig. 2 — percentage of loads with a prior-store dependence, by class.

Paper shape: the same-size aligned case (DirectBypass) dominates; perlbench
and lbm show ~40% of loads with SMB opportunities, bwaves and wrf ~5%.
"""

from repro.experiments import fig2_smb_opportunities

from conftest import bench_suite, bench_uops, run_once


def test_fig2_smb_opportunities(benchmark):
    result = run_once(
        benchmark,
        lambda: fig2_smb_opportunities(bench_suite(), bench_uops()),
    )
    print()
    print(result.render())

    for bench, per in result.percentages.items():
        assert per["DirectBypass"] >= per["Offset"], bench

    rich = result.percentages.get("perlbench1") or next(
        iter(result.percentages.values())
    )
    if "bwaves" in result.percentages:
        sparse = result.percentages["bwaves"]
        assert sum(rich.values()) > sum(sparse.values())
