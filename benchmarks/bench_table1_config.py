"""Table I — system configuration of the modelled cores."""

from repro.core.config import GOLDEN_COVE, LION_COVE
from repro.experiments import table1_configuration

from conftest import run_once


def test_table1_golden_cove(benchmark):
    result = run_once(benchmark, lambda: table1_configuration(GOLDEN_COVE))
    print()
    print(result.render())
    assert "512/204/192/114" in result.rows["ROB/IQ/LQ/SB"]


def test_table1_lion_cove(benchmark):
    result = run_once(benchmark, lambda: table1_configuration(LION_COVE))
    print()
    print(result.render())
    assert "576" in result.rows["ROB/IQ/LQ/SB"]
