"""Sec. IV-B — grid sensitivity over MASCOT's counter widths.

"The sizes of counters and the global history lengths were selected via a
grid-based sensitivity study."  This bench runs a small instance of that
study and checks the paper's chosen point (3-bit usefulness, 2-bit bypass)
sits on the accuracy/storage Pareto front of the grid.
"""

from repro.analysis import ParameterGrid, SensitivityStudy
from repro.experiments import render_table

from conftest import bench_suite, bench_uops, run_once


def test_counter_width_grid(benchmark):
    def run():
        grid = ParameterGrid({
            "usefulness_bits": [2, 3, 4],
            "bypass_bits": [1, 2],
        })
        study = SensitivityStudy(grid, benchmarks=bench_suite()[:4])
        return study.run(num_uops=bench_uops())

    results = run_once(benchmark, run)
    rows = [
        [str(p.parameters), f"{p.misprediction_rate:.4f}",
         f"{p.storage_kib:.1f}"]
        for p in results.ranked()
    ]
    print()
    print(render_table(
        ["parameters", "misprediction rate", "KiB"],
        rows,
        title="Sec. IV-B — counter-width sensitivity grid",
    ))
    front = results.pareto_front()
    print("Pareto front:", [p.parameters for p in front])
    paper_point = {"usefulness_bits": 3, "bypass_bits": 2}
    ranked = results.ranked()
    paper_rank = next(
        i for i, p in enumerate(ranked) if p.parameters == paper_point
    )
    print(f"paper's (3,2) choice ranks {paper_rank + 1} of {len(ranked)} "
          "by misprediction rate")
    # The paper's choice must rank in the better half of the grid.
    assert paper_rank < len(ranked) / 2 + 1
