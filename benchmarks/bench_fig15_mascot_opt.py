"""Fig. 15 — the area-optimised MASCOT variants.

Paper: MASCOT-OPT loses 0.09% IPC at 11.8 KiB; reducing tags by 4 bits
loses 0.13% total at 10.1 KiB.
"""

import pytest

from repro.experiments import fig15_mascot_opt

from conftest import bench_suite, bench_uops, run_once, suite_kwargs


def test_fig15_mascot_opt(benchmark):
    result = run_once(
        benchmark, lambda: fig15_mascot_opt(bench_suite(), bench_uops(), **suite_kwargs())
    )
    print()
    print(result.render())
    ratio_opt, kib_opt = result.points["mascot-opt"]
    ratio_tag4, kib_tag4 = result.points["mascot-opt-tag4"]
    print(f"MASCOT-OPT    : {100 * (ratio_opt - 1):+.2f}% IPC at "
          f"{kib_opt:.2f} KiB (paper: -0.09% at 11.8 KiB)")
    print(f"MASCOT-OPT -4b: {100 * (ratio_tag4 - 1):+.2f}% IPC at "
          f"{kib_tag4:.2f} KiB (paper: -0.13% at 10.1 KiB)")
    assert kib_tag4 == pytest.approx(10.1, abs=0.1)
    # The compact variants stay within ~1% of full MASCOT.
    assert ratio_opt > 0.99
    assert ratio_tag4 > 0.98
