"""Entry-usage tuning via periodic F1 scores (Sec. IV-F, Figs. 13–15).

The methodology: run MASCOT with per-entry true-positive / false-positive /
false-negative counters; every *period* (the paper uses 1 M cycles; we use a
committed-load count, the natural unit of a trace-driven model), compute
each entry's F1 score, **sort entries within each table by score**, record
the ranked vector, reset the counters, and finally average the ranked
vectors across periods (and benchmarks).  Tables whose worst-ranked entries
still score high deserve growth; tables whose tails are ~0 can shrink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..common.statistics import f1_score
from ..predictors.mascot import Mascot

__all__ = ["F1Recorder", "RankedF1Profile", "merge_profiles",
           "suggest_table_sizes"]


@dataclass
class RankedF1Profile:
    """Averaged rank-ordered F1 scores, one vector per table (Fig. 14)."""

    #: ranked[t][r] = mean F1 of the rank-r entry (best first) of table t.
    ranked: List[List[float]]
    periods: int

    def table_mean(self, table: int) -> float:
        scores = self.ranked[table]
        return sum(scores) / len(scores) if scores else 0.0

    def occupied_fraction(self, table: int, threshold: float = 1e-9) -> float:
        """Fraction of entry slots with a non-trivial mean F1."""
        scores = self.ranked[table]
        if not scores:
            return 0.0
        return sum(1 for s in scores if s > threshold) / len(scores)

    # -- serialisation (on-disk result cache) ----------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form; inverse of :meth:`from_dict`.

        Floats survive a JSON round-trip exactly (repr-based encoding), so
        a cached profile is bit-identical to the freshly computed one.
        """
        return {"ranked": self.ranked, "periods": self.periods}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RankedF1Profile":
        return cls(ranked=[[float(s) for s in table]
                           for table in data["ranked"]],
                   periods=int(data["periods"]))


class F1Recorder:
    """Drives the periodic record/sort/reset cycle on a tracking MASCOT.

    Use with ``Mascot(config, track_f1=True)``; call :meth:`tick` once per
    committed load and :meth:`finish` at the end of the run.
    """

    def __init__(self, predictor: Mascot, period_loads: int = 20_000):
        if not predictor.track_f1:
            raise ValueError("predictor must be built with track_f1=True")
        if period_loads <= 0:
            raise ValueError("period must be positive")
        self.predictor = predictor
        self.period_loads = period_loads
        self._loads = 0
        self._periods = 0
        num_tables = predictor.config.num_tables
        self._sums: List[List[float]] = [
            [0.0] * predictor.config.table_entries[t] for t in range(num_tables)
        ]

    def tick(self) -> None:
        """Account one committed load; closes a period when due."""
        self._loads += 1
        if self._loads % self.period_loads == 0:
            self._record_period()

    def _record_period(self) -> None:
        config = self.predictor.config
        for t, table in enumerate(self.predictor.bank.tables):
            scores = [0.0] * config.table_entries[t]
            position = 0
            for _, _, entry in table.entries():
                scores[position] = f1_score(entry.tp, entry.fp, entry.fn)
                position += 1
            scores.sort(reverse=True)
            sums = self._sums[t]
            for r, s in enumerate(scores):
                sums[r] += s
        self._periods += 1
        self.predictor.reset_f1_scores()

    def finish(self) -> RankedF1Profile:
        """Close any partial period and return the averaged profile."""
        if self._loads % self.period_loads:
            self._record_period()
        periods = max(self._periods, 1)
        ranked = [[s / periods for s in sums] for sums in self._sums]
        return RankedF1Profile(ranked=ranked, periods=periods)


def merge_profiles(profiles: Sequence[RankedF1Profile]) -> RankedF1Profile:
    """Average ranked profiles across benchmarks (Sec. IV-F: "averaging
    across all benchmarks")."""
    if not profiles:
        raise ValueError("no profiles to merge")
    num_tables = len(profiles[0].ranked)
    merged: List[List[float]] = []
    for t in range(num_tables):
        length = max(len(p.ranked[t]) for p in profiles)
        sums = [0.0] * length
        for p in profiles:
            for r, s in enumerate(p.ranked[t]):
                sums[r] += s
        merged.append([s / len(profiles) for s in sums])
    return RankedF1Profile(ranked=merged,
                           periods=sum(p.periods for p in profiles))


def suggest_table_sizes(
    profile: RankedF1Profile,
    current_sizes: Sequence[int],
    grow_threshold: float = 0.5,
    shrink_threshold: float = 0.5,
) -> List[int]:
    """Apply the paper's two observations mechanically.

    * A table whose **worst-ranked** entry still scores above
      ``grow_threshold`` of its best is under-provisioned → double it.
    * A table whose tail half scores below ``shrink_threshold`` of its best
      is over-provisioned → halve it (quarter it if the tail 3/4 is cold).

    This reproduces the direction of the paper's manual tuning (grow table
    1, halve tables 5–7, quarter table 8); exact outcomes depend on the
    workload mix, which is why Sec. VI-D fixes the final sizes by hand.
    """
    suggestions: List[int] = []
    for t, size in enumerate(current_sizes):
        scores = profile.ranked[t]
        best = scores[0] if scores else 0.0
        if best <= 0.0:
            suggestions.append(max(size // 4, 4))
            continue
        worst = scores[min(size, len(scores)) - 1]
        half = scores[min(size // 2, len(scores) - 1)]
        quarter = scores[min(size // 4, len(scores) - 1)]
        if worst >= grow_threshold * best:
            suggestions.append(size * 2)
        elif quarter < shrink_threshold * best:
            suggestions.append(max(size // 4, 4))
        elif half < shrink_threshold * best:
            suggestions.append(max(size // 2, 4))
        else:
            suggestions.append(size)
    return suggestions
