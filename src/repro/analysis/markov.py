"""Markov-chain analysis of saturating-counter drain times.

Paper footnote 1: with a 3-bit confidence counter initialised to its maximum
and a load that is dependent 70 % of the time, "it would take an expected
1,625 predictions before the entry reaches confidence 0" — the quantitative
argument for why decrement-only unlearning (PHAST, TAGE-no-ND) adapts so
slowly, motivating MASCOT's non-dependence allocation.

We reproduce the computation: the counter is a birth-death chain on states
``0..2**bits - 1`` absorbing at 0, moving up with probability ``p`` (correct
prediction, saturating at the top) and down with probability ``1 - p``.
"""

from __future__ import annotations

from typing import List

__all__ = [
    "expected_drain_steps",
    "expected_drain_from_max",
    "drain_step_table",
]


def expected_drain_steps(bits: int, p_increment: float, start: int) -> float:
    """Expected predictions until the counter first hits 0 from ``start``.

    Solves the first-passage linear system

    .. math:: E_i = 1 + p \\cdot E_{\\min(i+1, M)} + (1-p) \\cdot E_{i-1}

    with :math:`E_0 = 0` and :math:`M = 2^{bits} - 1`, by back-substitution
    (the chain is tridiagonal, so Gaussian elimination specialises to a
    two-pass sweep).
    """
    if bits <= 0:
        raise ValueError("counter width must be positive")
    if not 0.0 <= p_increment < 1.0:
        raise ValueError("p_increment must be in [0, 1) — at 1.0 the counter never drains")
    maximum = (1 << bits) - 1
    if not 0 <= start <= maximum:
        raise ValueError(f"start {start} out of range for {bits}-bit counter")
    if start == 0:
        return 0.0

    p = p_increment
    q = 1.0 - p
    # Express E_i = a_i + b_i * E_{i+1} for i = 1..M-1, derived bottom-up
    # from E_i = 1 + p E_{i+1} + q E_{i-1}:
    #   E_1 = 1 + p E_2 + q E_0 = 1 + p E_2            -> a_1 = 1/?, ...
    # Standard sweep: assume E_{i-1} known in terms of E_i.
    # We use the substitution E_i = alpha_i + beta_i * E_{i+1}.
    alpha: List[float] = [0.0] * (maximum + 1)
    beta: List[float] = [0.0] * (maximum + 1)
    # i = 1: E_1 = 1 + p E_2 + q*0  ->  alpha=1, beta=p.
    alpha[1] = 1.0
    beta[1] = p
    for i in range(2, maximum):
        # E_i = 1 + p E_{i+1} + q (alpha_{i-1} + beta_{i-1} E_i)
        denom = 1.0 - q * beta[i - 1]
        alpha[i] = (1.0 + q * alpha[i - 1]) / denom
        beta[i] = p / denom
    # Top state M: E_M = 1 + p E_M + q E_{M-1}  (increment saturates).
    #   E_M (1 - p) = 1 + q (alpha_{M-1} + beta_{M-1} E_M)
    if maximum == 1:
        expectations = [0.0, 1.0 / q]
    else:
        denom = q * (1.0 - beta[maximum - 1])
        e_max = (1.0 + q * alpha[maximum - 1]) / denom
        expectations = [0.0] * (maximum + 1)
        expectations[maximum] = e_max
        for i in range(maximum - 1, 0, -1):
            expectations[i] = alpha[i] + beta[i] * expectations[i + 1]
    return expectations[start]


def expected_drain_from_max(bits: int, p_increment: float) -> float:
    """Footnote 1's quantity: drain time starting from the saturated state."""
    return expected_drain_steps(bits, p_increment, (1 << bits) - 1)


def drain_step_table(bits: int, p_increment: float) -> List[float]:
    """Expected drain time from every starting state (0..max)."""
    maximum = (1 << bits) - 1
    return [expected_drain_steps(bits, p_increment, s)
            for s in range(maximum + 1)]
