"""Classification of prediction outcomes and accuracy accounting.

Implements the error taxonomy of Fig. 5 / Fig. 8:

* **false dependence** — a dependence was predicted but none existed.  For
  MDP this only delays the load; for SMB it squashes (the load obtained a
  value it should not have).
* **speculative error** — any outcome requiring a squash in the MDP sense:
  a missed dependence (predicted none, dependence existed), a conflict with
  a different store than predicted, or a bypass that delivered the wrong
  value (wrong store or non-bypassable overlap).

The same classification drives the Fig. 8 misprediction counts, the Fig. 10
prediction/misprediction mixes and the squash decisions of the timing model,
so accuracy-mode and timing-mode experiments can never disagree about what
counts as an error.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..predictors.base import ActualOutcome, Prediction, PredictionKind
from ..trace.uop import SAME_ADDRESS_BYPASSABLE, BypassClass

__all__ = [
    "OutcomeKind",
    "Outcome",
    "classify",
    "AccuracyStats",
    "DEFAULT_BYPASSABLE",
]

#: Overlap classes the default modelled bypass hardware supports
#: (Sec. IV-E: same-address bypassing; the load may be narrower than the
#: store).  Predictors built for shift-capable datapaths override this via
#: :attr:`repro.predictors.base.MDPredictor.bypassable_classes`.
DEFAULT_BYPASSABLE = SAME_ADDRESS_BYPASSABLE


class OutcomeKind(enum.Enum):
    """Joint classification of (prediction, ground truth)."""

    CORRECT_NODEP = "correct_nodep"
    CORRECT_MDP = "correct_mdp"        # right store, no bypass claimed
    CORRECT_SMB = "correct_smb"        # right store, bypass delivered
    FALSE_DEP_MDP = "false_dep_mdp"    # predicted MDP, no dependence
    FALSE_DEP_SMB = "false_dep_smb"    # predicted SMB, no dependence (squash)
    MISSED_DEP = "missed_dep"          # predicted none, dependence (squash)
    WRONG_STORE_MDP = "wrong_store_mdp"  # MDP named the wrong store (squash)
    WRONG_STORE_SMB = "wrong_store_smb"  # SMB named the wrong store (squash)
    SMB_NOT_BYPASSABLE = "smb_not_bypassable"  # right store, partial value (squash)

    @property
    def is_misprediction(self) -> bool:
        return self not in (
            OutcomeKind.CORRECT_NODEP,
            OutcomeKind.CORRECT_MDP,
            OutcomeKind.CORRECT_SMB,
        )

    @property
    def is_false_dependence(self) -> bool:
        """Fig. 8's 'false dependencies' bucket."""
        return self in (OutcomeKind.FALSE_DEP_MDP, OutcomeKind.FALSE_DEP_SMB)

    @property
    def is_speculative_error(self) -> bool:
        """Fig. 8's 'speculative errors' bucket (squash-causing)."""
        return self in (
            OutcomeKind.MISSED_DEP,
            OutcomeKind.WRONG_STORE_MDP,
            OutcomeKind.WRONG_STORE_SMB,
            OutcomeKind.SMB_NOT_BYPASSABLE,
            OutcomeKind.FALSE_DEP_SMB,
        )

    @property
    def causes_squash(self) -> bool:
        return self.is_speculative_error


@dataclass(frozen=True)
class Outcome:
    """The classification result for one dynamic load."""

    kind: OutcomeKind
    prediction: PredictionKind
    #: True when the named store matched exactly (distance or seq).
    store_match: bool


def _store_matches(prediction: Prediction, actual: ActualOutcome,
                   distance_cap: int = 127) -> bool:
    """Whether the prediction named the actual conflicting store."""
    if prediction.store_seq is not None and actual.store_seq is not None:
        return prediction.store_seq == actual.store_seq
    return prediction.distance == min(actual.distance, distance_cap)


def classify(prediction: Prediction, actual: ActualOutcome,
             bypassable_classes: frozenset = DEFAULT_BYPASSABLE) -> Outcome:
    """Map a (prediction, ground truth) pair onto the Fig. 5 decision tree."""
    pk = prediction.kind

    if pk is PredictionKind.NO_DEP:
        if actual.has_dependence:
            return Outcome(OutcomeKind.MISSED_DEP, pk, False)
        return Outcome(OutcomeKind.CORRECT_NODEP, pk, True)

    if not actual.has_dependence:
        kind = (OutcomeKind.FALSE_DEP_SMB if pk is PredictionKind.SMB
                else OutcomeKind.FALSE_DEP_MDP)
        return Outcome(kind, pk, False)

    match = _store_matches(prediction, actual)
    if pk is PredictionKind.MDP:
        if match:
            return Outcome(OutcomeKind.CORRECT_MDP, pk, True)
        return Outcome(OutcomeKind.WRONG_STORE_MDP, pk, False)

    # SMB prediction with an actual dependence.
    if not match:
        return Outcome(OutcomeKind.WRONG_STORE_SMB, pk, False)
    if actual.bypass in bypassable_classes:
        return Outcome(OutcomeKind.CORRECT_SMB, pk, True)
    return Outcome(OutcomeKind.SMB_NOT_BYPASSABLE, pk, True)


@dataclass
class AccuracyStats:
    """Aggregated outcome counts for one (benchmark, predictor) run."""

    loads: int = 0
    outcome_counts: Dict[OutcomeKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in OutcomeKind}
    )
    prediction_counts: Dict[PredictionKind, int] = field(
        default_factory=lambda: {kind: 0 for kind in PredictionKind}
    )
    instructions: int = 0

    def record(self, outcome: Outcome) -> None:
        self.loads += 1
        self.outcome_counts[outcome.kind] += 1
        self.prediction_counts[outcome.prediction] += 1

    # -- aggregate views -------------------------------------------------------

    @property
    def mispredictions(self) -> int:
        return sum(c for k, c in self.outcome_counts.items()
                   if k.is_misprediction)

    @property
    def false_dependencies(self) -> int:
        return sum(c for k, c in self.outcome_counts.items()
                   if k.is_false_dependence)

    @property
    def speculative_errors(self) -> int:
        return sum(c for k, c in self.outcome_counts.items()
                   if k.is_speculative_error)

    @property
    def squashes(self) -> int:
        return sum(c for k, c in self.outcome_counts.items()
                   if k.causes_squash)

    def mpki(self, instructions: Optional[int] = None) -> float:
        """Mispredictions per kilo-instruction.

        A run whose warmup covered the whole trace measures zero
        instructions and zero loads; its rate is defined as 0.0 rather
        than an error.  A zero denominator with recorded mispredictions
        is still rejected — that is an accounting bug, not an empty run.
        """
        count = instructions if instructions is not None else self.instructions
        if count <= 0:
            if count == 0 and self.mispredictions == 0:
                return 0.0
            raise ValueError("instruction count must be positive")
        return 1000.0 * self.mispredictions / count

    def misprediction_mix(self) -> Dict[PredictionKind, int]:
        """Fig. 10 (right): mispredictions bucketed by predicted type."""
        mix = {kind: 0 for kind in PredictionKind}
        for outcome_kind, count in self.outcome_counts.items():
            if not outcome_kind.is_misprediction:
                continue
            if outcome_kind in (OutcomeKind.FALSE_DEP_SMB,
                                OutcomeKind.WRONG_STORE_SMB,
                                OutcomeKind.SMB_NOT_BYPASSABLE):
                mix[PredictionKind.SMB] += count
            elif outcome_kind is OutcomeKind.MISSED_DEP:
                mix[PredictionKind.NO_DEP] += count
            else:
                mix[PredictionKind.MDP] += count
        return mix

    def merge(self, other: "AccuracyStats") -> None:
        self.loads += other.loads
        self.instructions += other.instructions
        for kind, count in other.outcome_counts.items():
            self.outcome_counts[kind] += count
        for kind, count in other.prediction_counts.items():
            self.prediction_counts[kind] += count

    # -- serialisation (on-disk result cache) ----------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form; inverse of :meth:`from_dict`."""
        return {
            "loads": self.loads,
            "instructions": self.instructions,
            "outcomes": {k.value: c for k, c in self.outcome_counts.items()},
            "predictions": {
                k.value: c for k, c in self.prediction_counts.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AccuracyStats":
        stats = cls(loads=int(data["loads"]),
                    instructions=int(data["instructions"]))
        for value, count in data["outcomes"].items():
            stats.outcome_counts[OutcomeKind(value)] = int(count)
        for value, count in data["predictions"].items():
            stats.prediction_counts[PredictionKind(value)] = int(count)
        return stats
