"""Grid-based sensitivity studies over MASCOT's parameters.

Sec. IV-B: "The sizes of counters and the global history lengths were
selected via a grid-based sensitivity study."  This module provides the
apparatus: declare a parameter grid over :class:`MascotConfig` fields, run
every point over a benchmark set (prediction-only for speed, or timing for
IPC), and rank the configurations.

Example::

    grid = ParameterGrid({
        "usefulness_bits": [2, 3, 4],
        "bypass_bits": [1, 2, 3],
    })
    study = SensitivityStudy(grid, benchmarks=["perlbench1", "gcc1"])
    results = study.run(num_uops=30_000)
    best = results.best()
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..predictors.configs import MASCOT_DEFAULT, MascotConfig
from ..predictors.mascot import Mascot
from ..trace.profiles import suite_names
from ..experiments.runner import default_cache, run_prediction_only

__all__ = ["ParameterGrid", "GridPointResult", "StudyResults",
           "SensitivityStudy"]


class ParameterGrid:
    """The cartesian product of per-parameter candidate values.

    Keys must be :class:`MascotConfig` field names; tuple-valued fields
    (``history_lengths``, ``table_entries``, ``tag_bits``) are supported by
    listing whole tuples as candidates.
    """

    def __init__(self, axes: Mapping[str, Sequence]):
        if not axes:
            raise ValueError("grid needs at least one axis")
        valid_fields = set(MascotConfig.__dataclass_fields__)
        for name in axes:
            if name not in valid_fields:
                raise KeyError(
                    f"{name!r} is not a MascotConfig field; known: "
                    + ", ".join(sorted(valid_fields))
                )
        for name, values in axes.items():
            if not values:
                raise ValueError(f"axis {name!r} has no candidate values")
        self.axes = {name: list(values) for name, values in axes.items()}

    def __len__(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def points(self) -> Iterator[Dict[str, object]]:
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[n] for n in names)):
            yield dict(zip(names, combo))


@dataclass
class GridPointResult:
    """One configuration's aggregate outcome."""

    parameters: Dict[str, object]
    config: MascotConfig
    mispredictions: int
    false_dependencies: int
    speculative_errors: int
    loads: int
    storage_kib: float

    @property
    def misprediction_rate(self) -> float:
        return self.mispredictions / self.loads if self.loads else 0.0


@dataclass
class StudyResults:
    """All grid points, with ranking helpers."""

    points: List[GridPointResult] = field(default_factory=list)

    def best(self) -> GridPointResult:
        """Lowest misprediction rate; storage breaks ties."""
        if not self.points:
            raise ValueError("no results")
        return min(self.points,
                   key=lambda p: (p.misprediction_rate, p.storage_kib))

    def ranked(self) -> List[GridPointResult]:
        return sorted(self.points,
                      key=lambda p: (p.misprediction_rate, p.storage_kib))

    def pareto_front(self) -> List[GridPointResult]:
        """Configurations not dominated in (storage, misprediction rate)."""
        front: List[GridPointResult] = []
        for candidate in sorted(self.points, key=lambda p: p.storage_kib):
            if all(candidate.misprediction_rate < kept.misprediction_rate
                   for kept in front) or not front:
                front.append(candidate)
        return front


class SensitivityStudy:
    """Run a :class:`ParameterGrid` over a benchmark set."""

    def __init__(
        self,
        grid: ParameterGrid,
        benchmarks: Optional[Sequence[str]] = None,
        base_config: MascotConfig = MASCOT_DEFAULT,
    ):
        self.grid = grid
        self.benchmarks = (
            list(benchmarks) if benchmarks is not None else suite_names()
        )
        self.base_config = base_config

    def run(self, num_uops: int = 30_000,
            warmup: Optional[int] = None) -> StudyResults:
        """Prediction-only evaluation of every grid point."""
        if warmup is None:
            warmup = num_uops // 4
        cache = default_cache()
        results = StudyResults()
        for parameters in self.grid.points():
            config = self.base_config.with_(
                name=self._point_name(parameters),
                **self._clamped(parameters),
            )
            mispredictions = 0
            false_deps = 0
            spec_errors = 0
            loads = 0
            for benchmark in self.benchmarks:
                trace = cache.get(benchmark, num_uops)
                run = run_prediction_only(trace, Mascot(config),
                                          warmup=warmup)
                mispredictions += run.accuracy.mispredictions
                false_deps += run.accuracy.false_dependencies
                spec_errors += run.accuracy.speculative_errors
                loads += run.accuracy.loads
            results.points.append(GridPointResult(
                parameters=parameters,
                config=config,
                mispredictions=mispredictions,
                false_dependencies=false_deps,
                speculative_errors=spec_errors,
                loads=loads,
                storage_kib=config.storage_kib,
            ))
        return results

    def _clamped(self, parameters: Mapping[str, object]) -> Dict[str, object]:
        """Derive config kwargs, clamping allocation constants to a swept
        counter width (a 2-bit usefulness counter cannot start entries at
        the default of 6) unless the user swept them explicitly."""
        kwargs: Dict[str, object] = dict(parameters)
        usefulness_bits = kwargs.get(
            "usefulness_bits", self.base_config.usefulness_bits
        )
        maximum = (1 << int(usefulness_bits)) - 1
        if "alloc_usefulness_dep" not in kwargs:
            kwargs["alloc_usefulness_dep"] = min(
                self.base_config.alloc_usefulness_dep, maximum
            )
        if "alloc_usefulness_nondep" not in kwargs:
            kwargs["alloc_usefulness_nondep"] = max(
                1, min(self.base_config.alloc_usefulness_nondep, maximum)
            )
        return kwargs

    @staticmethod
    def _point_name(parameters: Mapping[str, object]) -> str:
        parts = [f"{k}={v}" for k, v in sorted(parameters.items())]
        return "grid[" + ",".join(parts) + "]"
