"""Accuracy classification, counter analysis and F1-based tuning."""

from .accuracy import (
    DEFAULT_BYPASSABLE,
    AccuracyStats,
    Outcome,
    OutcomeKind,
    classify,
)
from .f1 import F1Recorder, RankedF1Profile, merge_profiles, suggest_table_sizes
from .markov import drain_step_table, expected_drain_from_max, expected_drain_steps
from .sensitivity import (
    GridPointResult,
    ParameterGrid,
    SensitivityStudy,
    StudyResults,
)

__all__ = [
    "DEFAULT_BYPASSABLE",
    "AccuracyStats",
    "Outcome",
    "OutcomeKind",
    "classify",
    "F1Recorder",
    "RankedF1Profile",
    "merge_profiles",
    "suggest_table_sizes",
    "drain_step_table",
    "GridPointResult",
    "ParameterGrid",
    "SensitivityStudy",
    "StudyResults",
    "expected_drain_from_max",
    "expected_drain_steps",
]
