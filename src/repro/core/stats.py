"""Aggregate statistics produced by one timing-model run."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..analysis.accuracy import AccuracyStats

__all__ = ["PipelineStats"]


@dataclass
class PipelineStats:
    """Counters and derived metrics from a pipeline simulation."""

    instructions: int = 0
    cycles: int = 0

    loads: int = 0
    stores: int = 0
    branches: int = 0

    branch_mispredictions: int = 0
    indirect_mispredictions: int = 0

    #: Memory-order violations / bypass-verification failures → full squash.
    memory_squashes: int = 0
    #: Loads delayed by a (true or false) predicted dependence.
    loads_stalled_by_prediction: int = 0
    #: Loads whose value was delivered through speculative memory bypassing.
    loads_bypassed: int = 0
    #: Loads that obtained their value by store-to-load forwarding.
    loads_forwarded: int = 0

    #: Cycles consumers of loads spent waiting for their source values
    #: (the perlbench2 analysis of Sec. VI-A).
    load_consumer_wait_cycles: int = 0
    load_consumers: int = 0

    accuracy: AccuracyStats = field(default_factory=AccuracyStats)

    #: Sampled-reconstruction metadata (policy, selection digest, coverage,
    #: confidence interval — see :mod:`repro.sampling.reconstruct`); None
    #: for full-trace runs.  When set, every counter above is a full-run
    #: *estimate* scaled from the measured regions.
    sampling: Optional[Dict[str, object]] = None

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def branch_mpki(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.branch_mispredictions / self.instructions

    @property
    def squash_pki(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.memory_squashes / self.instructions

    @property
    def mean_consumer_wait(self) -> float:
        """Average issue-stage wait of load consumers (Sec. VI-A metric)."""
        if self.load_consumers == 0:
            return 0.0
        return self.load_consumer_wait_cycles / self.load_consumers

    def as_dict(self) -> Dict[str, float]:
        return {
            "instructions": self.instructions,
            "cycles": self.cycles,
            "ipc": self.ipc,
            "loads": self.loads,
            "stores": self.stores,
            "branches": self.branches,
            "branch_mpki": self.branch_mpki,
            "memory_squashes": self.memory_squashes,
            "loads_stalled": self.loads_stalled_by_prediction,
            "loads_bypassed": self.loads_bypassed,
            "loads_forwarded": self.loads_forwarded,
            "mdp_mispredictions": self.accuracy.mispredictions,
            "mean_consumer_wait": self.mean_consumer_wait,
        }

    # -- serialisation (on-disk result cache) ----------------------------------

    #: Raw counter fields round-tripped by to_dict/from_dict.  All integral,
    #: so a cached run decodes bit-identically to the run that produced it.
    _COUNTER_FIELDS = (
        "instructions", "cycles", "loads", "stores", "branches",
        "branch_mispredictions", "indirect_mispredictions",
        "memory_squashes", "loads_stalled_by_prediction",
        "loads_bypassed", "loads_forwarded",
        "load_consumer_wait_cycles", "load_consumers",
    )

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form; inverse of :meth:`from_dict`."""
        data: Dict[str, object] = {
            name: getattr(self, name) for name in self._COUNTER_FIELDS
        }
        data["accuracy"] = self.accuracy.to_dict()
        if self.sampling is not None:
            data["sampling"] = self.sampling
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PipelineStats":
        stats = cls(**{name: int(data[name])
                       for name in cls._COUNTER_FIELDS})
        stats.accuracy = AccuracyStats.from_dict(data["accuracy"])
        sampling = data.get("sampling")
        stats.sampling = dict(sampling) if sampling is not None else None
        return stats
