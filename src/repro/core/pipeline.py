"""Trace-driven out-of-order timing model.

This is the substitute for the paper's Sniper+GEMS cycle-level simulator
(see DESIGN.md).  It is a *constraint-based scoreboard*: micro-ops are
processed in program order and each one's fetch / dispatch / issue /
complete / commit cycles are computed from

* front-end bandwidth and redirect barriers (branch mispredictions,
  memory-order squashes, bypass-verification squashes),
* window occupancy (ROB, IQ, LQ, SB — an op cannot dispatch until the entry
  it reuses has been released),
* dataflow readiness (producer value-ready times),
* execution-port contention (pipelined pools per class), and
* the memory-dependence predictor's decision for every load (Fig. 5's
  three-way prediction and its consequences).

The model captures exactly the phenomena the paper measures: loads stalled
by (possibly false) predicted dependencies, squashes from missed or
misdirected dependencies, store-to-load forwarding, and SMB making a load's
value available to consumers as soon as the store's *data* is ready —
before either address is known.  Absolute IPC is approximate; relative IPC
between predictor schemes on the same trace is the quantity of interest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.accuracy import DEFAULT_BYPASSABLE, Outcome, OutcomeKind, classify
from ..branch.base import BranchPredictor
from ..branch.tage import TAGEBranchPredictor
from ..memory.hierarchy import MemoryHierarchy
from ..obs.cycles import CycleStack
from ..predictors.base import ActualOutcome, MDPredictor, Prediction, PredictionKind
from ..trace.uop import MicroOp, OpClass
from .config import GOLDEN_COVE, CoreConfig
from .lsu import StoreTiming, StoreWindow
from .ports import PortSet
from .stats import PipelineStats

__all__ = ["Pipeline"]

#: Window categories in stall-attribution priority order (ROB first),
#: indexed in step with the release points captured by :meth:`_dispatch`.
_WINDOW_CATEGORIES = ("window_rob", "window_iq", "window_lq", "window_sb")

#: Op classes eligible for the Sec. VI-A consumer-wait metric (hoisted:
#: the membership test runs once per dynamic uop).
_CONSUMER_OPS = (OpClass.ALU, OpClass.MUL, OpClass.DIV, OpClass.FP)


class Pipeline:
    """One core, one trace, one memory-dependence predictor."""

    def __init__(
        self,
        predictor: MDPredictor,
        config: CoreConfig = GOLDEN_COVE,
        branch_predictor: Optional[BranchPredictor] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        record_timeline: bool = False,
        accounting: bool = False,
    ):
        self.config = config
        self.predictor = predictor
        self.branch_predictor = branch_predictor or TAGEBranchPredictor()
        self.hierarchy = hierarchy or MemoryHierarchy(config.memory)
        self.ports = PortSet(config.load_ports, config.store_ports,
                             config.alu_ports, config.fp_ports)
        self.stats = PipelineStats()

        # Front-end state.
        self._fetch_cycle = 0
        self._fetch_slots = 0
        self._barrier = 0

        # Commit state.
        self._commit_cycle = 0
        self._commit_slots = 0

        # Per-uop timing history (indexed by seq).
        self._value_ready: List[int] = []
        self._issue_times: List[int] = []
        self._commit_times: List[int] = []

        # Per-class occupancy histories for LQ/SB release constraints.
        self._load_commits: List[int] = []
        self._store_drains: List[int] = []

        # In-flight store tracking.
        self._stores = StoreWindow(capacity=max(config.sb_size * 2, 256))
        #: The store most recently timed by _step_store; _step refines its
        #: drain once the commit cycle is known.
        self._pending_store: Optional[StoreTiming] = None
        self._branch_count = 0
        # Warmup boundary (see run()); _measuring is refreshed per uop.
        self._measure_from = 0
        self._measuring = True
        # Optional per-uop event capture (see timeline()).
        self._record_timeline = record_timeline
        self._fetch_times: List[int] = []
        self._dispatch_times: List[int] = []
        self._complete_times: List[int] = []
        # Optional cycle accounting (see cycle_stack).  Each measured uop's
        # commit-to-commit gap is attributed to one or more stall
        # categories; the per-category sums reconstruct stats.cycles
        # exactly (CycleStack.validate is the invariant).
        self._acct: Optional[CycleStack] = CycleStack() if accounting else None
        self._acct_prev_commit = 0
        self._acct_exec = "execute"
        self._acct_port_from = 0
        self._acct_dep_from = 0
        self._acct_window = (0, 0, 0, 0)
        self._acct_barrier_bound = False
        # Bug-2 bookkeeping: which seqs produced a load value (consumer-wait
        # metric must count only consumers of loads).
        self._produced_by_load: List[bool] = []

    # ------------------------------------------------------------ front end

    def _fetch(self, seq: int) -> int:
        """Assign a fetch cycle honouring width and redirect barriers."""
        if self._barrier > self._fetch_cycle:
            self._fetch_cycle = self._barrier
            self._fetch_slots = 0
        cycle = self._fetch_cycle
        self._fetch_slots += 1
        if self._fetch_slots >= self.config.fetch_width:
            self._fetch_cycle += 1
            self._fetch_slots = 0
        return cycle

    def _redirect(self, cycle: int) -> None:
        """Redirect the front end: later uops fetch from ``cycle`` on."""
        if cycle > self._barrier:
            self._barrier = cycle

    def _dispatch(self, seq: int, fetch: int, uop: MicroOp) -> int:
        """Rename/dispatch cycle after window-occupancy constraints."""
        cfg = self.config
        rob_point = iq_point = lq_point = sb_point = 0
        rob_victim = seq - cfg.rob_size
        if rob_victim >= 0:
            rob_point = self._commit_times[rob_victim]
        iq_victim = seq - cfg.iq_size
        if iq_victim >= 0:
            iq_point = self._issue_times[iq_victim]
        if uop.is_load and len(self._load_commits) >= cfg.lq_size:
            lq_point = self._load_commits[-cfg.lq_size]
        if uop.is_store and len(self._store_drains) >= cfg.sb_size:
            sb_point = self._store_drains[-cfg.sb_size]
        if self._acct is not None:
            self._acct_window = (rob_point, iq_point, lq_point, sb_point)
        return max(fetch + cfg.frontend_latency,
                   rob_point, iq_point, lq_point, sb_point)

    def _sources_ready(self, uop: MicroOp) -> int:
        ready = 0
        for src in uop.srcs:
            t = self._value_ready[src]
            if t > ready:
                ready = t
        return ready

    def _address_ready(self, uop: MicroOp, dispatch: int) -> int:
        """When a memory op's address operand is available."""
        ready = dispatch + 1
        if uop.addr_src is not None:
            t = self._value_ready[uop.addr_src]
            if t > ready:
                ready = t
        return ready

    # ---------------------------------------------------------------- commit

    def _commit(self, complete: int) -> int:
        """In-order commit with commit-width limiting."""
        cycle = complete + 1
        if cycle < self._commit_cycle:
            cycle = self._commit_cycle
        if cycle > self._commit_cycle:
            self._commit_cycle = cycle
            self._commit_slots = 0
        self._commit_slots += 1
        if self._commit_slots >= self.config.commit_width:
            self._commit_cycle += 1
            self._commit_slots = 0
        return cycle

    # ------------------------------------------------------------------ run

    def run(self, trace: Sequence[MicroOp],
            measure_from: int = 0) -> PipelineStats:
        """Simulate the trace; returns (and stores) the statistics.

        ``measure_from`` designates a warmup prefix: micro-ops before that
        sequence number execute normally (training predictors, warming
        caches) but are excluded from IPC and accuracy statistics — the
        warmed-measurement discipline of the paper's SimPoint methodology.
        """
        if self._commit_times:
            raise RuntimeError(
                "Pipeline instances are single-use: construct a new "
                "Pipeline per run (predictor and cache state would "
                "otherwise leak between traces)"
            )
        if not 0 <= measure_from <= len(trace):
            raise ValueError(
                f"measure_from {measure_from} outside trace of {len(trace)}"
            )
        self._measure_from = measure_from
        # Branch statistics accumulate from cycle 0; snapshot them at the
        # warmup boundary so the reported misprediction counts cover the
        # same measured window as stats.branches (MPKI would otherwise mix
        # full-run mispredictions with measured-window uop counts).
        bstats = self.branch_predictor.stats
        step = self._step
        for uop in trace[:measure_from]:
            step(uop)
        warm_mispredicts = bstats.mispredictions
        warm_indirect = bstats.indirect_mispredictions
        for uop in trace[measure_from:]:
            step(uop)
        measured = len(trace) - measure_from
        self.stats.instructions = measured
        start_cycle = (
            self._commit_times[measure_from - 1] if measure_from > 0 else 0
        )
        self.stats.cycles = max(self._commit_cycle - start_cycle, 1)
        self.stats.accuracy.instructions = max(measured, 1)
        self.stats.branch_mispredictions = (
            bstats.mispredictions - warm_mispredicts
        )
        self.stats.indirect_mispredictions = (
            bstats.indirect_mispredictions - warm_indirect
        )
        if self._acct is not None:
            # Cycles between the last measured commit and the final commit
            # frontier (commit-width rollover) belong to commit bandwidth.
            tail = self.stats.cycles - self._acct.total
            if tail > 0:
                self._acct.add("commit", tail)
        return self.stats

    @property
    def cycle_stack(self) -> CycleStack:
        """The per-category cycle attribution (``accounting=True`` only)."""
        if self._acct is None:
            raise RuntimeError(
                "pipeline was not constructed with accounting=True"
            )
        return self._acct

    def _step(self, uop: MicroOp) -> None:
        cfg = self.config
        self._measuring = uop.seq >= self._measure_from
        barrier = self._barrier
        fetch = self._fetch(uop.seq)
        dispatch = self._dispatch(uop.seq, fetch, uop)
        ready = self._sources_ready(uop)
        earliest_issue = max(dispatch + 1, ready)
        if self._acct is not None:
            self._acct_barrier_bound = barrier > 0 and fetch == barrier
            self._acct_exec = "execute"
            self._acct_port_from = earliest_issue
            self._acct_dep_from = earliest_issue

        # Sec. VI-A's consumer-wait metric: cycles an op that consumes at
        # least one load value spends in the issue stage waiting on sources.
        if self._measuring and uop.srcs and uop.op in _CONSUMER_OPS:
            produced = self._produced_by_load
            for src in uop.srcs:
                if produced[src]:
                    self.stats.load_consumers += 1
                    wait = ready - (dispatch + 1)
                    if wait > 0:
                        self.stats.load_consumer_wait_cycles += wait
                    break

        if uop.op is OpClass.ALU:
            issue = self.ports.alu.issue(earliest_issue)
            complete = issue + cfg.alu_latency
            value = complete
        elif uop.op is OpClass.MUL:
            issue = self.ports.alu.issue(earliest_issue)
            complete = issue + cfg.mul_latency
            value = complete
        elif uop.op is OpClass.DIV:
            issue = self.ports.alu.issue(earliest_issue,
                                         occupancy=cfg.div_latency)
            complete = issue + cfg.div_latency
            value = complete
        elif uop.op is OpClass.FP:
            issue = self.ports.fp.issue(earliest_issue)
            complete = issue + cfg.fp_latency
            value = complete
        elif uop.op is OpClass.BRANCH_COND:
            issue = self.ports.alu.issue(earliest_issue)
            complete = issue + cfg.branch_latency
            value = complete
            if self._measuring:
                self.stats.branches += 1
            correct = self.branch_predictor.predict_and_train(
                uop.pc, uop.taken
            )
            if not correct:
                self._redirect(complete + 1)
            self.predictor.on_branch(uop.pc, uop.taken)
            self._branch_count += 1
        elif uop.op is OpClass.BRANCH_INDIRECT:
            issue = self.ports.alu.issue(earliest_issue)
            complete = issue + cfg.branch_latency
            value = complete
            if self._measuring:
                self.stats.branches += 1
            correct = self.branch_predictor.observe_indirect(uop.pc, uop.target)
            if not correct:
                self._redirect(complete + 1)
            self.predictor.on_indirect(uop.pc, uop.target)
            self._branch_count += 1
        elif uop.op is OpClass.STORE:
            issue, complete, value = self._step_store(uop, dispatch, ready)
        elif uop.op is OpClass.LOAD:
            issue, complete, value = self._step_load(uop, dispatch, ready)
        else:  # NOP
            issue = earliest_issue
            complete = issue
            value = complete

        commit = self._commit(complete)
        self._issue_times.append(issue)
        self._commit_times.append(commit)
        self._value_ready.append(value)
        self._produced_by_load.append(uop.is_load)
        if self._record_timeline:
            self._fetch_times.append(fetch)
            self._dispatch_times.append(dispatch)
            self._complete_times.append(complete)
        if uop.is_load:
            self._load_commits.append(commit)
        if uop.is_store:
            # Refine the provisional StoreTiming.drain now that the commit
            # cycle is known: the SB entry frees sb_drain_latency cycles
            # after commit, and no load may forward from it afterwards.
            drain = commit + cfg.sb_drain_latency
            self._store_drains.append(drain)
            self._pending_store.drain = drain
        if self._acct is not None:
            self._account(uop, fetch, dispatch, issue, complete, commit)

    # ----------------------------------------------------------- accounting

    def _account(self, uop: MicroOp, fetch: int, dispatch: int,
                 issue: int, complete: int, commit: int) -> None:
        """Attribute this uop's commit-to-commit gap to stall categories.

        The commit stream is in order, so the cycles between consecutive
        measured commits partition stats.cycles exactly.  Each gap is
        carved top-down along the uop's own lifecycle breakpoints — every
        segment is clamped to the (prev_commit, commit] window, so the
        per-category sums reconstruct the measured cycle count by
        construction no matter how the breakpoints interleave.
        """
        if not self._measuring:
            self._acct_prev_commit = commit
            return
        lo = self._acct_prev_commit
        self._acct_prev_commit = commit
        hi = commit
        if hi <= lo:
            return
        stack = self._acct
        cuts = [
            (complete, "commit"),
            (issue, self._acct_exec),
            (self._acct_port_from, "ports"),
            (self._acct_dep_from, "dependence"),
            (dispatch + 1, "src_wait"),
        ]
        frontier = fetch + self.config.frontend_latency
        if dispatch > frontier:
            points = self._acct_window
            wcat = _WINDOW_CATEGORIES[points.index(max(points))]
            cuts.append((frontier, wcat))
        # A uop whose fetch was pinned to the redirect barrier charges its
        # front-end span (resteer + refill) to "redirect"; ordinary fetch
        # streaming is "frontend" bandwidth.
        front = "redirect" if self._acct_barrier_bound else "frontend"
        cuts.append((fetch, front))
        for point, cat in cuts:
            if point < lo:
                point = lo
            if point < hi:
                stack.add(cat, hi - point)
                hi = point
        if hi > lo:
            # Cycles before this uop even fetched: the front end was either
            # waiting at the redirect barrier or streaming earlier uops.
            stack.add(front, hi - lo)

    # ---------------------------------------------------------------- stores

    def _step_store(self, uop: MicroOp, dispatch: int, data_ready: int):
        cfg = self.config
        if self._measuring:
            self.stats.stores += 1
        # The predictor may serialise this store behind an older one in its
        # store set (Store Sets' LFST chaining).
        ordering_constraint = self.predictor.on_store(uop)
        addr_ready = self._address_ready(uop, dispatch)
        if self._acct is not None:
            self._acct_dep_from = addr_ready
        if ordering_constraint is not None:
            older = self._stores.by_seq(ordering_constraint)
            if older is not None and older.addr_resolve + 1 > addr_ready:
                addr_ready = older.addr_resolve + 1
        # Address generation waits only for the address operand, not data.
        agu_issue = self.ports.store.issue(addr_ready)
        addr_resolve = agu_issue + cfg.agu_latency
        data_avail = max(data_ready, dispatch + 1)
        complete = max(addr_resolve, data_avail)
        if self._acct is not None:
            self._acct_port_from = addr_ready
        self.hierarchy.store_probe(uop.address)
        # The drain time is provisional until the store commits: _step
        # overwrites it with commit + sb_drain_latency once the commit
        # cycle is known, before any younger load can snoop this record
        # (uops are processed in program order).
        timing = StoreTiming(
            seq=uop.seq, pc=uop.pc,
            addr_resolve=addr_resolve,
            data_ready=data_avail,
            # The +64 is provisional slack so no load snoops a still-pending
            # drain; the batched engine computes the final drain at commit
            # directly and never needs the placeholder.
            # repro-lint: allow(eq-config-literal) -- provisional drain slack, batched refines at commit
            drain=complete + cfg.sb_drain_latency + 64,
            branch_count=self._branch_count,
        )
        self._stores.add(timing)
        self._pending_store = timing
        return agu_issue, complete, complete

    # ----------------------------------------------------------------- loads

    def _step_load(self, uop: MicroOp, dispatch: int, ready: int):
        cfg = self.config
        if self._measuring:
            self.stats.loads += 1
        prediction = self.predictor.predict(uop)
        addr_ready = max(self._address_ready(uop, dispatch), ready)
        if self._acct is not None:
            self._acct_dep_from = addr_ready

        # Resolve the predicted store to a timing record, if any.
        target: Optional[StoreTiming] = None
        if prediction.predicts_dependence:
            if prediction.store_seq is not None:
                target = self._stores.by_seq(prediction.store_seq)
            else:
                target = self._stores.by_distance(prediction.distance)

        # Issue constraint from the prediction (Fig. 5 actions).
        wait_until = addr_ready
        if prediction.kind is not PredictionKind.NO_DEP and target is not None:
            hold = target.addr_resolve
            if prediction.meta.get("conservative"):
                hold += 1  # the oracle's +1-cycle serialisation (Sec. VI-A)
            if hold > wait_until:
                if self._measuring:
                    self.stats.loads_stalled_by_prediction += 1
                wait_until = hold

        issue = self.ports.load.issue(wait_until)
        if self._acct is not None:
            self._acct_port_from = wait_until

        # Ground truth.
        actual_store = self._stores.by_seq(uop.dep_store_seq)
        actual = self._actual_outcome(uop, actual_store)
        outcome = classify(prediction, actual,
                           self.predictor.bypassable_classes)
        if self._measuring:
            self.stats.accuracy.record(outcome)

        # Execute the load against SB / cache.
        squash_at: Optional[int] = None
        if uop.has_dependence and actual_store is not None:
            if issue < actual_store.addr_resolve:
                # Memory-order violation: the conflicting store's address
                # was unknown when the load issued.  Detected when the store
                # resolves; load and younger ops squash and re-execute.
                squash_at = actual_store.addr_resolve + 1
                complete = (
                    max(squash_at + cfg.squash_overhead,
                        actual_store.forward_ready)
                    + cfg.forward_latency
                )
            elif cfg.enforce_sb_drain and issue > actual_store.drain:
                # The store left the SB before the load issued: nothing to
                # forward from, so the value comes from the cache (the
                # store's write has drained into it by then).
                complete = self.hierarchy.timed_load(
                    uop.pc, uop.address, issue + cfg.agu_latency - 1
                )
            else:
                # Store-to-load forwarding through the SB.
                if self._measuring:
                    self.stats.loads_forwarded += 1
                complete = (
                    max(issue, actual_store.forward_ready)
                    + cfg.forward_latency
                )
        else:
            complete = self.hierarchy.timed_load(
                uop.pc, uop.address, issue + cfg.agu_latency - 1
            )

        value = complete

        # Speculative memory bypassing (Fig. 5's right-hand side).
        if prediction.kind is PredictionKind.SMB and target is not None:
            if outcome.kind is OutcomeKind.CORRECT_SMB:
                # Consumers obtain the store's data register directly; the
                # load still executes to verify (its own completion stands).
                if self._measuring:
                    self.stats.loads_bypassed += 1
                bypass_value = max(target.data_ready + 1, dispatch + 1)
                if bypass_value < value:
                    value = bypass_value
            else:
                # Wrong value delivered: verification fails when the load's
                # own access completes (or earlier, on the address check).
                addr_check = max(issue, target.addr_resolve) + 1
                verify = min(complete, max(addr_check, issue + 1))
                squash_at = max(squash_at or 0, verify)
                complete = max(complete, verify + cfg.squash_overhead)
                value = complete

        if squash_at is not None:
            if self._measuring:
                self.stats.memory_squashes += 1
            self._redirect(squash_at + cfg.squash_overhead)
        if self._acct is not None:
            self._acct_exec = "squash" if squash_at is not None else "memory"

        # Commit-time training.
        self.predictor.train(uop, prediction, actual)
        return issue, complete, value

    def _actual_outcome(self, uop: MicroOp,
                        actual_store: Optional[StoreTiming]) -> ActualOutcome:
        branches_between = 0
        store_pc = None
        if uop.has_dependence:
            if actual_store is not None:
                branches_between = self._branch_count - actual_store.branch_count
                store_pc = actual_store.pc
        return ActualOutcome.from_uop(
            uop, branches_between=branches_between, store_pc=store_pc
        )

    def timeline(self, trace: Optional[Sequence[MicroOp]] = None):
        """Return the recorded :class:`~repro.core.timeline.Timeline`.

        Requires construction with ``record_timeline=True``.
        """
        from .timeline import Timeline, UopTiming

        if not self._record_timeline:
            raise RuntimeError(
                "pipeline was not constructed with record_timeline=True"
            )
        timings = [
            UopTiming(
                seq=i,
                fetch=self._fetch_times[i],
                dispatch=self._dispatch_times[i],
                issue=max(self._issue_times[i], self._dispatch_times[i]),
                complete=max(self._complete_times[i], self._issue_times[i]),
                commit=self._commit_times[i],
            )
            for i in range(len(self._commit_times))
        ]
        return Timeline(timings, trace)
