"""Trace-driven out-of-order timing model.

This is the substitute for the paper's Sniper+GEMS cycle-level simulator
(see DESIGN.md).  It is a *constraint-based scoreboard*: micro-ops are
processed in program order and each one's fetch / dispatch / issue /
complete / commit cycles are computed from

* front-end bandwidth and redirect barriers (branch mispredictions,
  memory-order squashes, bypass-verification squashes),
* window occupancy (ROB, IQ, LQ, SB — an op cannot dispatch until the entry
  it reuses has been released),
* dataflow readiness (producer value-ready times),
* execution-port contention (pipelined pools per class), and
* the memory-dependence predictor's decision for every load (Fig. 5's
  three-way prediction and its consequences).

The model captures exactly the phenomena the paper measures: loads stalled
by (possibly false) predicted dependencies, squashes from missed or
misdirected dependencies, store-to-load forwarding, and SMB making a load's
value available to consumers as soon as the store's *data* is ready —
before either address is known.  Absolute IPC is approximate; relative IPC
between predictor schemes on the same trace is the quantity of interest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..analysis.accuracy import DEFAULT_BYPASSABLE, Outcome, OutcomeKind, classify
from ..branch.base import BranchPredictor
from ..branch.tage import TAGEBranchPredictor
from ..memory.hierarchy import MemoryHierarchy
from ..predictors.base import ActualOutcome, MDPredictor, Prediction, PredictionKind
from ..trace.uop import MicroOp, OpClass
from .config import GOLDEN_COVE, CoreConfig
from .lsu import StoreTiming, StoreWindow
from .ports import PortSet
from .stats import PipelineStats

__all__ = ["Pipeline"]


class Pipeline:
    """One core, one trace, one memory-dependence predictor."""

    def __init__(
        self,
        predictor: MDPredictor,
        config: CoreConfig = GOLDEN_COVE,
        branch_predictor: Optional[BranchPredictor] = None,
        hierarchy: Optional[MemoryHierarchy] = None,
        record_timeline: bool = False,
    ):
        self.config = config
        self.predictor = predictor
        self.branch_predictor = branch_predictor or TAGEBranchPredictor()
        self.hierarchy = hierarchy or MemoryHierarchy(config.memory)
        self.ports = PortSet(config.load_ports, config.store_ports,
                             config.alu_ports, config.fp_ports)
        self.stats = PipelineStats()

        # Front-end state.
        self._fetch_cycle = 0
        self._fetch_slots = 0
        self._barrier = 0

        # Commit state.
        self._commit_cycle = 0
        self._commit_slots = 0

        # Per-uop timing history (indexed by seq).
        self._value_ready: List[int] = []
        self._issue_times: List[int] = []
        self._commit_times: List[int] = []

        # Per-class occupancy histories for LQ/SB release constraints.
        self._load_commits: List[int] = []
        self._store_drains: List[int] = []

        # In-flight store tracking.
        self._stores = StoreWindow(capacity=max(config.sb_size * 2, 256))
        self._branch_count = 0
        # Warmup boundary (see run()); _measuring is refreshed per uop.
        self._measure_from = 0
        self._measuring = True
        # Optional per-uop event capture (see timeline()).
        self._record_timeline = record_timeline
        self._fetch_times: List[int] = []
        self._dispatch_times: List[int] = []
        self._complete_times: List[int] = []

    # ------------------------------------------------------------ front end

    def _fetch(self, seq: int) -> int:
        """Assign a fetch cycle honouring width and redirect barriers."""
        if self._barrier > self._fetch_cycle:
            self._fetch_cycle = self._barrier
            self._fetch_slots = 0
        cycle = self._fetch_cycle
        self._fetch_slots += 1
        if self._fetch_slots >= self.config.fetch_width:
            self._fetch_cycle += 1
            self._fetch_slots = 0
        return cycle

    def _redirect(self, cycle: int) -> None:
        """Redirect the front end: later uops fetch from ``cycle`` on."""
        if cycle > self._barrier:
            self._barrier = cycle

    def _dispatch(self, seq: int, fetch: int, uop: MicroOp) -> int:
        """Rename/dispatch cycle after window-occupancy constraints."""
        cfg = self.config
        dispatch = fetch + cfg.frontend_latency
        rob_victim = seq - cfg.rob_size
        if rob_victim >= 0:
            dispatch = max(dispatch, self._commit_times[rob_victim])
        iq_victim = seq - cfg.iq_size
        if iq_victim >= 0:
            dispatch = max(dispatch, self._issue_times[iq_victim])
        if uop.is_load and len(self._load_commits) >= cfg.lq_size:
            dispatch = max(dispatch, self._load_commits[-cfg.lq_size])
        if uop.is_store and len(self._store_drains) >= cfg.sb_size:
            dispatch = max(dispatch, self._store_drains[-cfg.sb_size])
        return dispatch

    def _sources_ready(self, uop: MicroOp) -> int:
        ready = 0
        for src in uop.srcs:
            t = self._value_ready[src]
            if t > ready:
                ready = t
        return ready

    def _address_ready(self, uop: MicroOp, dispatch: int) -> int:
        """When a memory op's address operand is available."""
        ready = dispatch + 1
        if uop.addr_src is not None:
            t = self._value_ready[uop.addr_src]
            if t > ready:
                ready = t
        return ready

    # ---------------------------------------------------------------- commit

    def _commit(self, complete: int) -> int:
        """In-order commit with commit-width limiting."""
        cycle = complete + 1
        if cycle < self._commit_cycle:
            cycle = self._commit_cycle
        if cycle > self._commit_cycle:
            self._commit_cycle = cycle
            self._commit_slots = 0
        self._commit_slots += 1
        if self._commit_slots >= self.config.commit_width:
            self._commit_cycle += 1
            self._commit_slots = 0
        return cycle

    # ------------------------------------------------------------------ run

    def run(self, trace: Sequence[MicroOp],
            measure_from: int = 0) -> PipelineStats:
        """Simulate the trace; returns (and stores) the statistics.

        ``measure_from`` designates a warmup prefix: micro-ops before that
        sequence number execute normally (training predictors, warming
        caches) but are excluded from IPC and accuracy statistics — the
        warmed-measurement discipline of the paper's SimPoint methodology.
        """
        if self._commit_times:
            raise RuntimeError(
                "Pipeline instances are single-use: construct a new "
                "Pipeline per run (predictor and cache state would "
                "otherwise leak between traces)"
            )
        if not 0 <= measure_from <= len(trace):
            raise ValueError(
                f"measure_from {measure_from} outside trace of {len(trace)}"
            )
        self._measure_from = measure_from
        for uop in trace:
            self._step(uop)
        measured = len(trace) - measure_from
        self.stats.instructions = measured
        start_cycle = (
            self._commit_times[measure_from - 1] if measure_from > 0 else 0
        )
        self.stats.cycles = max(self._commit_cycle - start_cycle, 1)
        self.stats.accuracy.instructions = max(measured, 1)
        self.stats.branch_mispredictions = (
            self.branch_predictor.stats.mispredictions
        )
        self.stats.indirect_mispredictions = (
            self.branch_predictor.stats.indirect_mispredictions
        )
        return self.stats

    def _step(self, uop: MicroOp) -> None:
        cfg = self.config
        self._measuring = uop.seq >= self._measure_from
        fetch = self._fetch(uop.seq)
        dispatch = self._dispatch(uop.seq, fetch, uop)
        ready = self._sources_ready(uop)
        earliest_issue = max(dispatch + 1, ready)

        # Sec. VI-A's consumer-wait metric: cycles an op that consumes at
        # least one load value spends in the issue stage waiting on sources.
        if self._measuring and uop.srcs and uop.op in (
            OpClass.ALU, OpClass.MUL, OpClass.DIV, OpClass.FP
        ):
            self.stats.load_consumers += 1
            self.stats.load_consumer_wait_cycles += max(
                0, ready - (dispatch + 1)
            )

        if uop.op is OpClass.ALU:
            issue = self.ports.alu.issue(earliest_issue)
            complete = issue + cfg.alu_latency
            value = complete
        elif uop.op is OpClass.MUL:
            issue = self.ports.alu.issue(earliest_issue)
            complete = issue + cfg.mul_latency
            value = complete
        elif uop.op is OpClass.DIV:
            issue = self.ports.alu.issue(earliest_issue,
                                         occupancy=cfg.div_latency)
            complete = issue + cfg.div_latency
            value = complete
        elif uop.op is OpClass.FP:
            issue = self.ports.fp.issue(earliest_issue)
            complete = issue + cfg.fp_latency
            value = complete
        elif uop.op is OpClass.BRANCH_COND:
            issue = self.ports.alu.issue(earliest_issue)
            complete = issue + cfg.branch_latency
            value = complete
            if self._measuring:
                self.stats.branches += 1
            correct = self.branch_predictor.predict_and_train(
                uop.pc, uop.taken
            )
            if not correct:
                self._redirect(complete + 1)
            self.predictor.on_branch(uop.pc, uop.taken)
            self._branch_count += 1
        elif uop.op is OpClass.BRANCH_INDIRECT:
            issue = self.ports.alu.issue(earliest_issue)
            complete = issue + cfg.branch_latency
            value = complete
            if self._measuring:
                self.stats.branches += 1
            correct = self.branch_predictor.observe_indirect(uop.pc, uop.target)
            if not correct:
                self._redirect(complete + 1)
            self.predictor.on_indirect(uop.pc, uop.target)
            self._branch_count += 1
        elif uop.op is OpClass.STORE:
            issue, complete, value = self._step_store(uop, dispatch, ready)
        elif uop.op is OpClass.LOAD:
            issue, complete, value = self._step_load(uop, dispatch, ready)
        else:  # NOP
            issue = earliest_issue
            complete = issue
            value = complete

        commit = self._commit(complete)
        self._issue_times.append(issue)
        self._commit_times.append(commit)
        self._value_ready.append(value)
        if self._record_timeline:
            self._fetch_times.append(fetch)
            self._dispatch_times.append(dispatch)
            self._complete_times.append(complete)
        if uop.is_load:
            self._load_commits.append(commit)
        if uop.is_store:
            self._store_drains.append(commit + cfg.sb_drain_latency)

    # ---------------------------------------------------------------- stores

    def _step_store(self, uop: MicroOp, dispatch: int, data_ready: int):
        cfg = self.config
        if self._measuring:
            self.stats.stores += 1
        # The predictor may serialise this store behind an older one in its
        # store set (Store Sets' LFST chaining).
        ordering_constraint = self.predictor.on_store(uop)
        addr_ready = self._address_ready(uop, dispatch)
        if ordering_constraint is not None:
            older = self._stores.by_seq(ordering_constraint)
            if older is not None and older.addr_resolve + 1 > addr_ready:
                addr_ready = older.addr_resolve + 1
        # Address generation waits only for the address operand, not data.
        agu_issue = self.ports.store.issue(addr_ready)
        addr_resolve = agu_issue + cfg.agu_latency
        data_avail = max(data_ready, dispatch + 1)
        complete = max(addr_resolve, data_avail)
        self.hierarchy.store_probe(uop.address)
        # The drain time is filled in after commit; store a provisional
        # record now so younger loads can snoop it.
        timing = StoreTiming(
            seq=uop.seq, pc=uop.pc,
            addr_resolve=addr_resolve,
            data_ready=data_avail,
            drain=complete + cfg.sb_drain_latency + 64,  # refined below
            branch_count=self._branch_count,
        )
        self._stores.add(timing)
        return agu_issue, complete, complete

    # ----------------------------------------------------------------- loads

    def _step_load(self, uop: MicroOp, dispatch: int, ready: int):
        cfg = self.config
        if self._measuring:
            self.stats.loads += 1
        prediction = self.predictor.predict(uop)
        addr_ready = max(self._address_ready(uop, dispatch), ready)

        # Resolve the predicted store to a timing record, if any.
        target: Optional[StoreTiming] = None
        if prediction.predicts_dependence:
            if prediction.store_seq is not None:
                target = self._stores.by_seq(prediction.store_seq)
            else:
                target = self._stores.by_distance(prediction.distance)

        # Issue constraint from the prediction (Fig. 5 actions).
        wait_until = addr_ready
        if prediction.kind is not PredictionKind.NO_DEP and target is not None:
            hold = target.addr_resolve
            if prediction.meta.get("conservative"):
                hold += 1  # the oracle's +1-cycle serialisation (Sec. VI-A)
            if hold > wait_until:
                if self._measuring:
                    self.stats.loads_stalled_by_prediction += 1
                wait_until = hold

        issue = self.ports.load.issue(wait_until)

        # Ground truth.
        actual_store = self._stores.by_seq(uop.dep_store_seq)
        actual = self._actual_outcome(uop, actual_store)
        outcome = classify(prediction, actual,
                           self.predictor.bypassable_classes)
        if self._measuring:
            self.stats.accuracy.record(outcome)

        # Execute the load against SB / cache.
        squash_at: Optional[int] = None
        if uop.has_dependence and actual_store is not None:
            if issue < actual_store.addr_resolve:
                # Memory-order violation: the conflicting store's address
                # was unknown when the load issued.  Detected when the store
                # resolves; load and younger ops squash and re-execute.
                squash_at = actual_store.addr_resolve + 1
                complete = (
                    max(squash_at + cfg.squash_overhead,
                        actual_store.forward_ready)
                    + cfg.forward_latency
                )
            else:
                # Store-to-load forwarding through the SB.
                if self._measuring:
                    self.stats.loads_forwarded += 1
                complete = (
                    max(issue, actual_store.forward_ready)
                    + cfg.forward_latency
                )
        else:
            complete = self.hierarchy.timed_load(
                uop.pc, uop.address, issue + cfg.agu_latency - 1
            )

        value = complete

        # Speculative memory bypassing (Fig. 5's right-hand side).
        if prediction.kind is PredictionKind.SMB and target is not None:
            if outcome.kind is OutcomeKind.CORRECT_SMB:
                # Consumers obtain the store's data register directly; the
                # load still executes to verify (its own completion stands).
                if self._measuring:
                    self.stats.loads_bypassed += 1
                bypass_value = max(target.data_ready + 1, dispatch + 1)
                if bypass_value < value:
                    value = bypass_value
            else:
                # Wrong value delivered: verification fails when the load's
                # own access completes (or earlier, on the address check).
                addr_check = max(issue, target.addr_resolve) + 1
                verify = min(complete, max(addr_check, issue + 1))
                squash_at = max(squash_at or 0, verify)
                complete = max(complete, verify + cfg.squash_overhead)
                value = complete

        if squash_at is not None:
            if self._measuring:
                self.stats.memory_squashes += 1
            self._redirect(squash_at + cfg.squash_overhead)

        # Commit-time training.
        self.predictor.train(uop, prediction, actual)
        return issue, complete, value

    def _actual_outcome(self, uop: MicroOp,
                        actual_store: Optional[StoreTiming]) -> ActualOutcome:
        branches_between = 0
        store_pc = None
        if uop.has_dependence:
            if actual_store is not None:
                branches_between = self._branch_count - actual_store.branch_count
                store_pc = actual_store.pc
        return ActualOutcome.from_uop(
            uop, branches_between=branches_between, store_pc=store_pc
        )

    def timeline(self, trace: Optional[Sequence[MicroOp]] = None):
        """Return the recorded :class:`~repro.core.timeline.Timeline`.

        Requires construction with ``record_timeline=True``.
        """
        from .timeline import Timeline, UopTiming

        if not self._record_timeline:
            raise RuntimeError(
                "pipeline was not constructed with record_timeline=True"
            )
        timings = [
            UopTiming(
                seq=i,
                fetch=self._fetch_times[i],
                dispatch=self._dispatch_times[i],
                issue=max(self._issue_times[i], self._dispatch_times[i]),
                complete=max(self._complete_times[i], self._issue_times[i]),
                commit=self._commit_times[i],
            )
            for i in range(len(self._commit_times))
        ]
        return Timeline(timings, trace)
