"""Load-store unit semantics: timing records for in-flight stores.

The pipeline keeps one :class:`StoreTiming` per in-flight store.  Loads use
them to decide, exactly as the LQ/SB snooping hardware of Sec. V does:

* whether issuing at a given cycle constitutes a **memory-order violation**
  (the conflicting store's address was still unknown → squash when the
  store resolves);
* when a **store-to-load forwarding** value becomes available (store issued
  with address and data — Sec. V: "stores are issued once both the address
  and the data registers are ready");
* when an **SMB bypass** value is available (the store's data register is
  ready, address not required — the whole point of bypassing).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional

__all__ = ["StoreTiming", "StoreWindow"]


@dataclass
class StoreTiming:
    """Timing facts about one dynamic store."""

    seq: int
    pc: int
    #: Cycle its address is resolved (AGU done, LQ snoop possible).
    addr_resolve: int
    #: Cycle its data register is ready (bypassable from here).
    data_ready: int
    #: Cycle it leaves the store buffer (no forwarding afterwards).
    drain: int
    #: Running branch count at dispatch (for PHAST's branches-between).
    branch_count: int

    @property
    def forward_ready(self) -> int:
        """Earliest cycle a younger load can obtain the value via the SB."""
        return max(self.addr_resolve, self.data_ready)


class StoreWindow:
    """Recency-ordered window of in-flight stores.

    Provides distance→store resolution (MASCOT/PHAST/NoSQ predictions name
    stores by store-queue offset) and per-seq lookup (Store Sets and the
    ground-truth annotations name stores by dynamic sequence number).
    """

    def __init__(self, capacity: int = 256):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._recent: Deque[int] = deque()  # seqs, oldest first
        self._by_seq: Dict[int, StoreTiming] = {}
        #: Stores aged out of the window (capacity pressure), for the
        #: observability layer; distance-based predictions can no longer
        #: name an evicted store.
        self.evictions = 0

    def add(self, timing: StoreTiming) -> None:
        self._recent.append(timing.seq)
        self._by_seq[timing.seq] = timing
        if len(self._recent) > self.capacity:
            dead = self._recent.popleft()
            self._by_seq.pop(dead, None)
            self.evictions += 1

    def by_seq(self, seq: Optional[int]) -> Optional[StoreTiming]:
        if seq is None:
            return None
        return self._by_seq.get(seq)

    def by_distance(self, distance: int) -> Optional[StoreTiming]:
        """The ``distance``-th youngest store (1 = most recent), if tracked."""
        if distance <= 0 or distance > len(self._recent):
            return None
        return self._by_seq[self._recent[-distance]]

    def __len__(self) -> int:
        return len(self._recent)

    def reset(self) -> None:
        self._recent.clear()
        self._by_seq.clear()
