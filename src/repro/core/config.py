"""Core configurations: Golden Cove (Table I) and Lion Cove (Sec. VI-C).

The Golden Cove parameters follow Table I directly (6-wide front end, 12
execution ports, 8-wide commit, 512/204/192/114 ROB/IQ/LQ/SB, 3 load + 2
store ports).  Lion Cove follows the paper's source (the Chips-and-Cheese
preview): a wider front end and commit, and enlarged windows — the point of
Fig. 12 is only that *larger structures raise the SMB ceiling*, so the exact
values matter less than the scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..memory.hierarchy import HierarchyConfig

__all__ = ["CoreConfig", "GOLDEN_COVE", "LION_COVE"]


@dataclass(frozen=True)
class CoreConfig:
    """All parameters of the trace-driven out-of-order timing model."""

    name: str

    # Front end.
    fetch_width: int = 6
    #: Decode→rename→dispatch depth in cycles; also the minimum cost of any
    #: pipeline redirect (branch mispredict, memory-order squash).
    frontend_latency: int = 10

    # Windows.
    rob_size: int = 512
    iq_size: int = 204
    lq_size: int = 192
    sb_size: int = 114

    # Back end.
    commit_width: int = 8
    load_ports: int = 3
    store_ports: int = 2
    alu_ports: int = 5
    fp_ports: int = 3

    # Execution latencies (cycles).
    alu_latency: int = 1
    mul_latency: int = 3
    div_latency: int = 12
    fp_latency: int = 4
    branch_latency: int = 1
    agu_latency: int = 1

    #: Store-buffer drain: cycles after commit before an SB entry frees.
    sb_drain_latency: int = 4
    #: Enforce the SB-lifetime forwarding cutoff: a load issuing after the
    #: conflicting store drained must read the cache instead of forwarding.
    #: On by default; the pre-fix behaviour (forwarding from drained
    #: stores) is kept reachable for A/B comparison of the figures.
    enforce_sb_drain: bool = True
    #: Store-to-load forwarding latency — Sec. V: the SB "is searched
    #: associatively and in parallel with the L1D access, incurring the same
    #: latency as the L1D".
    forward_latency: int = 5
    #: Extra redirect cost of a memory-order / bypass-verification squash on
    #: top of the front-end refill.
    squash_overhead: int = 5

    memory: HierarchyConfig = field(default_factory=HierarchyConfig)

    def __post_init__(self) -> None:
        positive = (
            "fetch_width", "frontend_latency", "rob_size", "iq_size",
            "lq_size", "sb_size", "commit_width", "load_ports",
            "store_ports", "alu_ports", "fp_ports",
        )
        for attr in positive:
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")

    def with_(self, **kwargs) -> "CoreConfig":
        return replace(self, **kwargs)

    @property
    def total_ports(self) -> int:
        return (self.load_ports + self.store_ports + self.alu_ports
                + self.fp_ports)

    def summary(self) -> Dict[str, str]:
        """Table I-style description rows."""
        return {
            "Front-end width": f"{self.fetch_width}-wide fetch and decode",
            "Back-end width": (
                f"{self.total_ports} execution ports and "
                f"{self.commit_width} commit width"
            ),
            "ROB/IQ/LQ/SB": (
                f"{self.rob_size}/{self.iq_size}/{self.lq_size}/"
                f"{self.sb_size} entries"
            ),
            "L1D": (
                f"{self.memory.l1d_size // 1024}KB, {self.memory.l1d_ways} "
                f"ways, {self.memory.l1d_latency}-cycle hit latency"
            ),
            "L2": (
                f"{self.memory.l2_size // 1024}KB, {self.memory.l2_ways} "
                f"ways, {self.memory.l2_latency}-cycle hit latency"
            ),
            "L3": (
                f"{self.memory.l3_size // 1024 // 1024}MB, "
                f"{self.memory.l3_ways} ways, "
                f"{self.memory.l3_latency}-cycle hit latency"
            ),
            "Memory": f"{self.memory.memory_latency}-cycle access latency",
        }


#: Table I: 4-core Golden Cove processor (one core modelled).
GOLDEN_COVE = CoreConfig(name="golden-cove")

#: Sec. VI-C's future architecture: wider and deeper (Lion Cove preview).
LION_COVE = CoreConfig(
    name="lion-cove",
    fetch_width=8,
    rob_size=576,
    iq_size=240,
    lq_size=224,
    sb_size=128,
    commit_width=12,
    load_ports=3,
    store_ports=2,
    alu_ports=6,
    fp_ports=4,
)
