"""Out-of-order core timing model (the Sniper+GEMS substitute)."""

from .batched import BatchedPipeline
from .config import GOLDEN_COVE, LION_COVE, CoreConfig
from .lsu import StoreTiming, StoreWindow
from .pipeline import Pipeline
from .ports import PortPool, PortSet
from .scoreboard import RingWindow, SeqScoreboard, StoreScoreboard
from .stats import PipelineStats
from .timeline import Timeline, UopTiming

__all__ = [
    "GOLDEN_COVE",
    "LION_COVE",
    "CoreConfig",
    "BatchedPipeline",
    "StoreTiming",
    "StoreWindow",
    "Pipeline",
    "PortPool",
    "PortSet",
    "RingWindow",
    "SeqScoreboard",
    "StoreScoreboard",
    "PipelineStats",
    "Timeline",
    "UopTiming",
]
