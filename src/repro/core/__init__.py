"""Out-of-order core timing model (the Sniper+GEMS substitute)."""

from .config import GOLDEN_COVE, LION_COVE, CoreConfig
from .lsu import StoreTiming, StoreWindow
from .pipeline import Pipeline
from .ports import PortPool, PortSet
from .stats import PipelineStats
from .timeline import Timeline, UopTiming

__all__ = [
    "GOLDEN_COVE",
    "LION_COVE",
    "CoreConfig",
    "StoreTiming",
    "StoreWindow",
    "Pipeline",
    "PortPool",
    "PortSet",
    "PipelineStats",
    "Timeline",
    "UopTiming",
]
