"""Per-micro-op timing capture and text visualisation.

``Pipeline(record_timeline=True)`` keeps every micro-op's fetch / dispatch /
issue / complete / commit cycles; :class:`Timeline` then renders classic
pipeline diagrams for a window of the trace — the primary debugging aid
when reasoning about why a predictor decision did or did not pay off::

    seq    op       F      D      I      C      R   |FFFF DD..IIII CC R
    812    load     100    110    115    120    121 |

The renderer compresses cycles so a window fits a terminal, and annotates
loads with their prediction outcome when given the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..trace.uop import MicroOp

__all__ = ["UopTiming", "Timeline"]


@dataclass(frozen=True)
class UopTiming:
    """The five pipeline events of one micro-op."""

    seq: int
    fetch: int
    dispatch: int
    issue: int
    complete: int
    commit: int

    def __post_init__(self) -> None:
        if not (self.fetch <= self.dispatch <= self.issue
                <= self.complete < self.commit):
            raise ValueError(
                f"uop {self.seq}: event times out of order "
                f"({self.fetch}/{self.dispatch}/{self.issue}/"
                f"{self.complete}/{self.commit})"
            )

    @property
    def latency(self) -> int:
        """Fetch-to-commit lifetime in cycles."""
        return self.commit - self.fetch


class Timeline:
    """A recorded run's event times with window rendering."""

    def __init__(self, timings: Sequence[UopTiming],
                 trace: Optional[Sequence[MicroOp]] = None):
        self._timings = list(timings)
        self._trace = list(trace) if trace is not None else None
        if self._trace is not None and len(self._trace) != len(self._timings):
            raise ValueError("trace and timings lengths differ")

    def __len__(self) -> int:
        return len(self._timings)

    def __getitem__(self, seq: int) -> UopTiming:
        return self._timings[seq]

    def mean_latency(self) -> float:
        if not self._timings:
            return 0.0
        return sum(t.latency for t in self._timings) / len(self._timings)

    def slowest(self, count: int = 10) -> List[UopTiming]:
        """The micro-ops with the longest fetch-to-commit lifetimes."""
        return sorted(self._timings, key=lambda t: -t.latency)[:count]

    def render(self, start: int, end: int, width: int = 64) -> str:
        """ASCII pipeline diagram for uops ``start..end-1``.

        Stages: F fetch→dispatch, D dispatch→issue, I issue→complete,
        C complete→commit (each glyph covers >= 1 compressed cycle).
        """
        if start < 0 or end > len(self._timings) or start >= end:
            raise ValueError(f"bad window [{start}, {end})")
        window = self._timings[start:end]
        first = min(t.fetch for t in window)
        last = max(t.commit for t in window)
        span = max(last - first, 1)
        scale = max(span / width, 1.0)

        def col(cycle: int) -> int:
            return min(int((cycle - first) / scale), width - 1)

        lines = [
            f"cycles {first}..{last} "
            f"({span} cycles, {scale:.1f} cycles/column)"
        ]
        for timing in window:
            row = [" "] * width
            for lo, hi, glyph in (
                (timing.fetch, timing.dispatch, "F"),
                (timing.dispatch, timing.issue, "D"),
                (timing.issue, timing.complete, "I"),
                (timing.complete, timing.commit, "C"),
            ):
                for c in range(col(lo), max(col(hi), col(lo) + 1)):
                    row[c] = glyph
            label = f"{timing.seq:6d}"
            if self._trace is not None:
                label += f" {self._trace[timing.seq].op.value:<15s}"
            lines.append(f"{label} |{''.join(row)}|")
        return "\n".join(lines) + "\n"
