"""Batched timing engine: two-phase replay of the scalar pipeline.

:class:`BatchedPipeline` produces **bit-identical** results to
:class:`~repro.core.pipeline.Pipeline` — same :class:`PipelineStats`, same
:class:`CycleStack`, same telemetry and post-run predictor state — enforced
by the golden equivalence tier in ``tests/equivalence/``.  It exploits a
structural property of the scalar model:

* Predictors consume only the *architectural* event stream (branch
  outcomes, store dispatches, load predict/train), which is purely
  trace-order driven; no timing result feeds back into any predictor.
* The timing model consumes predictions but never mutates them.

So the run splits into **Phase A** — replay the predictor-visible stream
through fused per-predictor sessions (:mod:`repro.predictors.batch`,
:mod:`repro.branch.batch`), collecting per-load decisions as plain ints —
and **Phase B** — a monolithic timing loop over precomputed
:class:`~repro.trace.columns.TraceColumns`, with the scalar code's
dict/deque scoreboards replaced by :class:`~repro.core.scoreboard.RingWindow`
and :class:`~repro.core.scoreboard.StoreScoreboard`.

Phase A mirrors the scalar :class:`~repro.core.lsu.StoreWindow` membership
(same capacity, same eviction order) so store-distance/seq resolution and
the ``branches_between`` / ``store_pc`` ground-truth computation match the
scalar run exactly.  Phase B replicates the scalar constraint chain —
fetch width, redirect barriers, window releases, port pools with the same
strict-< scan, in-order commit — and calls the memory hierarchy with the
exact argument stream of the scalar run, so cache/MSHR state stays
bit-identical too.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence

import numpy as np

from ..analysis.accuracy import OutcomeKind
from ..branch.tage import TAGEBranchPredictor
from ..common.foldplan import BranchStream
from ..memory.hierarchy import MemoryHierarchy
from ..obs.cycles import CycleStack
from ..predictors.base import MDPredictor
from ..predictors.batch import (
    OUTCOME_BY_CODE,
    OUTCOME_CODES,
    PRED_KIND_BY_CODE,
)
from ..trace.columns import OP_BY_CODE, OP_CODES, TraceColumns
from ..trace.uop import MicroOp, OpClass
from .config import GOLDEN_COVE, CoreConfig
from .pipeline import _CONSUMER_OPS, _WINDOW_CATEGORIES
from .scoreboard import SeqScoreboard, StoreScoreboard
from .stats import PipelineStats

__all__ = ["BatchedPipeline"]

_OP_ALU = OP_CODES[OpClass.ALU]
_OP_MUL = OP_CODES[OpClass.MUL]
_OP_DIV = OP_CODES[OpClass.DIV]
_OP_FP = OP_CODES[OpClass.FP]
_OP_LOAD = OP_CODES[OpClass.LOAD]
_OP_STORE = OP_CODES[OpClass.STORE]
_OP_BC = OP_CODES[OpClass.BRANCH_COND]
_OP_BI = OP_CODES[OpClass.BRANCH_INDIRECT]

#: Consumer-wait eligibility by op code (mirrors pipeline._CONSUMER_OPS).
_IS_CONSUMER = tuple(op in _CONSUMER_OPS for op in OP_BY_CODE)

_OC_CORRECT_SMB = OUTCOME_CODES[OutcomeKind.CORRECT_SMB]


class BatchedPipeline:
    """One core, one trace, one predictor — batched engine.

    Drop-in for :class:`~repro.core.pipeline.Pipeline`: same constructor,
    same :meth:`run` contract (including the single-use guard and the
    warmup ``measure_from`` semantics), same :attr:`stats`,
    :attr:`cycle_stack` and :meth:`timeline` surface.
    """

    def __init__(
        self,
        predictor: MDPredictor,
        config: CoreConfig = GOLDEN_COVE,
        branch_predictor=None,
        hierarchy: Optional[MemoryHierarchy] = None,
        record_timeline: bool = False,
        accounting: bool = False,
    ):
        self.config = config
        self.predictor = predictor
        self.branch_predictor = branch_predictor or TAGEBranchPredictor()
        self.hierarchy = hierarchy or MemoryHierarchy(config.memory)
        self.stats = PipelineStats()
        self._acct: Optional[CycleStack] = CycleStack() if accounting else None
        self._record_timeline = record_timeline
        # Per-uop timing exported at end of run (timeline, re-run guard).
        self._commit_times: List[int] = []
        self._issue_times: List[int] = []
        self._fetch_times: List[int] = []
        self._dispatch_times: List[int] = []
        self._complete_times: List[int] = []
        self._stores: Optional[StoreScoreboard] = None

    # ------------------------------------------------------------------ run

    def run(self, trace: Sequence[MicroOp],
            measure_from: int = 0) -> PipelineStats:
        """Simulate the trace; returns (and stores) the statistics."""
        if self._commit_times:
            raise RuntimeError(
                "Pipeline instances are single-use: construct a new "
                "Pipeline per run (predictor and cache state would "
                "otherwise leak between traces)"
            )
        if not 0 <= measure_from <= len(trace):
            raise ValueError(
                f"measure_from {measure_from} outside trace of {len(trace)}"
            )
        cols = TraceColumns.ensure(trace)
        phase_a = self._phase_a(trace, cols, measure_from)
        self._phase_b(cols, measure_from, phase_a)
        return self.stats

    # -------------------------------------------------- phase A: predictors

    def _phase_a(self, trace: Sequence[MicroOp], cols: TraceColumns,
                 measure_from: int):
        """Replay the predictor-visible event stream in trace order.

        Returns the per-event decision lists Phase B consumes.  All
        predictor and branch-predictor state (tables, history, telemetry,
        ``predictions_per_table``, branch stats) is fully updated here,
        exactly as a scalar run would leave it.
        """
        cfg = self.config
        stats = self.stats
        session = self.predictor.batch_session()
        bsession = self.branch_predictor.batch_session()
        bstats = self.branch_predictor.stats

        lists = cols.lists()
        pc_l = lists["pc"]
        dep_l = lists["dep_store_seq"]
        dist_l = lists["store_distance"]
        byp_l = lists["bypass"]
        ev_idx = cols.indices_of(
            OpClass.LOAD, OpClass.STORE,
            OpClass.BRANCH_COND, OpClass.BRANCH_INDIRECT,
        )
        ev_seqs = ev_idx.tolist()

        # Whole-run history/key precomputation: the architectural branch
        # stream is a pure function of the trace, so sessions that support
        # priming vectorise their fold registers and table keys up front.
        bseqs = cols.indices_of(OpClass.BRANCH_COND, OpClass.BRANCH_INDIRECT)
        bkind = (cols.op[bseqs] == _OP_BI).astype(np.int64)
        bval = np.where(
            bkind == 0,
            cols.taken[bseqs].astype(np.int64),
            cols.target[bseqs],
        )
        stream = BranchStream(bkind, cols.pc[bseqs].astype(np.int64), bval)
        load_seqs = cols.indices_of(OpClass.LOAD)
        prime = getattr(session, "prime", None)
        if prime is not None:
            cond_before = np.searchsorted(bseqs[bkind == 0], load_seqs)
            ind_before = np.searchsorted(bseqs[bkind == 1], load_seqs)
            prime(stream, cols.pc[load_seqs].astype(np.int64),
                  cond_before, ind_before)
        bprime = getattr(bsession, "prime", None)
        if bprime is not None:
            bprime(stream)

        # Scalar StoreWindow membership mirror (same capacity + eviction).
        cap = max(cfg.sb_size * 2, 256)
        recent: deque = deque()
        member = set()
        store_branch = [0] * cols.n
        branch_count = 0

        # Per-load decisions for Phase B.
        ld_kind: List[int] = []
        ld_target: List[int] = []          # resolved store seq, -1 = none
        ld_conservative: List[bool] = []
        ld_smb_ok: List[bool] = []         # outcome was CORRECT_SMB
        ld_present: List[bool] = []        # actual dep store still in window
        st_ordering: List[int] = []        # Store Sets LFST constraint seq
        br_correct: List[bool] = []

        # Outcome/kind counters by int code (enum-keyed dicts filled after
        # the loop — list indexing beats enum hashing on the hot path).
        oc_counts = [0] * len(OUTCOME_BY_CODE)
        kc_counts = [0] * len(PRED_KIND_BY_CODE)
        oc_smb = _OC_CORRECT_SMB
        acc_loads = 0

        # Branch stats accumulate from cycle 0; snapshot at the warmup
        # boundary exactly as the scalar run() does (they only move on
        # branch events, so snapshotting at the first measured event is
        # equivalent to snapshotting after the warmup prefix).
        warm_done = measure_from == 0
        warm_mispredicts = bstats.mispredictions
        warm_indirect = bstats.indirect_mispredictions

        op_l = lists["op"]
        op_load = _OP_LOAD
        op_store = _OP_STORE
        op_bc = _OP_BC
        s_on_branch = session.on_branch
        s_on_indirect = session.on_indirect
        s_on_store = session.on_store
        s_predict_train = session.predict_train
        b_on_branch = bsession.on_branch
        b_on_indirect = bsession.on_indirect

        for seq in ev_seqs:
            if not warm_done and seq >= measure_from:
                warm_mispredicts = bstats.mispredictions
                warm_indirect = bstats.indirect_mispredictions
                warm_done = True
            code = op_l[seq]
            uop = trace[seq]
            if code == op_load:
                dep = dep_l[seq]
                present = dep >= 0 and dep in member
                if present:
                    bb = branch_count - store_branch[dep]
                    spc = pc_l[dep]
                else:
                    bb = 0
                    spc = None
                kind, p_seq, p_dist, conservative, ok_code = s_predict_train(
                    uop, bb, spc, dist_l[seq], byp_l[seq]
                )
                tgt = -1
                if kind:
                    if p_seq is not None:
                        if p_seq in member:
                            tgt = p_seq
                    elif 0 < p_dist <= len(recent):
                        tgt = recent[-p_dist]
                ld_kind.append(kind)
                ld_target.append(tgt)
                ld_conservative.append(conservative)
                ld_smb_ok.append(ok_code == oc_smb)
                ld_present.append(present)
                if seq >= measure_from:
                    oc_counts[ok_code] += 1
                    kc_counts[kind] += 1
                    acc_loads += 1
            elif code == op_store:
                oseq = s_on_store(uop)
                st_ordering.append(
                    oseq if (oseq is not None and oseq in member) else -1
                )
                store_branch[seq] = branch_count
                recent.append(seq)
                member.add(seq)
                if len(recent) > cap:
                    member.discard(recent.popleft())
            elif code == op_bc:
                br_correct.append(b_on_branch(uop.pc, uop.taken))
                s_on_branch(uop.pc, uop.taken)
                branch_count += 1
            else:  # BRANCH_INDIRECT
                br_correct.append(b_on_indirect(uop.pc, uop.target))
                s_on_indirect(uop.pc, uop.target)
                branch_count += 1

        if not warm_done:
            warm_mispredicts = bstats.mispredictions
            warm_indirect = bstats.indirect_mispredictions
        session.finish()
        bsession.finish()

        oc = stats.accuracy.outcome_counts
        pcounts = stats.accuracy.prediction_counts
        for code, count in enumerate(oc_counts):
            if count:
                oc[OUTCOME_BY_CODE[code]] += count
        for code, count in enumerate(kc_counts):
            if count:
                pcounts[PRED_KIND_BY_CODE[code]] += count
        stats.accuracy.loads = acc_loads
        stats.branch_mispredictions = bstats.mispredictions - warm_mispredicts
        stats.indirect_mispredictions = (
            bstats.indirect_mispredictions - warm_indirect
        )

        # Measured-region op counts (the scalar per-step increments).
        mop = cols.op[measure_from:]
        stats.loads = int(np.count_nonzero(mop == _OP_LOAD))
        stats.stores = int(np.count_nonzero(mop == _OP_STORE))
        stats.branches = int(np.count_nonzero(mop == _OP_BC)) + int(
            np.count_nonzero(mop == _OP_BI)
        )

        return (ld_kind, ld_target, ld_conservative, ld_smb_ok, ld_present,
                st_ordering, br_correct, store_branch)

    # ------------------------------------------------------ phase B: timing

    def _phase_b(self, cols: TraceColumns, measure_from: int,
                 phase_a) -> None:
        """Monolithic timing loop — the scalar constraint chain, inlined."""
        (ld_kind, ld_target, ld_conservative, ld_smb_ok, ld_present,
         st_ordering, br_correct, store_branch) = phase_a
        cfg = self.config
        n = cols.n
        lists = cols.lists()
        op_l = lists["op"]
        pc_l = lists["pc"]
        addr_l = lists["address"]
        asrc_l = lists["addr_src"]
        dep_l = lists["dep_store_seq"]
        srcs_l = cols.srcs

        fetch_width = cfg.fetch_width
        frontend = cfg.frontend_latency
        rob_size = cfg.rob_size
        iq_size = cfg.iq_size
        commit_width = cfg.commit_width
        alu_lat = cfg.alu_latency
        mul_lat = cfg.mul_latency
        div_lat = cfg.div_latency
        fp_lat = cfg.fp_latency
        br_lat = cfg.branch_latency
        agu_lat = cfg.agu_latency
        sb_drain = cfg.sb_drain_latency
        enforce_drain = cfg.enforce_sb_drain
        fwd_lat = cfg.forward_latency
        squash_ovh = cfg.squash_overhead

        # Port pools: same strict-< earliest-free scan as PortPool.issue.
        # The ALU pool's scan is inlined at its use sites (every ALU, MUL,
        # DIV and branch op goes through it); the rarer pools keep the
        # closure.
        load_free = [0] * cfg.load_ports
        store_free = [0] * cfg.store_ports
        alu_free = [0] * cfg.alu_ports
        fp_free = [0] * cfg.fp_ports
        n_alu_ports = cfg.alu_ports

        def pool_issue(free: List[int], ready: int, occupancy: int = 1) -> int:
            best = 0
            best_free = free[0]
            for i in range(1, len(free)):
                if free[i] < best_free:
                    best = i
                    best_free = free[i]
            cycle = ready if ready > best_free else best_free
            free[best] = cycle + occupancy
            return cycle

        value_ready = [0] * n
        issue_times = [0] * n
        commit_times = [0] * n
        produced = (cols.op == _OP_LOAD).tolist()

        recording = self._record_timeline
        if recording:
            fetch_times = [0] * n
            dispatch_times = [0] * n
            complete_times = [0] * n

        # Store-timing columns as plain lists during the loop (native-int
        # reads); exported as a numpy StoreScoreboard at end of run.  The
        # LQ/SB window-release reads ("when did the load/store `capacity`
        # slots ago commit/drain?") index the per-kind event lists directly
        # — the RingWindow form of the same read stays property-tested in
        # tests/core.
        lq_size = cfg.lq_size
        sb_size = cfg.sb_size
        st_addr = [-1] * n
        st_data = [-1] * n
        st_drain = [-1] * n
        st_bc = [-1] * n
        ld_commits: List[int] = []
        st_drains: List[int] = []

        timed_load = self.hierarchy.timed_load
        store_probe = self.hierarchy.store_probe

        acct = self._acct
        accounting = acct is not None
        if accounting:
            acct_cycles = acct.cycles
        prev_commit = 0
        barrier_bound = False
        acct_exec = "execute"
        port_from = 0
        dep_from = 0
        rob_point = iq_point = lq_point = sb_point = 0

        barrier = 0
        fetch_cycle = 0
        fetch_slots = 0
        commit_cycle = 0
        commit_slots = 0

        n_stall = n_fwd = n_byp = n_squash = n_cons = n_wait = 0
        li = si = bi = 0
        is_consumer = _IS_CONSUMER
        op_alu = _OP_ALU
        op_load = _OP_LOAD
        op_store = _OP_STORE
        op_bc = _OP_BC
        op_fp = _OP_FP
        op_mul = _OP_MUL
        op_bi = _OP_BI
        op_div = _OP_DIV

        for seq in range(n):
            code = op_l[seq]
            measuring = seq >= measure_from

            # -- fetch (width + redirect barrier) --
            if barrier > fetch_cycle:
                fetch_cycle = barrier
                fetch_slots = 0
            fetch = fetch_cycle
            fetch_slots += 1
            if fetch_slots >= fetch_width:
                fetch_cycle += 1
                fetch_slots = 0

            # -- dispatch (window releases) --
            is_load = code == op_load
            is_store = code == op_store
            rob_point = iq_point = lq_point = sb_point = 0
            rv = seq - rob_size
            if rv >= 0:
                rob_point = commit_times[rv]
            iv = seq - iq_size
            if iv >= 0:
                iq_point = issue_times[iv]
            if is_load:
                if li >= lq_size:
                    lq_point = ld_commits[li - lq_size]
            elif is_store:
                if si >= sb_size:
                    sb_point = st_drains[si - sb_size]
            dispatch = fetch + frontend
            if rob_point > dispatch:
                dispatch = rob_point
            if iq_point > dispatch:
                dispatch = iq_point
            if lq_point > dispatch:
                dispatch = lq_point
            if sb_point > dispatch:
                dispatch = sb_point

            # -- source readiness --
            ready = 0
            srcs = srcs_l[seq]
            for src in srcs:
                t = value_ready[src]
                if t > ready:
                    ready = t
            d1 = dispatch + 1
            earliest = d1 if d1 > ready else ready
            if accounting:
                barrier_bound = barrier > 0 and fetch == barrier
                acct_exec = "execute"
                port_from = earliest
                dep_from = earliest

            # Sec. VI-A consumer-wait metric.
            if measuring and srcs and is_consumer[code]:
                for src in srcs:
                    if produced[src]:
                        n_cons += 1
                        wait = ready - d1
                        if wait > 0:
                            n_wait += wait
                        break

            if code == op_alu:
                best = 0
                best_free = alu_free[0]
                for i in range(1, n_alu_ports):
                    if alu_free[i] < best_free:
                        best = i
                        best_free = alu_free[i]
                issue = earliest if earliest > best_free else best_free
                alu_free[best] = issue + 1
                complete = issue + alu_lat
                value = complete
            elif is_load:
                kind = ld_kind[li]
                tgt = ld_target[li]
                a = d1
                asrc = asrc_l[seq]
                if asrc >= 0:
                    t = value_ready[asrc]
                    if t > a:
                        a = t
                if ready > a:
                    a = ready
                if accounting:
                    dep_from = a
                wait_until = a
                if kind and tgt >= 0:
                    hold = st_addr[tgt]
                    if ld_conservative[li]:
                        hold += 1
                    if hold > wait_until:
                        if measuring:
                            n_stall += 1
                        wait_until = hold
                issue = pool_issue(load_free, wait_until)
                if accounting:
                    port_from = wait_until
                dep = dep_l[seq]
                squash_at = 0  # 0 = no squash (cycle 0 is never a squash)
                if dep >= 0 and ld_present[li]:
                    dep_addr = st_addr[dep]
                    if issue < dep_addr:
                        squash_at = dep_addr + 1
                        fr = st_data[dep]
                        if dep_addr > fr:
                            fr = dep_addr
                        t = squash_at + squash_ovh
                        if fr > t:
                            t = fr
                        complete = t + fwd_lat
                    elif enforce_drain and issue > st_drain[dep]:
                        complete = timed_load(
                            pc_l[seq], addr_l[seq], issue + agu_lat - 1
                        )
                    else:
                        if measuring:
                            n_fwd += 1
                        fr = st_data[dep]
                        if dep_addr > fr:
                            fr = dep_addr
                        t = issue if issue > fr else fr
                        complete = t + fwd_lat
                else:
                    complete = timed_load(
                        pc_l[seq], addr_l[seq], issue + agu_lat - 1
                    )
                value = complete
                if kind == 2 and tgt >= 0:
                    if ld_smb_ok[li]:
                        if measuring:
                            n_byp += 1
                        bv = st_data[tgt] + 1
                        if d1 > bv:
                            bv = d1
                        if bv < value:
                            value = bv
                    else:
                        ta = st_addr[tgt]
                        addr_check = (issue if issue > ta else ta) + 1
                        i1 = issue + 1
                        m = addr_check if addr_check > i1 else i1
                        verify = complete if complete < m else m
                        if verify > squash_at:
                            squash_at = verify
                        t = verify + squash_ovh
                        if t > complete:
                            complete = t
                        value = complete
                if squash_at:
                    if measuring:
                        n_squash += 1
                    t = squash_at + squash_ovh
                    if t > barrier:
                        barrier = t
                if accounting:
                    acct_exec = "squash" if squash_at else "memory"
                li += 1
            elif is_store:
                a = d1
                asrc = asrc_l[seq]
                if asrc >= 0:
                    t = value_ready[asrc]
                    if t > a:
                        a = t
                if accounting:
                    dep_from = a
                oseq = st_ordering[si]
                if oseq >= 0:
                    t = st_addr[oseq] + 1
                    if t > a:
                        a = t
                issue = pool_issue(store_free, a)
                addr_resolve = issue + agu_lat
                data_avail = ready if ready > d1 else d1
                complete = (addr_resolve if addr_resolve > data_avail
                            else data_avail)
                if accounting:
                    port_from = a
                store_probe(addr_l[seq])
                st_addr[seq] = addr_resolve
                st_data[seq] = data_avail
                st_bc[seq] = store_branch[seq]
                value = complete
                si += 1
            elif code == op_bc or code == op_bi:
                best = 0
                best_free = alu_free[0]
                for i in range(1, n_alu_ports):
                    if alu_free[i] < best_free:
                        best = i
                        best_free = alu_free[i]
                issue = earliest if earliest > best_free else best_free
                alu_free[best] = issue + 1
                complete = issue + br_lat
                value = complete
                if not br_correct[bi]:
                    t = complete + 1
                    if t > barrier:
                        barrier = t
                bi += 1
            elif code == op_fp:
                issue = pool_issue(fp_free, earliest)
                complete = issue + fp_lat
                value = complete
            elif code == op_mul:
                issue = pool_issue(alu_free, earliest)
                complete = issue + mul_lat
                value = complete
            elif code == op_div:
                issue = pool_issue(alu_free, earliest, div_lat)
                complete = issue + div_lat
                value = complete
            else:  # NOP
                issue = earliest
                complete = issue
                value = complete

            # -- commit (in order, width-limited) --
            c = complete + 1
            if c < commit_cycle:
                c = commit_cycle
            if c > commit_cycle:
                commit_cycle = c
                commit_slots = 0
            commit_slots += 1
            if commit_slots >= commit_width:
                commit_cycle += 1
                commit_slots = 0

            issue_times[seq] = issue
            commit_times[seq] = c
            value_ready[seq] = value
            if recording:
                fetch_times[seq] = fetch
                dispatch_times[seq] = dispatch
                complete_times[seq] = complete
            if is_load:
                ld_commits.append(c)
            elif is_store:
                drain = c + sb_drain
                st_drains.append(drain)
                st_drain[seq] = drain

            # -- cycle accounting (scalar _account, inlined) --
            if accounting:
                if not measuring:
                    prev_commit = c
                else:
                    lo = prev_commit
                    prev_commit = c
                    hi = c
                    if hi > lo:
                        cuts = [
                            (complete, "commit"),
                            (issue, acct_exec),
                            (port_from, "ports"),
                            (dep_from, "dependence"),
                            (d1, "src_wait"),
                        ]
                        frontier = fetch + frontend
                        if dispatch > frontier:
                            points = (rob_point, iq_point, lq_point, sb_point)
                            cuts.append((
                                frontier,
                                _WINDOW_CATEGORIES[points.index(max(points))],
                            ))
                        front = "redirect" if barrier_bound else "frontend"
                        cuts.append((fetch, front))
                        for point, cat in cuts:
                            if point < lo:
                                point = lo
                            if point < hi:
                                acct_cycles[cat] += hi - point
                                hi = point
                        if hi > lo:
                            acct_cycles[front] += hi - lo

        # -- end of run --
        stats = self.stats
        measured = n - measure_from
        stats.instructions = measured
        start_cycle = commit_times[measure_from - 1] if measure_from > 0 else 0
        stats.cycles = max(commit_cycle - start_cycle, 1)
        stats.accuracy.instructions = max(measured, 1)
        stats.memory_squashes = n_squash
        stats.loads_stalled_by_prediction = n_stall
        stats.loads_bypassed = n_byp
        stats.loads_forwarded = n_fwd
        stats.load_consumers = n_cons
        stats.load_consumer_wait_cycles = n_wait
        if acct is not None:
            tail = stats.cycles - acct.total
            if tail > 0:
                acct.add("commit", tail)

        sb = StoreScoreboard(n)
        sb.addr_resolve[:] = st_addr
        sb.data_ready[:] = st_data
        sb.drain[:] = st_drain
        sb.branch_count[:] = st_bc
        self._issue_times = issue_times
        self._commit_times = commit_times
        self._stores = sb
        if recording:
            self._fetch_times = fetch_times
            self._dispatch_times = dispatch_times
            self._complete_times = complete_times

    # ------------------------------------------------------------ interface

    @property
    def cycle_stack(self) -> CycleStack:
        """The per-category cycle attribution (``accounting=True`` only)."""
        if self._acct is None:
            raise RuntimeError(
                "pipeline was not constructed with accounting=True"
            )
        return self._acct

    def timeline(self, trace: Optional[Sequence[MicroOp]] = None):
        """The recorded timeline (``record_timeline=True`` only)."""
        from .timeline import Timeline, UopTiming

        if not self._record_timeline:
            raise RuntimeError(
                "pipeline was not constructed with record_timeline=True"
            )
        timings = [
            UopTiming(
                seq=i,
                fetch=self._fetch_times[i],
                dispatch=self._dispatch_times[i],
                issue=max(self._issue_times[i], self._dispatch_times[i]),
                complete=max(self._complete_times[i], self._issue_times[i]),
                commit=self._commit_times[i],
            )
            for i in range(len(self._commit_times))
        ]
        return Timeline(timings, trace)

    def seq_scoreboard(self) -> SeqScoreboard:
        """Columnar per-uop timing (``record_timeline=True`` only)."""
        if not self._record_timeline:
            raise RuntimeError(
                "pipeline was not constructed with record_timeline=True"
            )
        return SeqScoreboard(
            self._fetch_times, self._dispatch_times, self._issue_times,
            self._complete_times, self._commit_times,
        )
