"""Issue-port contention model.

Each execution-port class (load AGU, store AGU, ALU, FP) is a small pool of
fully-pipelined units.  An operation ready at cycle ``t`` issues on the port
that frees earliest, at ``max(t, port_free)``; the port is then busy for one
cycle (initiation interval 1), except unpipelined dividers which hold their
port for the full latency.
"""

from __future__ import annotations

from typing import List

__all__ = ["PortPool", "PortSet"]


class PortPool:
    """A pool of identical, pipelined execution ports."""

    __slots__ = ("name", "_free_at")

    def __init__(self, name: str, count: int):
        if count <= 0:
            raise ValueError(f"port pool {name!r} needs at least one port")
        self.name = name
        self._free_at: List[int] = [0] * count

    def issue(self, ready: int, occupancy: int = 1) -> int:
        """Issue an op ready at ``ready``; returns the actual issue cycle.

        ``occupancy`` is how long the port stays busy (1 for pipelined ops,
        the full latency for unpipelined ones like divides).
        """
        best = 0
        best_free = self._free_at[0]
        for i in range(1, len(self._free_at)):
            if self._free_at[i] < best_free:
                best = i
                best_free = self._free_at[i]
        issue_cycle = ready if ready > best_free else best_free
        self._free_at[best] = issue_cycle + occupancy
        return issue_cycle

    @property
    def count(self) -> int:
        return len(self._free_at)

    def reset(self) -> None:
        self._free_at = [0] * len(self._free_at)


class PortSet:
    """The full complement of execution ports of one core."""

    def __init__(self, load_ports: int, store_ports: int, alu_ports: int,
                 fp_ports: int):
        self.load = PortPool("load", load_ports)
        self.store = PortPool("store", store_ports)
        self.alu = PortPool("alu", alu_ports)
        self.fp = PortPool("fp", fp_ports)

    def reset(self) -> None:
        for pool in (self.load, self.store, self.alu, self.fp):
            pool.reset()
