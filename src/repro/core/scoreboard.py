"""Windowed numpy scoreboards for the batched timing engine.

The scalar :class:`~repro.core.pipeline.Pipeline` tracks per-uop timing in
unbounded python lists and per-store state in a dict-of-dataclasses
(:class:`~repro.core.lsu.StoreWindow`).  The batched engine replaces the
*windowed* lookups — "when did the uop ``capacity`` slots ago commit?" —
with fixed-size numpy ring buffers, and the per-store dataclass fields with
per-seq numpy columns indexed directly by sequence number.

Semantics are pinned to the scalar structures by the property tests in
``tests/core/test_scoreboard_properties.py``: a :class:`RingWindow` of
capacity ``k`` returns exactly ``history[-k]`` (the scalar code's
``list[seq - k]`` / ``deque[-k]`` reads), and :class:`StoreScoreboard`
mirrors :class:`StoreTiming` field-for-field.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RingWindow", "StoreScoreboard", "SeqScoreboard"]


class RingWindow:
    """Fixed-capacity ring over a monotone event stream.

    ``push(value)`` appends; ``release_point()`` returns the value pushed
    ``capacity`` events ago (the scalar window-release read), or ``None``
    while fewer than ``capacity`` values have been pushed.  Backed by a
    numpy buffer so bulk snapshots (:meth:`history`) are cheap, but the
    per-event path works on native ints.
    """

    __slots__ = ("capacity", "_buf", "_count")

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("RingWindow capacity must be positive")
        self.capacity = capacity
        self._buf = np.zeros(capacity, dtype=np.int64)
        self._count = 0

    def __len__(self) -> int:
        return min(self._count, self.capacity)

    @property
    def total_pushed(self) -> int:
        return self._count

    def push(self, value: int) -> None:
        self._buf[self._count % self.capacity] = value
        self._count += 1

    def release_point(self):
        """Value pushed ``capacity`` events ago, or None if not yet full.

        When the ring is full, the slot about to be overwritten *is* the
        oldest live value — i.e. ``history[-capacity]`` — so a single
        modular read serves the scalar ``list[-k]`` lookup.
        """
        if self._count < self.capacity:
            return None
        return int(self._buf[self._count % self.capacity])

    def history(self) -> np.ndarray:
        """Live window contents, oldest first (for tests/diagnostics)."""
        if self._count <= self.capacity:
            return self._buf[: self._count].copy()
        cut = self._count % self.capacity
        return np.concatenate([self._buf[cut:], self._buf[:cut]])


class StoreScoreboard:
    """Per-seq columns replacing :class:`repro.core.lsu.StoreTiming`.

    Arrays are indexed by dynamic sequence number; only store slots are
    ever written.  ``-1`` marks "not a tracked store".  The recency
    window itself (which stores are still in the capacity-bounded LSU
    window) stays with the engine's deque mirror — this class only owns
    the timing fields.
    """

    __slots__ = ("addr_resolve", "data_ready", "drain", "branch_count")

    def __init__(self, num_uops: int) -> None:
        self.addr_resolve = np.full(num_uops, -1, dtype=np.int64)
        self.data_ready = np.full(num_uops, -1, dtype=np.int64)
        self.drain = np.full(num_uops, -1, dtype=np.int64)
        self.branch_count = np.full(num_uops, -1, dtype=np.int64)

    def record(self, seq: int, addr_resolve: int, data_ready: int,
               drain: int, branch_count: int) -> None:
        self.addr_resolve[seq] = addr_resolve
        self.data_ready[seq] = data_ready
        self.drain[seq] = drain
        self.branch_count[seq] = branch_count

    def forward_ready(self, seq: int) -> int:
        return int(max(self.addr_resolve[seq], self.data_ready[seq]))


class SeqScoreboard:
    """Per-uop timing columns (fetch/dispatch/issue/complete/commit).

    The batched engine accumulates timing in plain python lists for speed
    and exports them here at end-of-run; downstream consumers (timeline
    rendering, equivalence tests) then get cheap columnar access without
    the engine paying numpy scalar costs mid-loop.
    """

    __slots__ = ("fetch", "dispatch", "issue", "complete", "commit")

    def __init__(self, fetch, dispatch, issue, complete, commit) -> None:
        self.fetch = np.asarray(fetch, dtype=np.int64)
        self.dispatch = np.asarray(dispatch, dtype=np.int64)
        self.issue = np.asarray(issue, dtype=np.int64)
        self.complete = np.asarray(complete, dtype=np.int64)
        self.commit = np.asarray(commit, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.fetch)
