"""Synthetic workload profiles standing in for SPEC CPU2017 rate.

We do not have SPEC CPU2017 binaries or the authors' SimPoint traces, so each
benchmark is replaced by a generative profile.  The predictors under study
only observe the dynamic load/store/branch stream — PCs, global branch
history, store distances and overlap classes — so a profile is calibrated to
reproduce the statistics the paper reports for its benchmark:

* the fraction of loads with an in-flight store dependence and the mix of
  SMB classes (Fig. 2: perlbench/lbm ≈ 40 % of loads with SMB opportunity,
  bwaves/wrf ≈ 5 %, most others in between);
* how strongly dependence existence/distance is conditioned on recent branch
  outcomes (the phenomenon MASCOT's non-dependence allocation targets);
* branch predictability, dataflow chain depth (ILP) and memory footprint
  (cache behaviour), which determine how much IPC headroom MDP/SMB have.

Profiles are deliberately *qualitative*: the goal is that the cross-predictor
orderings and approximate effect sizes of the paper's figures hold, not that
absolute IPC matches a real machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from .uop import BypassClass

__all__ = ["WorkloadProfile", "SPEC_SUITE", "get_profile", "suite_names"]


@dataclass(frozen=True)
class WorkloadProfile:
    """Knobs for the synthetic trace generator.

    The instruction mix fractions need not sum to 1; the remainder becomes
    plain ALU work.  ``bypass_mix`` gives the shares of dependence classes
    among *dependent* loads and must sum to 1.
    """

    name: str

    # --- instruction mix ----------------------------------------------------
    frac_load: float = 0.25
    frac_store: float = 0.12
    frac_branch: float = 0.12
    frac_fp: float = 0.10
    frac_indirect: float = 0.01  # share of branches that are indirect

    # --- dependence behaviour -------------------------------------------------
    #: Fraction of loads paired with a nearby producer store.
    dep_fraction: float = 0.25
    #: Mix of overlap classes among dependent loads (must sum to 1).
    bypass_mix: Dict[BypassClass, float] = field(
        default_factory=lambda: {
            BypassClass.DIRECT: 0.75,
            BypassClass.NO_OFFSET: 0.10,
            BypassClass.OFFSET: 0.05,
            BypassClass.MDP_ONLY: 0.10,
        }
    )
    #: Fraction of dependent pairs whose producing store sits in a
    #: branch-guarded segment, making the dependence context-conditional.
    conditional_dep_fraction: float = 0.4
    #: Fraction of *conditional* pairs built as "tight" pairs: the guarded
    #: store segment is immediately followed by the (unguarded) load with no
    #: branches in between.  This is the paper's Fig. 3 scenario: the
    #: deciding branch precedes the store, so predictors that choose context
    #: length from the store→load branch count (PHAST) land in their
    #: PC-only table and suffer persistent false dependencies, while
    #: MASCOT's non-dependence allocation disambiguates via the pre-store
    #: branch already in global history.
    tight_conditional_fraction: float = 0.6
    #: Fraction of dependent loads built as *multi-writer* pairs: two
    #: static stores walk the same slot family with different strides, so
    #: which store the load depends on varies with the loop phase.  The
    #: phase is visible in global branch history (pattern branches), so
    #: context-sensitive predictors learn it, while Store Sets merges both
    #: writers into one set and serialises the load behind whichever was
    #: fetched last — the over-serialisation the paper attributes to Store
    #: Sets on large windows (Sec. VI-A).
    multi_writer_fraction: float = 0.06
    #: Mean number of unrelated (filler) stores between a pair's store and
    #: load, controlling the store-distance distribution.
    filler_stores_mean: float = 3.0

    # --- control flow -------------------------------------------------------
    #: Taken bias of guard branches (the canonical example in Sec. III uses
    #: 70 % taken).
    guard_taken_bias: float = 0.7
    #: Fraction of branches following a learnable periodic pattern (the rest
    #: are i.i.d. coin flips at the bias) — controls branch-predictor MPKI.
    branch_pattern_fraction: float = 0.7

    # --- dataflow / ILP -------------------------------------------------------
    #: Probability that an op extends the current dependency chain rather
    #: than starting fresh.  Higher = deeper chains = lower ILP and more
    #: benefit from receiving load values early (SMB).
    chain_bias: float = 0.55
    #: Fraction of ALU/FP ops consuming the most recent load's result,
    #: controlling how load-latency-sensitive the workload is.
    load_consumer_fraction: float = 0.35
    #: Fraction of stores whose *address* hangs off live dataflow (pointer
    #: writes, computed indices).  Late store addresses are what give MDP
    #: its teeth: loads held behind such a store wait real cycles, and
    #: loads speculated past it risk genuine memory-order violations.
    store_addr_chain_fraction: float = 0.35

    # --- memory behaviour -----------------------------------------------------
    #: Footprint (bytes) of the independent-load array; large footprints
    #: overflow caches.
    footprint: int = 1 << 20
    #: Fraction of independent loads using a sequential stride (prefetch
    #: friendly) vs. uniform-random addressing.
    stride_fraction: float = 0.7

    # --- structure ------------------------------------------------------------
    #: Number of static segments in the loop body (program size knob).
    num_segments: int = 24
    #: Mean static instructions per segment.
    segment_length_mean: float = 10.0

    def __post_init__(self) -> None:
        total_mix = sum(self.bypass_mix.values())
        if abs(total_mix - 1.0) > 1e-6:
            raise ValueError(
                f"{self.name}: bypass_mix must sum to 1, got {total_mix:.4f}"
            )
        for attr in (
            "frac_load",
            "frac_store",
            "frac_branch",
            "frac_fp",
            "frac_indirect",
            "dep_fraction",
            "conditional_dep_fraction",
            "tight_conditional_fraction",
            "multi_writer_fraction",
            "guard_taken_bias",
            "branch_pattern_fraction",
            "chain_bias",
            "load_consumer_fraction",
            "store_addr_chain_fraction",
            "stride_fraction",
        ):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {attr}={value} outside [0, 1]")
        if self.frac_load + self.frac_store + self.frac_branch + self.frac_fp > 1.0:
            raise ValueError(f"{self.name}: instruction mix exceeds 100 %")
        if self.footprint <= 0 or self.num_segments <= 0:
            raise ValueError(f"{self.name}: footprint/num_segments must be positive")


def _mix(direct: float, no_offset: float, offset: float, mdp_only: float
         ) -> Dict[BypassClass, float]:
    return {
        BypassClass.DIRECT: direct,
        BypassClass.NO_OFFSET: no_offset,
        BypassClass.OFFSET: offset,
        BypassClass.MDP_ONLY: mdp_only,
    }


# ---------------------------------------------------------------------------
# The SPEC CPU2017 rate stand-in suite.
#
# Calibration notes per benchmark reference the paper's observations:
#   * Fig. 2 — per-benchmark SMB-opportunity mix and total dependence rate.
#   * Sec. VI-A — perlbench2 is highly sensitive to early load values
#     (+17.8 % over perfect MDP with SMB); lbm has many bypasses but little
#     sensitivity; exchange2 sees barely any impact; mcf has a relatively
#     high SMB misprediction share; gcc4/gcc5/mcf/nab can beat perfect MDP.
# ---------------------------------------------------------------------------

SPEC_SUITE: Tuple[WorkloadProfile, ...] = (
    # perlbench: ~40 % of loads with SMB opportunities, strongly
    # context-conditioned (interpreter dispatch), deep dependent chains.
    WorkloadProfile(
        name="perlbench1",
        frac_load=0.30, frac_store=0.16, frac_branch=0.16, frac_fp=0.02,
        frac_indirect=0.08,
        dep_fraction=0.42, bypass_mix=_mix(0.80, 0.08, 0.04, 0.08),
        conditional_dep_fraction=0.55, filler_stores_mean=2.5,
        guard_taken_bias=0.68, branch_pattern_fraction=0.75,
        chain_bias=0.68, load_consumer_fraction=0.55,
        footprint=1 << 19, stride_fraction=0.55,
        num_segments=32, segment_length_mean=9.0,
    ),
    WorkloadProfile(
        name="perlbench2",
        frac_load=0.31, frac_store=0.17, frac_branch=0.15, frac_fp=0.02,
        frac_indirect=0.09,
        dep_fraction=0.45, bypass_mix=_mix(0.82, 0.08, 0.04, 0.06),
        conditional_dep_fraction=0.60, filler_stores_mean=2.0,
        guard_taken_bias=0.70, branch_pattern_fraction=0.78,
        # Deep chains hanging off store/load pairs in an L1-resident
        # working set: load values ARE the critical path, which is why the
        # paper sees perlbench2's issue-stage waits drop 60 % with
        # bypassing and the largest per-benchmark SMB gain (Sec. VI-A).
        chain_bias=0.82, load_consumer_fraction=0.85,
        footprint=1 << 16, stride_fraction=0.75,
        num_segments=36, segment_length_mean=8.0,
    ),
    # gcc: pointer-heavy integer code, moderate dependence rate, lots of
    # conditional structure; MDP-only can beat perfect MDP (stores resolve
    # just in time).
    WorkloadProfile(
        name="gcc1",
        frac_load=0.28, frac_store=0.13, frac_branch=0.17, frac_fp=0.01,
        frac_indirect=0.05,
        dep_fraction=0.24, bypass_mix=_mix(0.70, 0.12, 0.05, 0.13),
        conditional_dep_fraction=0.50, filler_stores_mean=3.5,
        guard_taken_bias=0.65, branch_pattern_fraction=0.70,
        chain_bias=0.50, load_consumer_fraction=0.35,
        footprint=1 << 21, stride_fraction=0.55,
        num_segments=40, segment_length_mean=9.0,
    ),
    WorkloadProfile(
        name="gcc4",
        frac_load=0.28, frac_store=0.14, frac_branch=0.17, frac_fp=0.01,
        frac_indirect=0.05,
        dep_fraction=0.26, bypass_mix=_mix(0.68, 0.12, 0.06, 0.14),
        conditional_dep_fraction=0.52, filler_stores_mean=3.0,
        guard_taken_bias=0.64, branch_pattern_fraction=0.72,
        chain_bias=0.48, load_consumer_fraction=0.33,
        footprint=1 << 21, stride_fraction=0.50,
        num_segments=40, segment_length_mean=9.5,
    ),
    WorkloadProfile(
        name="gcc5",
        frac_load=0.29, frac_store=0.14, frac_branch=0.16, frac_fp=0.01,
        frac_indirect=0.05,
        dep_fraction=0.27, bypass_mix=_mix(0.69, 0.11, 0.06, 0.14),
        conditional_dep_fraction=0.50, filler_stores_mean=3.0,
        guard_taken_bias=0.66, branch_pattern_fraction=0.72,
        chain_bias=0.49, load_consumer_fraction=0.34,
        footprint=1 << 21, stride_fraction=0.50,
        num_segments=38, segment_length_mean=9.0,
    ),
    # mcf: pointer chasing, huge footprint (cache misses dominate), noisy
    # context — relatively high SMB misprediction share.
    WorkloadProfile(
        name="mcf",
        frac_load=0.32, frac_store=0.10, frac_branch=0.15, frac_fp=0.01,
        frac_indirect=0.02,
        dep_fraction=0.18, bypass_mix=_mix(0.60, 0.12, 0.08, 0.20),
        # Long mostly-dependent streaks broken by rare unpredictable
        # flips: bypass confidence saturates, then the flip squashes —
        # the paper's observation that mcf has an unusually high share of
        # SMB mispredictions (Fig. 10) while total mispredictions stay low.
        conditional_dep_fraction=0.55, filler_stores_mean=4.0,
        guard_taken_bias=0.93, branch_pattern_fraction=0.35,
        chain_bias=0.60, load_consumer_fraction=0.45,
        footprint=1 << 24, stride_fraction=0.20,
        num_segments=28, segment_length_mean=10.0,
    ),
    # omnetpp: discrete-event simulation, moderate everything, large-ish heap.
    WorkloadProfile(
        name="omnetpp",
        frac_load=0.29, frac_store=0.13, frac_branch=0.15, frac_fp=0.02,
        frac_indirect=0.06,
        dep_fraction=0.25, bypass_mix=_mix(0.72, 0.10, 0.05, 0.13),
        conditional_dep_fraction=0.48, filler_stores_mean=3.0,
        guard_taken_bias=0.62, branch_pattern_fraction=0.60,
        chain_bias=0.55, load_consumer_fraction=0.40,
        footprint=1 << 22, stride_fraction=0.35,
        num_segments=30, segment_length_mean=10.0,
    ),
    # xalancbmk: XML processing, string/stack traffic, decent dependence rate.
    WorkloadProfile(
        name="xalancbmk",
        frac_load=0.30, frac_store=0.14, frac_branch=0.16, frac_fp=0.01,
        frac_indirect=0.05,
        dep_fraction=0.30, bypass_mix=_mix(0.74, 0.10, 0.05, 0.11),
        conditional_dep_fraction=0.45, filler_stores_mean=2.5,
        guard_taken_bias=0.66, branch_pattern_fraction=0.68,
        chain_bias=0.52, load_consumer_fraction=0.38,
        footprint=1 << 21, stride_fraction=0.45,
        num_segments=34, segment_length_mean=9.0,
    ),
    # x264: media, strided streams, moderate deps, predictable branches.
    WorkloadProfile(
        name="x264",
        frac_load=0.27, frac_store=0.12, frac_branch=0.10, frac_fp=0.08,
        frac_indirect=0.01,
        dep_fraction=0.20, bypass_mix=_mix(0.70, 0.14, 0.06, 0.10),
        conditional_dep_fraction=0.30, filler_stores_mean=3.5,
        guard_taken_bias=0.75, branch_pattern_fraction=0.85,
        chain_bias=0.45, load_consumer_fraction=0.30,
        footprint=1 << 22, stride_fraction=0.85,
        num_segments=26, segment_length_mean=11.0,
    ),
    # deepsjeng / leela: game tree search, branchy, stack save/restore deps.
    WorkloadProfile(
        name="deepsjeng",
        frac_load=0.27, frac_store=0.13, frac_branch=0.18, frac_fp=0.01,
        frac_indirect=0.03,
        dep_fraction=0.28, bypass_mix=_mix(0.76, 0.09, 0.04, 0.11),
        conditional_dep_fraction=0.55, filler_stores_mean=2.5,
        guard_taken_bias=0.58, branch_pattern_fraction=0.55,
        chain_bias=0.50, load_consumer_fraction=0.35,
        footprint=1 << 20, stride_fraction=0.50,
        num_segments=32, segment_length_mean=8.5,
    ),
    WorkloadProfile(
        name="leela",
        frac_load=0.26, frac_store=0.12, frac_branch=0.17, frac_fp=0.03,
        frac_indirect=0.03,
        dep_fraction=0.26, bypass_mix=_mix(0.74, 0.10, 0.05, 0.11),
        conditional_dep_fraction=0.52, filler_stores_mean=2.5,
        guard_taken_bias=0.60, branch_pattern_fraction=0.58,
        chain_bias=0.52, load_consumer_fraction=0.36,
        footprint=1 << 20, stride_fraction=0.50,
        num_segments=30, segment_length_mean=9.0,
    ),
    # exchange2: register-resident integer puzzle solver — very few memory
    # dependencies, so MDP/SMB choices barely matter (paper: "barely any
    # impact").
    WorkloadProfile(
        name="exchange2",
        frac_load=0.16, frac_store=0.06, frac_branch=0.20, frac_fp=0.01,
        frac_indirect=0.01,
        dep_fraction=0.06, bypass_mix=_mix(0.70, 0.12, 0.06, 0.12),
        conditional_dep_fraction=0.30, filler_stores_mean=2.0,
        guard_taken_bias=0.62, branch_pattern_fraction=0.80,
        chain_bias=0.40, load_consumer_fraction=0.20,
        footprint=1 << 17, stride_fraction=0.80,
        num_segments=24, segment_length_mean=10.0,
    ),
    # xz: compression, match-copy loops with real store-to-load traffic.
    WorkloadProfile(
        name="xz",
        frac_load=0.28, frac_store=0.14, frac_branch=0.14, frac_fp=0.01,
        frac_indirect=0.01,
        dep_fraction=0.28, bypass_mix=_mix(0.72, 0.12, 0.06, 0.10),
        conditional_dep_fraction=0.45, filler_stores_mean=3.0,
        guard_taken_bias=0.60, branch_pattern_fraction=0.55,
        chain_bias=0.55, load_consumer_fraction=0.40,
        footprint=1 << 23, stride_fraction=0.60,
        num_segments=28, segment_length_mean=10.0,
    ),
    # bwaves: FP stencil, ~5 % SMB opportunity, stream-dominated.
    WorkloadProfile(
        name="bwaves",
        frac_load=0.30, frac_store=0.10, frac_branch=0.06, frac_fp=0.30,
        frac_indirect=0.00,
        dep_fraction=0.05, bypass_mix=_mix(0.60, 0.15, 0.05, 0.20),
        conditional_dep_fraction=0.15, filler_stores_mean=4.0,
        guard_taken_bias=0.85, branch_pattern_fraction=0.92,
        chain_bias=0.45, load_consumer_fraction=0.30,
        footprint=1 << 23, stride_fraction=0.92,
        num_segments=20, segment_length_mean=13.0,
    ),
    # cactuBSSN: FP grid code, low-moderate dependence.
    WorkloadProfile(
        name="cactuBSSN",
        frac_load=0.29, frac_store=0.11, frac_branch=0.05, frac_fp=0.32,
        frac_indirect=0.00,
        dep_fraction=0.10, bypass_mix=_mix(0.65, 0.15, 0.05, 0.15),
        conditional_dep_fraction=0.20, filler_stores_mean=4.0,
        guard_taken_bias=0.85, branch_pattern_fraction=0.90,
        chain_bias=0.48, load_consumer_fraction=0.32,
        footprint=1 << 23, stride_fraction=0.88,
        num_segments=22, segment_length_mean=13.0,
    ),
    # lbm: ~40 % of loads with SMB opportunity but little sensitivity to
    # early values (short consumer chains) — the paper's contrast with
    # perlbench (only 1.9 % wait-cycle reduction).
    WorkloadProfile(
        name="lbm",
        frac_load=0.29, frac_store=0.16, frac_branch=0.04, frac_fp=0.30,
        frac_indirect=0.00,
        dep_fraction=0.40, bypass_mix=_mix(0.85, 0.07, 0.03, 0.05),
        conditional_dep_fraction=0.10, filler_stores_mean=2.0,
        guard_taken_bias=0.90, branch_pattern_fraction=0.95,
        # Many bypassable pairs but flow-through stencil dataflow: loaded
        # values rarely head chains, so bypassing barely moves the
        # issue-stage waits (paper: only a 1.9 % reduction for lbm).
        chain_bias=0.25, load_consumer_fraction=0.08,
        footprint=1 << 24, stride_fraction=0.95,
        num_segments=18, segment_length_mean=14.0,
    ),
    # wrf: weather model, ~5 % SMB opportunity.
    WorkloadProfile(
        name="wrf",
        frac_load=0.28, frac_store=0.10, frac_branch=0.08, frac_fp=0.30,
        frac_indirect=0.00,
        dep_fraction=0.06, bypass_mix=_mix(0.58, 0.16, 0.06, 0.20),
        conditional_dep_fraction=0.20, filler_stores_mean=4.5,
        guard_taken_bias=0.82, branch_pattern_fraction=0.88,
        chain_bias=0.46, load_consumer_fraction=0.30,
        footprint=1 << 23, stride_fraction=0.85,
        num_segments=24, segment_length_mean=12.0,
    ),
    # cam4: atmosphere model, moderate.
    WorkloadProfile(
        name="cam4",
        frac_load=0.28, frac_store=0.11, frac_branch=0.10, frac_fp=0.28,
        frac_indirect=0.00,
        dep_fraction=0.14, bypass_mix=_mix(0.66, 0.14, 0.05, 0.15),
        conditional_dep_fraction=0.30, filler_stores_mean=3.5,
        guard_taken_bias=0.78, branch_pattern_fraction=0.80,
        chain_bias=0.48, load_consumer_fraction=0.32,
        footprint=1 << 22, stride_fraction=0.80,
        num_segments=26, segment_length_mean=12.0,
    ),
    # imagick: image processing, strided, moderate-low dependence.
    WorkloadProfile(
        name="imagick",
        frac_load=0.26, frac_store=0.12, frac_branch=0.09, frac_fp=0.26,
        frac_indirect=0.00,
        dep_fraction=0.16, bypass_mix=_mix(0.70, 0.13, 0.05, 0.12),
        conditional_dep_fraction=0.25, filler_stores_mean=3.0,
        guard_taken_bias=0.80, branch_pattern_fraction=0.85,
        chain_bias=0.50, load_consumer_fraction=0.34,
        footprint=1 << 22, stride_fraction=0.85,
        num_segments=24, segment_length_mean=12.0,
    ),
    # nab: molecular dynamics; MDP-only can beat perfect MDP.
    WorkloadProfile(
        name="nab",
        frac_load=0.27, frac_store=0.12, frac_branch=0.10, frac_fp=0.28,
        frac_indirect=0.00,
        dep_fraction=0.22, bypass_mix=_mix(0.72, 0.11, 0.05, 0.12),
        conditional_dep_fraction=0.35, filler_stores_mean=2.5,
        guard_taken_bias=0.72, branch_pattern_fraction=0.75,
        chain_bias=0.50, load_consumer_fraction=0.36,
        footprint=1 << 21, stride_fraction=0.70,
        num_segments=26, segment_length_mean=11.0,
    ),
    # fotonik3d: FDTD solver, stream heavy, low dependence.
    WorkloadProfile(
        name="fotonik3d",
        frac_load=0.30, frac_store=0.11, frac_branch=0.05, frac_fp=0.32,
        frac_indirect=0.00,
        dep_fraction=0.08, bypass_mix=_mix(0.62, 0.16, 0.05, 0.17),
        conditional_dep_fraction=0.15, filler_stores_mean=4.0,
        guard_taken_bias=0.88, branch_pattern_fraction=0.92,
        chain_bias=0.44, load_consumer_fraction=0.28,
        footprint=1 << 23, stride_fraction=0.92,
        num_segments=20, segment_length_mean=13.0,
    ),
    # roms: ocean model.
    WorkloadProfile(
        name="roms",
        frac_load=0.29, frac_store=0.11, frac_branch=0.07, frac_fp=0.30,
        frac_indirect=0.00,
        dep_fraction=0.12, bypass_mix=_mix(0.64, 0.15, 0.05, 0.16),
        conditional_dep_fraction=0.22, filler_stores_mean=3.5,
        guard_taken_bias=0.84, branch_pattern_fraction=0.88,
        chain_bias=0.46, load_consumer_fraction=0.30,
        footprint=1 << 23, stride_fraction=0.88,
        num_segments=22, segment_length_mean=12.0,
    ),
)

_BY_NAME: Dict[str, WorkloadProfile] = {p.name: p for p in SPEC_SUITE}


def get_profile(name: str) -> WorkloadProfile:
    """Look up a suite profile by benchmark name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        known = ", ".join(sorted(_BY_NAME))
        raise KeyError(f"unknown benchmark {name!r}; known: {known}") from None


def suite_names() -> List[str]:
    """Names of the full suite, in canonical (paper figure) order."""
    return [p.name for p in SPEC_SUITE]
