"""Trace serialization: save and reload annotated micro-op streams.

Generating a trace is deterministic but not free; sweeps that re-simulate
the same benchmark under many predictors can serialise the trace once and
replay it from disk (or ship a trace to another machine, as one would with
SimPoint traces).  The format is a compact line-oriented text format with a
header — easy to inspect, diff and version.

Format (one micro-op per line, space-separated)::

    #repro-trace v1 <benchmark> <num_uops>
    <seq> <op> <pc> <srcs|-> <addr_src|-> <taken> <target> <address> <size> \
        <store_distance> <dep_store_seq|-> <bypass>

Fields not applicable to an op class are written as their defaults, so the
reader round-trips exactly.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, TextIO, Union

from .uop import BypassClass, MicroOp, OpClass

__all__ = ["write_trace", "read_trace", "TraceFormatError", "FORMAT_VERSION"]

FORMAT_VERSION = 1

_OP_CODES = {op: op.value for op in OpClass}
_OP_FROM_CODE = {op.value: op for op in OpClass}
_BYPASS_FROM_CODE = {cls.value: cls for cls in BypassClass}


class TraceFormatError(ValueError):
    """Raised when a trace file does not parse."""


def _encode_uop(uop: MicroOp) -> str:
    srcs = ",".join(str(s) for s in uop.srcs) if uop.srcs else "-"
    addr_src = str(uop.addr_src) if uop.addr_src is not None else "-"
    dep = str(uop.dep_store_seq) if uop.dep_store_seq is not None else "-"
    return " ".join([
        str(uop.seq),
        _OP_CODES[uop.op],
        format(uop.pc, "x"),
        srcs,
        addr_src,
        "1" if uop.taken else "0",
        format(uop.target, "x"),
        format(uop.address, "x"),
        str(uop.size),
        str(uop.store_distance),
        dep,
        uop.bypass.value,
    ])


def _decode_uop(line: str, lineno: int) -> MicroOp:
    parts = line.split()
    if len(parts) != 12:
        raise TraceFormatError(
            f"line {lineno}: expected 12 fields, got {len(parts)}"
        )
    try:
        srcs = (
            tuple(int(s) for s in parts[3].split(","))
            if parts[3] != "-" else ()
        )
        return MicroOp(
            seq=int(parts[0]),
            pc=int(parts[2], 16),
            op=_OP_FROM_CODE[parts[1]],
            srcs=srcs,
            addr_src=None if parts[4] == "-" else int(parts[4]),
            taken=parts[5] == "1",
            target=int(parts[6], 16),
            address=int(parts[7], 16),
            size=int(parts[8]),
            store_distance=int(parts[9]),
            dep_store_seq=None if parts[10] == "-" else int(parts[10]),
            bypass=_BYPASS_FROM_CODE[parts[11]],
        )
    except (KeyError, ValueError) as exc:
        raise TraceFormatError(f"line {lineno}: {exc}") from exc


def write_trace(
    trace: Sequence[MicroOp],
    destination: Union[str, Path, TextIO],
    benchmark: str = "unknown",
) -> None:
    """Serialise a trace to a file path or text stream."""
    own = isinstance(destination, (str, Path))
    stream: TextIO = open(destination, "w") if own else destination
    try:
        stream.write(
            f"#repro-trace v{FORMAT_VERSION} {benchmark} {len(trace)}\n"
        )
        for uop in trace:
            stream.write(_encode_uop(uop) + "\n")
    finally:
        if own:
            stream.close()


def read_trace(source: Union[str, Path, TextIO]) -> List[MicroOp]:
    """Load a trace previously written by :func:`write_trace`.

    Validates the header, the per-line field count and the sequential
    numbering, so a truncated or corrupted file fails loudly rather than
    silently producing a shorter experiment.
    """
    own = isinstance(source, (str, Path))
    stream: TextIO = open(source, "r") if own else source
    try:
        header = stream.readline()
        fields = header.split()
        if (
            len(fields) != 4
            or fields[0] != "#repro-trace"
            or fields[1] != f"v{FORMAT_VERSION}"
        ):
            raise TraceFormatError(f"bad header: {header!r}")
        expected = int(fields[3])
        trace: List[MicroOp] = []
        for lineno, line in enumerate(stream, start=2):
            line = line.strip()
            if not line:
                continue
            uop = _decode_uop(line, lineno)
            if uop.seq != len(trace):
                raise TraceFormatError(
                    f"line {lineno}: sequence gap (got {uop.seq}, "
                    f"expected {len(trace)})"
                )
            trace.append(uop)
        if len(trace) != expected:
            raise TraceFormatError(
                f"header declares {expected} micro-ops, file holds "
                f"{len(trace)}"
            )
        return trace
    finally:
        if own:
            stream.close()
