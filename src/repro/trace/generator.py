"""Dynamic trace generation.

:class:`TraceGenerator` unrolls a static :class:`~repro.trace.program.Program`
into a stream of annotated :class:`~repro.trace.uop.MicroOp` records.  The
generator is the single source of ground truth: it evaluates every branch,
computes every effective address, tracks the dynamic store stream through a
:class:`~repro.trace.dependence.DependenceTracker` and stamps each load with
its true store distance and bypass class.  Both the prediction-only harness
and the timing pipeline consume the same stream, so accuracy numbers and IPC
numbers always agree about which loads were dependent.

Dataflow is modelled with explicit producer links: every value-producing
micro-op can be named as a source by later ops.  The profile's ``chain_bias``
and ``load_consumer_fraction`` control how deep dependency chains grow and
how often computation consumes fresh load results — the two knobs that decide
how much IPC is gained when SMB delivers load values early.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Iterator, List, Optional, Tuple

from .dependence import DependenceTracker
from .profiles import WorkloadProfile, get_profile
from .program import (
    Program,
    StaticInst,
    StaticKind,
    build_program,
)
from .uop import BypassClass, MicroOp, OpClass

__all__ = ["TraceGenerator", "generate_trace"]

#: How many recent producers are eligible as random dataflow sources.
_RECENT_WINDOW = 24


class TraceGenerator:
    """Generates the dynamic micro-op stream for one synthetic benchmark.

    Parameters
    ----------
    program:
        The static program to unroll (see :func:`build_program`).
    seed:
        Seed for all *dynamic* randomness (branch noise, dataflow sampling).
        Distinct from the program's structural seed so that the same static
        program can produce independent trace samples.
    store_window / instr_window:
        In-flight bounds handed to the dependence tracker; defaults match
        the Golden Cove store buffer (114) and ROB (512) of Table I.
    """

    def __init__(
        self,
        program: Program,
        seed: int = 1,
        store_window: int = 114,
        instr_window: int = 512,
    ):
        self.program = program
        self.profile = program.profile
        self._rng = random.Random(seed ^ 0x5EED)
        self._tracker = DependenceTracker(store_window, instr_window)
        self._seq = 0
        self._iteration = 0
        # Dataflow state.
        self._recent: Deque[int] = deque(maxlen=_RECENT_WINDOW)
        self._chain_head: Optional[int] = None
        self._last_load: Optional[int] = None
        # Per-static-instruction stream-load cursors, keyed by id().
        self._cursors = {}

    # -- dataflow helpers ---------------------------------------------------

    def _pick_source(self) -> Optional[int]:
        """Sample one dataflow source according to the chain bias."""
        if not self._recent:
            return None
        if self._chain_head is not None and (
            self._rng.random() < self.profile.chain_bias
        ):
            return self._chain_head
        return self._rng.choice(tuple(self._recent))

    def _compute_sources(self, want_two: bool) -> Tuple[int, ...]:
        srcs: List[int] = []
        first = self._pick_source()
        if first is not None:
            srcs.append(first)
        if want_two and self._recent and self._rng.random() < 0.5:
            second = self._rng.choice(tuple(self._recent))
            if second not in srcs:
                srcs.append(second)
        # Consumers of the most recent load model load-latency sensitivity.
        if (
            self._last_load is not None
            and self._last_load not in srcs
            and self._rng.random() < self.profile.load_consumer_fraction
        ):
            srcs.append(self._last_load)
        return tuple(srcs)

    def _produce(self, seq: int) -> None:
        self._recent.append(seq)
        self._chain_head = seq

    # -- per-kind emission ----------------------------------------------------

    def _emit(self, inst: StaticInst) -> MicroOp:
        seq = self._seq
        self._seq += 1
        kind = inst.kind

        if kind in (StaticKind.ALU, StaticKind.MUL, StaticKind.DIV, StaticKind.FP):
            uop = MicroOp(seq, inst.pc, inst.op_class,
                          srcs=self._compute_sources(want_two=True))
            self._produce(seq)
            return uop

        if kind is StaticKind.BRANCH:
            taken = inst.branch.outcome(self._iteration, self._rng)
            srcs = ()
            if self._recent and self._rng.random() < 0.5:
                srcs = (self._rng.choice(tuple(self._recent)),)
            return MicroOp(seq, inst.pc, OpClass.BRANCH_COND, srcs=srcs,
                           taken=taken, target=inst.pc + 0x20)

        if kind is StaticKind.BRANCH_INDIRECT:
            target = inst.indirect.target(self._iteration, self._rng)
            return MicroOp(seq, inst.pc, OpClass.BRANCH_INDIRECT,
                           taken=True, target=target)

        if kind in (StaticKind.STORE_PAIR, StaticKind.STORE_FILLER):
            if kind is StaticKind.STORE_PAIR:
                address = inst.pair.store_address(self._iteration,
                                                  inst.writer_stride)
                size = inst.pair.store_size
                # Pair stores write values computed earlier (a spilled
                # register, a field produced upstream): their data is ready
                # well before younger loads could complete, which is what
                # makes bypassing them profitable.
                data_src = self._recent[0] if self._recent else None
            else:
                address = inst.filler_address
                size = 8
                data_src = self._pick_source()
            srcs = (data_src,) if data_src is not None else ()
            # A fraction of stores compute their address from live dataflow
            # (pointer writes): their address resolves late, giving MDP
            # decisions real timing consequences.
            addr_src = None
            if inst.force_addr_chain and self._chain_head is not None:
                # A computed-address write: the address hangs off the live
                # dataflow chain, so it resolves moderately late — waiting
                # behind this store when it is not the actual producer
                # (Store Sets' serialise-behind-last-fetched policy) costs
                # real cycles.
                addr_src = self._chain_head
            elif (
                self._recent
                and self._rng.random() < self.profile.store_addr_chain_fraction
            ):
                addr_src = self._pick_source()
            uop = MicroOp(seq, inst.pc, OpClass.STORE, srcs=srcs,
                          address=address, size=size, addr_src=addr_src)
            self._tracker.record_raw_store(seq, address, size)
            return uop

        if kind in (StaticKind.LOAD_PAIR, StaticKind.LOAD_STREAM):
            if kind is StaticKind.LOAD_PAIR:
                address = inst.pair.load_address(self._iteration)
                size = inst.pair.load_size
            else:
                # Identity-keyed per-generator cursor dict: never ordered
                # or serialised, so the process-specific ids are safe.
                # repro-lint: allow(det-id) -- identity-only dict key
                cursor = self._cursors.get(id(inst), 0)
                if inst.stream_random:
                    offset = self._rng.randrange(
                        max(self.profile.footprint // 8, 1)
                    ) * 8
                else:
                    offset = (cursor * inst.stream_stride) % self.profile.footprint
                self._cursors[id(inst)] = cursor + 1  # repro-lint: allow(det-id)
                address = inst.stream_start + offset
                size = 8
            distance, store, bypass = self._tracker.find_dependence(
                address, size, seq
            )
            addr_src: Optional[int] = None
            if kind is StaticKind.LOAD_PAIR:
                # Pair loads compute their address from live dataflow
                # (pointer chases, index arithmetic): with probability
                # chain_bias the address hangs off the current chain head,
                # so the load issues late — exactly when obtaining its value
                # early through SMB pays off (the perlbench2 effect of
                # Sec. VI-A).
                addr_src = self._pick_source()
            elif self._recent and self._rng.random() < 0.3:
                addr_src = self._rng.choice(tuple(self._recent))
            uop = MicroOp(
                seq, inst.pc, OpClass.LOAD, addr_src=addr_src,
                address=address, size=size,
                store_distance=distance,
                dep_store_seq=store.seq if store is not None else None,
                bypass=bypass,
            )
            # Whether the load's value feeds the critical dataflow chain is
            # the profile's sensitivity knob: lbm-style streaming kernels
            # rarely chain on loaded values (bypassing helps little) while
            # perlbench-style interpreters almost always do (Sec. VI-A).
            if self._rng.random() < self.profile.load_consumer_fraction:
                self._produce(seq)
            else:
                self._recent.append(seq)
            self._last_load = seq
            return uop

        raise AssertionError(f"unhandled static kind {kind}")

    # -- main loop ----------------------------------------------------------------

    def __iter__(self) -> Iterator[MicroOp]:
        """Yield micro-ops forever; callers bound the stream length."""
        while True:
            for segment in self.program.segments:
                if segment.guard is not None:
                    guard_uop = self._emit(segment.guard)
                    yield guard_uop
                    if not guard_uop.taken:
                        continue  # segment skipped this iteration
                for inst in segment.body:
                    yield self._emit(inst)
            yield self._emit(self.program.loop_branch)
            self._iteration += 1

    def generate(self, num_uops: int) -> List[MicroOp]:
        """Materialise the first ``num_uops`` micro-ops."""
        if num_uops <= 0:
            raise ValueError("num_uops must be positive")
        out: List[MicroOp] = []
        for uop in self:
            out.append(uop)
            if len(out) >= num_uops:
                break
        return out


def generate_trace(
    benchmark: str,
    num_uops: int,
    program_seed: int = 0,
    trace_seed: int = 1,
    store_window: int = 114,
    instr_window: int = 512,
) -> List[MicroOp]:
    """Convenience one-call trace generation for a named suite benchmark.

    >>> trace = generate_trace("perlbench1", 10_000)
    >>> any(u.is_load and u.has_dependence for u in trace)
    True
    """
    profile = get_profile(benchmark)
    program = build_program(profile, seed=program_seed)
    generator = TraceGenerator(
        program, seed=trace_seed,
        store_window=store_window, instr_window=instr_window,
    )
    return generator.generate(num_uops)
