"""Synthetic workload substrate: micro-ops, programs, traces, ground truth."""

from .columns import (
    BYPASS_BY_CODE,
    BYPASS_CODES,
    OP_BY_CODE,
    OP_CODES,
    TraceColumns,
)
from .dependence import DependenceTracker, StoreRecord, classify_overlap
from .generator import TraceGenerator, generate_trace
from .profiles import SPEC_SUITE, WorkloadProfile, get_profile, suite_names
from .simpoints import (
    Interval,
    SimPoint,
    basic_block_vectors,
    estimate_weighted,
    rebase_interval,
    select_simpoints,
    split_intervals,
)
from .stream import FORMAT_VERSION, TraceFormatError, read_trace, write_trace
from .program import (
    CODE_BASE,
    FILLER_REGION,
    PAIR_GEOMETRY,
    PAIR_REGION,
    SLOT_STRIDE,
    STREAM_REGION,
    BranchBehavior,
    IndirectBehavior,
    PairInfo,
    Program,
    Segment,
    StaticInst,
    StaticKind,
    build_program,
)
from .uop import MAX_STORE_DISTANCE, BypassClass, MicroOp, OpClass
from .validate import TraceValidationError, ValidationReport, validate_trace

__all__ = [
    "BYPASS_BY_CODE",
    "BYPASS_CODES",
    "OP_BY_CODE",
    "OP_CODES",
    "TraceColumns",
    "Interval",
    "SimPoint",
    "basic_block_vectors",
    "estimate_weighted",
    "rebase_interval",
    "select_simpoints",
    "split_intervals",
    "FORMAT_VERSION",
    "TraceFormatError",
    "read_trace",
    "write_trace",
    "DependenceTracker",
    "StoreRecord",
    "classify_overlap",
    "TraceGenerator",
    "generate_trace",
    "SPEC_SUITE",
    "WorkloadProfile",
    "get_profile",
    "suite_names",
    "CODE_BASE",
    "FILLER_REGION",
    "PAIR_GEOMETRY",
    "PAIR_REGION",
    "SLOT_STRIDE",
    "STREAM_REGION",
    "BranchBehavior",
    "IndirectBehavior",
    "PairInfo",
    "Program",
    "Segment",
    "StaticInst",
    "StaticKind",
    "build_program",
    "MAX_STORE_DISTANCE",
    "TraceValidationError",
    "ValidationReport",
    "validate_trace",
    "BypassClass",
    "MicroOp",
    "OpClass",
]
