"""SimPoint-style interval selection for long traces.

The paper evaluates on "SimPoint intervals of 100 M instructions following
the guidelines of Gottschall et al." — representative slices chosen by
clustering interval fingerprints, so a few intervals stand in for a whole
benchmark.  This module implements the same pipeline for our synthetic
traces:

1. split the trace into fixed-length intervals;
2. fingerprint each interval with its **basic-block vector** (per-PC
   execution frequencies, the classic SimPoint feature);
3. cluster the vectors with k-means (k-means++ seeding, Lloyd iterations);
4. pick each cluster's medoid interval as its SimPoint, weighted by the
   cluster's share of the trace.

``estimate_weighted`` then reconstructs a whole-trace metric from per-
SimPoint measurements — useful when sweeping many predictors over traces
long enough that full simulation is wasteful.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from .uop import MicroOp

__all__ = [
    "Interval",
    "SimPoint",
    "split_intervals",
    "basic_block_vectors",
    "kmeans_labels",
    "select_simpoints",
    "rebase_interval",
    "estimate_weighted",
]


@dataclass(frozen=True)
class Interval:
    """One fixed-length slice of a trace."""

    index: int
    start: int  # first uop seq (inclusive)
    end: int    # last uop seq (exclusive)


@dataclass(frozen=True)
class SimPoint:
    """A representative interval and the trace share it stands for."""

    interval: Interval
    weight: float
    cluster_size: int


def split_intervals(trace: Sequence[MicroOp],
                    interval_length: int) -> List[Interval]:
    """Partition the trace into full intervals (a short tail is dropped,
    as SimPoint does)."""
    if interval_length <= 0:
        raise ValueError("interval length must be positive")
    count = len(trace) // interval_length
    return [
        Interval(index=i, start=i * interval_length,
                 end=(i + 1) * interval_length)
        for i in range(count)
    ]


def basic_block_vectors(trace: Sequence[MicroOp],
                        intervals: Sequence[Interval]) -> np.ndarray:
    """L1-normalised per-PC frequency vectors, one row per interval."""
    if not intervals:
        raise ValueError("no intervals to fingerprint")
    pc_index: Dict[int, int] = {}
    for uop in trace:
        if uop.pc not in pc_index:
            pc_index[uop.pc] = len(pc_index)
    vectors = np.zeros((len(intervals), len(pc_index)), dtype=np.float64)
    for interval in intervals:
        for seq in range(interval.start, interval.end):
            vectors[interval.index, pc_index[trace[seq].pc]] += 1.0
    sums = vectors.sum(axis=1, keepdims=True)
    sums[sums == 0.0] = 1.0
    return vectors / sums


def _reseed_empty_clusters(vectors: np.ndarray, centers: np.ndarray,
                           labels: np.ndarray, k: int) -> np.ndarray:
    """Give every empty cluster a fresh centroid; returns updated labels.

    A cluster that empties during Lloyd iterations would otherwise keep a
    stale centroid — and, worse, ``select_simpoints`` would silently
    return fewer than k representatives.  Each empty cluster is re-seeded
    on the point farthest from its current centroid (the classic
    farthest-point repair), which is deterministic: ``argmax`` breaks
    ties on the lowest index.  As long as the data has at least k
    distinct rows, some assigned point sits strictly away from its
    centroid, so the repair always finds a non-degenerate seed.
    """
    for j in range(k):
        if np.any(labels == j):
            continue
        distances = ((vectors - centers[labels]) ** 2).sum(axis=1)
        farthest = int(np.argmax(distances))
        if distances[farthest] <= 0.0:
            continue  # fewer than k distinct points: nothing to steal
        centers[j] = vectors[farthest]
        labels[farthest] = j
    return labels


def kmeans_labels(vectors: np.ndarray, k: int, seed: int,
                  iterations: int = 50) -> np.ndarray:
    """Lloyd's k-means with k-means++ seeding; returns labels.

    Deterministic for a given ``(vectors, k, seed)``; empty clusters are
    re-seeded from the farthest point (see
    :func:`_reseed_empty_clusters`), so with at least k distinct rows
    every one of the k labels survives to the result.
    """
    rng = np.random.default_rng(seed)
    n = vectors.shape[0]
    # k-means++ seeding.
    centroids = [vectors[rng.integers(n)]]
    for _ in range(1, k):
        distances = np.min(
            [np.sum((vectors - c) ** 2, axis=1) for c in centroids], axis=0
        )
        total = distances.sum()
        if total <= 0:
            centroids.append(vectors[rng.integers(n)])
            continue
        centroids.append(vectors[rng.choice(n, p=distances / total)])
    centers = np.array(centroids)

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(iterations):
        distances = ((vectors[:, None, :] - centers[None, :, :]) ** 2).sum(
            axis=2
        )
        new_labels = distances.argmin(axis=1)
        new_labels = _reseed_empty_clusters(vectors, centers, new_labels, k)
        if np.array_equal(new_labels, labels):
            break
        labels = new_labels
        for j in range(k):
            members = vectors[labels == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    return labels


#: Backwards-compatible alias (the fixed implementation).
_kmeans = kmeans_labels


def select_simpoints(
    trace: Sequence[MicroOp],
    interval_length: int,
    max_k: int = 6,
    seed: int = 0,
) -> List[SimPoint]:
    """Choose representative intervals covering the trace's phases.

    ``k`` is min(max_k, number of intervals); each cluster contributes its
    medoid (the member closest to the centroid) weighted by cluster share.
    Weights sum to 1 over the returned SimPoints.
    """
    intervals = split_intervals(trace, interval_length)
    if not intervals:
        raise ValueError(
            f"trace of {len(trace)} uops yields no {interval_length}-uop "
            "intervals"
        )
    vectors = basic_block_vectors(trace, intervals)
    k = min(max_k, len(intervals))
    labels = kmeans_labels(vectors, k, seed)

    simpoints: List[SimPoint] = []
    for j in range(k):
        member_ids = np.flatnonzero(labels == j)
        if len(member_ids) == 0:
            continue
        members = vectors[member_ids]
        centroid = members.mean(axis=0)
        medoid_pos = int(
            np.argmin(((members - centroid) ** 2).sum(axis=1))
        )
        interval = intervals[int(member_ids[medoid_pos])]
        simpoints.append(SimPoint(
            interval=interval,
            weight=len(member_ids) / len(intervals),
            cluster_size=len(member_ids),
        ))
    simpoints.sort(key=lambda s: s.interval.index)
    return simpoints


def rebase_interval(trace: Sequence[MicroOp],
                    interval: Interval,
                    offset: int = 0) -> List[MicroOp]:
    """Extract an interval as a standalone trace.

    Sequence numbers are renumbered from ``offset`` (0 by default) and all
    dataflow / dependence references to micro-ops before the interval are
    dropped — exactly the state a simulation warmed only within the slice
    would observe (values from before the slice are architectural state,
    not in-flight producers).  A non-zero ``offset`` places the slice
    after ``offset`` other micro-ops, so rebased slices can be stitched
    into one replay trace (e.g. a shared warmup prefix followed by a
    sampled region); in-slice references stay in-slice — they never reach
    into whatever precedes the offset.
    """
    from .uop import BypassClass

    if offset < 0:
        raise ValueError("offset must be non-negative")
    start = interval.start
    delta = offset - start
    out: List[MicroOp] = []
    for seq in range(interval.start, interval.end):
        uop = trace[seq]
        srcs = tuple(s + delta for s in uop.srcs if s >= start)
        addr_src = (
            uop.addr_src + delta
            if uop.addr_src is not None and uop.addr_src >= start else None
        )
        in_slice_dep = (
            uop.dep_store_seq is not None and uop.dep_store_seq >= start
        )
        out.append(MicroOp(
            seq=uop.seq + delta,
            pc=uop.pc,
            op=uop.op,
            srcs=srcs,
            addr_src=addr_src,
            taken=uop.taken,
            target=uop.target,
            address=uop.address,
            size=uop.size,
            store_distance=uop.store_distance if in_slice_dep else 0,
            dep_store_seq=(uop.dep_store_seq + delta) if in_slice_dep
            else None,
            bypass=uop.bypass if in_slice_dep else BypassClass.NONE,
        ))
    return out


def estimate_weighted(
    trace: Sequence[MicroOp],
    simpoints: Sequence[SimPoint],
    metric: Callable[[Sequence[MicroOp], int], float],
    warmup_intervals: int = 1,
) -> float:
    """Weighted-average a per-slice metric over the SimPoints.

    Each representative interval is re-based into a standalone trace (see
    :func:`rebase_interval`), preceded by up to ``warmup_intervals`` of the
    trace immediately before it.  ``metric(piece, measure_from)`` receives
    the combined slice and the index where measurement should begin —
    :meth:`repro.core.Pipeline.run` accepts exactly this pair, implementing
    the warmed-measurement discipline of SimPoint methodology (cold caches
    and predictors would otherwise bias every slice downward).
    """
    if not simpoints:
        raise ValueError("no simpoints")
    if warmup_intervals < 0:
        raise ValueError("warmup_intervals must be non-negative")
    total_weight = sum(s.weight for s in simpoints)
    if total_weight <= 0:
        raise ValueError("simpoint weights must be positive")
    acc = 0.0
    for simpoint in simpoints:
        interval = simpoint.interval
        length = interval.end - interval.start
        warmup = min(warmup_intervals * length, interval.start)
        extended = Interval(index=interval.index,
                            start=interval.start - warmup,
                            end=interval.end)
        piece = rebase_interval(trace, extended)
        acc += simpoint.weight * metric(piece, warmup)
    return acc / total_weight
