"""Bounded, process-wide memo of generated traces for tests and benches.

``tests/conftest.py`` and ``benchmarks/conftest.py`` both need the same
thing: "give me the canonical small trace for these parameters, generating
it at most once per process".  Both previously grew private dict caches;
this module is the single shared implementation, with an LRU bound so a
long pytest session sweeping many (benchmark, length) combinations cannot
accumulate traces without limit.

Distinct from :class:`repro.experiments.runner.TraceCache` on purpose:
that cache is unbounded by design (suite sweeps revisit every benchmark
repeatedly and each worker holds only its shard), keys on the full
generation parameter set, and is part of the simulation engine's hot
path.  This one is a test fixture with an eviction policy.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Tuple

from .generator import generate_trace
from .uop import MicroOp

__all__ = ["cached_trace", "cache_info", "clear"]

#: Maximum distinct (benchmark, length, seeds, windows) traces retained.
#: Sized for the test suite's working set (a handful of named fixtures
#: plus property-test variations); eviction is least-recently-used.
MAX_ENTRIES = 16

_CACHE: "OrderedDict[Tuple, List[MicroOp]]" = OrderedDict()
_hits = 0
_misses = 0


def cached_trace(
    benchmark: str = "perlbench1",
    num_uops: int = 20_000,
    program_seed: int = 0,
    trace_seed: int = 1,
    store_window: int = 114,
    instr_window: int = 512,
) -> List[MicroOp]:
    """Generate (and memoise, LRU-bounded) a trace for tests/benches.

    Callers must not mutate the returned list or its micro-ops — it is
    shared across every fixture user in the process.
    """
    global _hits, _misses
    key = (benchmark, num_uops, program_seed, trace_seed,
           store_window, instr_window)
    trace = _CACHE.get(key)
    if trace is not None:
        _hits += 1
        _CACHE.move_to_end(key)
        return trace
    _misses += 1
    trace = generate_trace(
        benchmark, num_uops,
        program_seed=program_seed, trace_seed=trace_seed,
        store_window=store_window, instr_window=instr_window,
    )
    _CACHE[key] = trace
    while len(_CACHE) > MAX_ENTRIES:
        _CACHE.popitem(last=False)
    return trace


def cache_info() -> dict:
    """Counters for tests asserting the sharing actually happens."""
    return {"entries": len(_CACHE), "hits": _hits, "misses": _misses,
            "max_entries": MAX_ENTRIES}


def clear() -> None:
    global _hits, _misses
    _CACHE.clear()
    _hits = 0
    _misses = 0
