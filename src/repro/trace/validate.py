"""Trace validation: check every invariant a consumer relies on.

Traces can come from the generator (always valid), from disk
(:mod:`repro.trace.stream`), or from user code building custom workloads.
The pipeline and the predictors index into the trace by sequence number and
trust the ground-truth annotations; a malformed trace fails *obscurely*
(wrong statistics) rather than loudly.  :func:`validate_trace` fails loudly
instead, checking:

* sequence numbers are contiguous from 0;
* dataflow sources (``srcs``, ``addr_src``) reference earlier
  value-producing micro-ops;
* memory ops have positive sizes and branch ops carry outcomes;
* every dependence annotation is real: the referenced store exists, is
  older, overlaps the load's bytes, the bypass class matches the geometry
  (Fig. 1), the distance counts intervening stores exactly, and no younger
  store also overlaps (the annotation must be the *youngest* conflict);
* annotated dependencies respect the declared in-flight windows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .dependence import classify_overlap
from .uop import MicroOp, OpClass

__all__ = ["TraceValidationError", "ValidationReport", "validate_trace"]

#: Op classes that produce a register value consumable by later ops.
_PRODUCERS = frozenset({
    OpClass.ALU, OpClass.MUL, OpClass.DIV, OpClass.FP, OpClass.LOAD,
})


class TraceValidationError(ValueError):
    """Raised by :func:`validate_trace` in strict mode."""


@dataclass
class ValidationReport:
    """Outcome of a validation pass."""

    uops: int = 0
    loads: int = 0
    stores: int = 0
    dependent_loads: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def add(self, seq: int, message: str) -> None:
        self.errors.append(f"uop {seq}: {message}")

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"{len(self.errors)} errors"
        return (
            f"ValidationReport({status}, uops={self.uops}, "
            f"loads={self.loads}, stores={self.stores})"
        )


def validate_trace(
    trace: Sequence[MicroOp],
    store_window: int = 114,
    instr_window: int = 512,
    strict: bool = True,
    max_errors: int = 50,
) -> ValidationReport:
    """Check all trace invariants; see the module docstring.

    In strict mode (default) the first report with errors raises
    :class:`TraceValidationError`; otherwise the report is returned with up
    to ``max_errors`` collected messages.
    """
    report = ValidationReport(uops=len(trace))
    producers = set()
    # store seq -> (store number, address, size); store_count counts all
    # dynamic stores so distances can be recomputed exactly.
    stores: Dict[int, tuple] = {}
    store_order: List[int] = []

    for position, uop in enumerate(trace):
        if len(report.errors) >= max_errors:
            break
        if uop.seq != position:
            report.add(uop.seq, f"expected sequence number {position}")
            break

        for src in uop.srcs:
            if not (0 <= src < uop.seq):
                report.add(uop.seq, f"source {src} is not an earlier uop")
            elif src not in producers:
                report.add(uop.seq, f"source {src} is not a value producer")
        if uop.addr_src is not None:
            if not (0 <= uop.addr_src < uop.seq):
                report.add(uop.seq, f"addr_src {uop.addr_src} out of range")
            elif uop.addr_src not in producers:
                report.add(uop.seq,
                           f"addr_src {uop.addr_src} is not a producer")

        if uop.op.is_memory and uop.size <= 0:
            report.add(uop.seq, "memory op with non-positive size")

        if uop.is_store:
            report.stores += 1
            stores[uop.seq] = (len(store_order), uop.address, uop.size)
            store_order.append(uop.seq)
        elif uop.is_load:
            report.loads += 1
            _validate_load(uop, stores, store_order, store_window,
                           instr_window, report)
            if uop.has_dependence:
                report.dependent_loads += 1

        if uop.op in _PRODUCERS:
            producers.add(uop.seq)

    if strict and not report.ok:
        raise TraceValidationError(
            f"{len(report.errors)} invariant violations; first: "
            f"{report.errors[0]}"
        )
    return report


def _validate_load(
    uop: MicroOp,
    stores: Dict[int, tuple],
    store_order: List[int],
    store_window: int,
    instr_window: int,
    report: ValidationReport,
) -> None:
    if not uop.has_dependence:
        # The load claims independence; verify no in-window store overlaps.
        for store_seq in reversed(store_order[-store_window:]):
            if uop.seq - store_seq > instr_window:
                break
            _, addr, size = stores[store_seq]
            if classify_overlap(addr, size, uop.address,
                                uop.size).is_dependence:
                report.add(
                    uop.seq,
                    f"annotated independent but store {store_seq} overlaps",
                )
                break
        return

    dep = uop.dep_store_seq
    if dep not in stores:
        report.add(uop.seq, f"dep_store_seq {dep} is not a store")
        return
    if dep >= uop.seq:
        report.add(uop.seq, f"dep_store_seq {dep} is not older")
        return
    store_number, addr, size = stores[dep]

    cls = classify_overlap(addr, size, uop.address, uop.size)
    if cls is not uop.bypass:
        report.add(
            uop.seq,
            f"bypass class {uop.bypass.value} does not match geometry "
            f"({cls.value})",
        )

    expected_distance = len(store_order) - store_number
    if uop.store_distance != expected_distance:
        report.add(
            uop.seq,
            f"store_distance {uop.store_distance} != actual "
            f"{expected_distance}",
        )

    if expected_distance > store_window:
        report.add(uop.seq, "dependence beyond the store window")
    if uop.seq - dep > instr_window:
        report.add(uop.seq, "dependence beyond the instruction window")

    # The annotated store must be the youngest overlapping one.
    for younger_seq in reversed(store_order):
        if younger_seq <= dep:
            break
        _, y_addr, y_size = stores[younger_seq]
        if classify_overlap(y_addr, y_size, uop.address,
                            uop.size).is_dependence:
            report.add(
                uop.seq,
                f"store {younger_seq} is a younger overlapping store than "
                f"the annotated {dep}",
            )
            break
