"""Static program model for the synthetic workload generator.

A synthetic benchmark is a loop over a static *body*: an ordered list of
:class:`Segment` objects, each optionally guarded by a conditional branch.
When a guard resolves not-taken its segment is skipped for that iteration —
exactly how if-statements shape real instruction streams.  Skipping a segment
that contains the producing store of a load/store pair is what makes the
load's dependence (existence *and* distance) conditional on global branch
history, the program behaviour MASCOT is built to capture (Sec. III's
worked example).

Store/load pairs address *rotating* slots (``base + (iteration % rotation) *
SLOT_STRIDE``), modelling stack frames and circular buffers.  With rotation
greater than one, a skipped store leaves the slot's previous write many
iterations in the past — outside the in-flight window — so the load is
genuinely non-dependent, not merely dependent at a longer distance.
"""

from __future__ import annotations

# repro-lint: allow-file(det-id) -- StaticInst objects are mutable (hence
# unhashable-by-value) and id() keys the position/pairing dicts of a single
# build_program() pass.  The ids are compared for identity only: iteration
# always runs over the `placed`/`stores` *lists*, so no result, ordering or
# cache key ever depends on the process-specific id values.

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .profiles import WorkloadProfile
from .uop import BypassClass, OpClass

__all__ = [
    "StaticKind",
    "BranchBehavior",
    "IndirectBehavior",
    "PairInfo",
    "StaticInst",
    "Segment",
    "Program",
    "build_program",
    "SLOT_STRIDE",
    "PAIR_REGION",
    "FILLER_REGION",
    "STREAM_REGION",
    "CODE_BASE",
]

#: Byte spacing between rotating slots; chosen so no pair geometry
#: (max load end = base + 10) can spill into a neighbouring slot.
SLOT_STRIDE = 16

#: Disjoint data regions.  Pair slots and filler slots never collide with the
#: streaming array, keeping ground-truth dependence annotations exact.
PAIR_REGION = 0x1000_0000
FILLER_REGION = 0x2000_0000
STREAM_REGION = 0x4000_0000

#: Base of the synthetic code region (PCs).
CODE_BASE = 0x40_0000


class StaticKind(enum.Enum):
    """Role of a static instruction inside the loop body."""

    ALU = "alu"
    MUL = "mul"
    DIV = "div"
    FP = "fp"
    LOAD_PAIR = "load_pair"      # consumer side of a store/load pair
    LOAD_STREAM = "load_stream"  # independent load over the big array
    STORE_PAIR = "store_pair"    # producer side of a pair
    STORE_FILLER = "store_filler"
    BRANCH = "branch"            # in-body conditional branch
    BRANCH_INDIRECT = "branch_indirect"


_KIND_TO_OPCLASS = {
    StaticKind.ALU: OpClass.ALU,
    StaticKind.MUL: OpClass.MUL,
    StaticKind.DIV: OpClass.DIV,
    StaticKind.FP: OpClass.FP,
    StaticKind.LOAD_PAIR: OpClass.LOAD,
    StaticKind.LOAD_STREAM: OpClass.LOAD,
    StaticKind.STORE_PAIR: OpClass.STORE,
    StaticKind.STORE_FILLER: OpClass.STORE,
    StaticKind.BRANCH: OpClass.BRANCH_COND,
    StaticKind.BRANCH_INDIRECT: OpClass.BRANCH_INDIRECT,
}


class BranchBehavior:
    """Outcome model of a static conditional branch.

    Pattern branches repeat a fixed, randomly drawn taken/not-taken sequence
    with occasional noise flips — learnable by a history-based direction
    predictor.  Non-pattern branches are i.i.d. coin flips at ``bias`` —
    irreducibly mispredicted at ``min(bias, 1 - bias)``.
    """

    __slots__ = ("bias", "pattern", "noise")

    def __init__(self, bias: float, pattern: Optional[Sequence[bool]] = None,
                 noise: float = 0.01):
        if not 0.0 <= bias <= 1.0:
            raise ValueError("bias must be in [0, 1]")
        if not 0.0 <= noise <= 1.0:
            raise ValueError("noise must be in [0, 1]")
        self.bias = bias
        self.pattern = list(pattern) if pattern is not None else None
        self.noise = noise

    def outcome(self, iteration: int, rng: random.Random) -> bool:
        if self.pattern is not None:
            value = self.pattern[iteration % len(self.pattern)]
            if self.noise and rng.random() < self.noise:
                return not value
            return value
        return rng.random() < self.bias

    @classmethod
    def random_pattern(cls, bias: float, rng: random.Random,
                       noise: float = 0.01) -> "BranchBehavior":
        """Draw a periodic pattern whose taken rate approximates ``bias``.

        Periods are powers of two so that the *joint* pattern of all the
        program's branches has a short period (their lcm) — interleaved
        coprime periods would make the global history effectively aperiodic,
        which no history-based predictor (hardware or modelled) can learn,
        unlike the correlated branch behaviour of real programs.
        """
        period = rng.choice((4, 8, 8, 16, 16))
        pattern = [rng.random() < bias for _ in range(period)]
        if not any(pattern):
            pattern[rng.randrange(period)] = True
        return cls(bias, pattern, noise)


class IndirectBehavior:
    """Target model of a static indirect branch: a periodic target sequence."""

    __slots__ = ("targets", "pattern")

    def __init__(self, targets: Sequence[int], pattern: Sequence[int]):
        if not targets:
            raise ValueError("indirect branch needs at least one target")
        if any(not 0 <= p < len(targets) for p in pattern):
            raise ValueError("pattern indexes out of range")
        self.targets = list(targets)
        self.pattern = list(pattern)

    def target(self, iteration: int, rng: random.Random) -> int:
        if not self.pattern:
            return self.targets[rng.randrange(len(self.targets))]
        return self.targets[self.pattern[iteration % len(self.pattern)]]

    @classmethod
    def random(cls, pc: int, rng: random.Random) -> "IndirectBehavior":
        n_targets = rng.randint(2, 6)
        targets = [pc + 0x40 * (i + 1) for i in range(n_targets)]
        period = rng.choice((4, 8, 16))  # power-of-two, see random_pattern
        pattern = [rng.randrange(n_targets) for _ in range(period)]
        return cls(targets, pattern)


@dataclass
class PairInfo:
    """Geometry and placement of one store/load pair.

    ``rotation`` is the number of distinct slots the pair cycles through;
    addresses advance by :data:`SLOT_STRIDE` per iteration modulo rotation.
    ``conditional`` records that the producing store sits in a guarded
    segment while the load does not (ground-truth metadata for tests and
    analysis, not consumed by predictors).
    """

    pair_id: int
    base_address: int
    rotation: int
    store_size: int
    load_size: int
    load_offset: int
    bypass_class: BypassClass
    conditional: bool = False

    def __post_init__(self) -> None:
        if self.rotation <= 0:
            raise ValueError("rotation must be positive")
        if self.store_size <= 0 or self.load_size <= 0:
            raise ValueError("access sizes must be positive")
        if self.load_offset < 0:
            raise ValueError("load offset must be non-negative")
        span = max(self.store_size, self.load_offset + self.load_size)
        if span > SLOT_STRIDE:
            raise ValueError(
                f"pair {self.pair_id}: geometry spans {span} bytes, "
                f"exceeding the {SLOT_STRIDE}-byte slot stride"
            )

    def store_address(self, iteration: int, stride: int = 1) -> int:
        """Slot address for iteration; a writer's ``stride`` walks the slot
        family in its own order (multi-writer pairs alias the load's slot
        only on iterations where the walks coincide)."""
        return (
            self.base_address
            + ((iteration * stride) % self.rotation) * SLOT_STRIDE
        )

    def load_address(self, iteration: int) -> int:
        return self.store_address(iteration) + self.load_offset


#: Pair geometry per bypass class: (store_size, load_size, load_offset).
#: See Fig. 1: DIRECT = identical access; NO_OFFSET = aligned narrower load;
#: OFFSET = contained load at a positive offset; MDP_ONLY = partial overlap
#: (load extends past the end of the store).
PAIR_GEOMETRY: Dict[BypassClass, Tuple[int, int, int]] = {
    BypassClass.DIRECT: (8, 8, 0),
    BypassClass.NO_OFFSET: (8, 4, 0),
    BypassClass.OFFSET: (8, 4, 4),
    BypassClass.MDP_ONLY: (8, 4, 6),
}


@dataclass
class StaticInst:
    """One static instruction of the loop body."""

    pc: int
    kind: StaticKind
    #: Pair membership for LOAD_PAIR / STORE_PAIR.
    pair: Optional[PairInfo] = None
    #: Filler-store slot address (STORE_FILLER).
    filler_address: int = 0
    #: Stream-load parameters (LOAD_STREAM).
    stream_stride: int = 64
    stream_random: bool = False
    stream_start: int = 0
    #: Branch behaviour (BRANCH / BRANCH_INDIRECT).
    branch: Optional[BranchBehavior] = None
    indirect: Optional[IndirectBehavior] = None
    #: Slot-walk stride for STORE_PAIR writers (see PairInfo.store_address).
    writer_stride: int = 1
    #: Force this memory op's address to hang off the live dataflow chain
    #: (late-resolving address).
    force_addr_chain: bool = False

    @property
    def op_class(self) -> OpClass:
        return _KIND_TO_OPCLASS[self.kind]


@dataclass
class Segment:
    """A contiguous run of static instructions, optionally guarded.

    A guarded segment executes only in iterations where its guard branch
    resolves taken.  The guard itself always executes (it is what decides).
    """

    index: int
    guard: Optional[StaticInst]
    body: List[StaticInst] = field(default_factory=list)

    @property
    def is_guarded(self) -> bool:
        return self.guard is not None


@dataclass
class Program:
    """A complete static synthetic program (loop body + metadata)."""

    profile: WorkloadProfile
    segments: List[Segment]
    pairs: List[PairInfo]
    loop_branch: StaticInst
    seed: int

    @property
    def static_instructions(self) -> List[StaticInst]:
        """All static instructions in program order (guards included)."""
        out: List[StaticInst] = []
        for segment in self.segments:
            if segment.guard is not None:
                out.append(segment.guard)
            out.extend(segment.body)
        out.append(self.loop_branch)
        return out

    @property
    def body_size(self) -> int:
        return len(self.static_instructions)


def _draw_kind(rng: random.Random, profile: WorkloadProfile) -> StaticKind:
    """Sample a non-guard instruction kind from the profile's mix."""
    r = rng.random()
    if r < profile.frac_load:
        return StaticKind.LOAD_STREAM  # pairing decided in a later pass
    r -= profile.frac_load
    if r < profile.frac_store:
        return StaticKind.STORE_FILLER
    r -= profile.frac_store
    if r < profile.frac_branch:
        if rng.random() < profile.frac_indirect:
            return StaticKind.BRANCH_INDIRECT
        return StaticKind.BRANCH
    r -= profile.frac_branch
    if r < profile.frac_fp:
        return StaticKind.FP
    # Remaining ALU work, with a sprinkle of long-latency integer ops.
    roll = rng.random()
    if roll < 0.04:
        return StaticKind.DIV
    if roll < 0.14:
        return StaticKind.MUL
    return StaticKind.ALU


class _BypassClassAllocator:
    """Deterministic largest-deficit assignment of pair classes.

    A program has only a few dozen pairs; i.i.d. sampling routinely starves
    the rare classes (Offset at ~4 % share) entirely, which would erase
    whole Fig. 2 columns.  Largest-remainder assignment keeps the realised
    mix as close to the profile as integer counts allow.
    """

    def __init__(self, mix: Dict[BypassClass, float]):
        self._mix = dict(mix)
        self._counts = {cls: 0 for cls in mix}
        self._total = 0

    def next(self) -> BypassClass:
        best = max(
            self._mix,
            key=lambda cls: (
                self._mix[cls] * (self._total + 1) - self._counts[cls],
                self._mix[cls],
            ),
        )
        self._counts[best] += 1
        self._total += 1
        return best


def build_program(profile: WorkloadProfile, seed: int = 0) -> Program:
    """Construct a static program realising ``profile``.

    The builder works in four passes:

    1. lay out guarded/unguarded segments and fill them with instruction
       kinds drawn from the profile mix;
    2. splice in *tight conditional pairs* — a guarded segment holding the
       producing store immediately followed by an unguarded segment opening
       with the consuming load (Fig. 3's scenario, see
       :class:`~repro.trace.profiles.WorkloadProfile`);
    3. convert a ``dep_fraction`` share of the remaining loads into pair
       loads, each matched to an earlier store such that the expected number
       of intervening stores approximates ``filler_stores_mean``, honouring
       the conditional/unconditional split;
    4. assign addresses (pair slots, filler slots, stream cursors) and
       branch behaviours.
    """
    rng = random.Random(seed)
    next_pc = CODE_BASE

    def take_pc() -> int:
        nonlocal next_pc
        pc = next_pc
        next_pc += 4
        return pc

    # Pass 1: segments and raw kinds. ---------------------------------------
    segments: List[Segment] = []
    for seg_index in range(profile.num_segments):
        # Segment 0 is never guarded so every iteration has a spine of
        # always-executed work (and somewhere to place unconditional pairs).
        guarded = seg_index > 0 and rng.random() < 0.5
        guard: Optional[StaticInst] = None
        if guarded:
            if rng.random() < profile.branch_pattern_fraction:
                behavior = BranchBehavior.random_pattern(
                    profile.guard_taken_bias, rng
                )
            else:
                behavior = BranchBehavior(profile.guard_taken_bias)
            guard = StaticInst(take_pc(), StaticKind.BRANCH, branch=behavior)
        length = max(3, int(round(rng.gauss(
            profile.segment_length_mean, profile.segment_length_mean / 3.0
        ))))
        body: List[StaticInst] = []
        for _ in range(length):
            kind = _draw_kind(rng, profile)
            inst = StaticInst(take_pc(), kind)
            if kind is StaticKind.BRANCH:
                # In-body branches are biased, as real-code branches are:
                # even when the pattern is not history-learnable, a bimodal
                # fallback predicts them at their bias.
                if rng.random() < profile.branch_pattern_fraction:
                    bias = rng.uniform(0.6, 0.95)
                    inst.branch = BranchBehavior.random_pattern(bias, rng)
                else:
                    inst.branch = BranchBehavior(rng.uniform(0.7, 0.95))
            elif kind is StaticKind.BRANCH_INDIRECT:
                inst.indirect = IndirectBehavior.random(inst.pc, rng)
            body.append(inst)
        segments.append(Segment(seg_index, guard, body))

    pairs: List[PairInfo] = []
    class_allocator = _BypassClassAllocator(profile.bypass_mix)

    # Pass 2: tight conditional pairs (Fig. 3 scenario). -----------------------
    expected_loads = profile.num_segments * profile.segment_length_mean * (
        profile.frac_load
    )
    n_tight = int(round(
        expected_loads
        * profile.dep_fraction
        * profile.conditional_dep_fraction
        * profile.tight_conditional_fraction
    ))
    for _ in range(n_tight):
        cls = class_allocator.next()
        store_size, load_size, load_offset = PAIR_GEOMETRY[cls]
        # Mostly rotation > 1 (conditional *existence* of the dependence,
        # the Fig. 3 pathology that yields false dependencies); a small
        # minority rotate through one slot, making the *distance*
        # conditional instead (a squash-prone case for everyone).
        rotation = 8 if rng.random() < 0.9 else 1
        pair = PairInfo(
            pair_id=len(pairs),
            base_address=0,
            rotation=rotation,
            store_size=store_size,
            load_size=load_size,
            load_offset=load_offset,
            bypass_class=cls,
            conditional=True,
        )
        pairs.append(pair)
        if rng.random() < profile.branch_pattern_fraction:
            behavior = BranchBehavior.random_pattern(profile.guard_taken_bias, rng)
        else:
            behavior = BranchBehavior(profile.guard_taken_bias)
        guard = StaticInst(take_pc(), StaticKind.BRANCH, branch=behavior)
        store_segment = Segment(0, guard, [
            StaticInst(take_pc(), StaticKind.STORE_PAIR, pair=pair),
            StaticInst(take_pc(), StaticKind.ALU),
        ])
        load_segment = Segment(0, None, [
            StaticInst(take_pc(), StaticKind.LOAD_PAIR, pair=pair),
            StaticInst(take_pc(), StaticKind.ALU),
            StaticInst(take_pc(), StaticKind.ALU),
        ])
        # Splice the two segments, adjacent, at a random position (but never
        # before segment 0, the unguarded spine).
        where = rng.randint(1, len(segments))
        segments[where:where] = [store_segment, load_segment]
    # Pass 2b: multi-writer pairs (the Store Sets over-serialisation
    # scenario, Sec. VI-A).  Two writers walk the same slot family with
    # strides 1 and 5 over rotation 8: they alias exactly on even
    # iterations, so which store the load depends on is the loop parity — a
    # signal every short history window carries, learnable by any
    # context-sensitive predictor but invisible to Store Sets.  The second
    # writer's address resolves late (pointer chase), making a
    # serialise-behind-last-fetched policy genuinely expensive.
    n_multi = int(round(
        expected_loads * profile.dep_fraction * profile.multi_writer_fraction
    ))
    for _ in range(n_multi):
        cls = class_allocator.next()
        store_size, load_size, load_offset = PAIR_GEOMETRY[cls]
        pair = PairInfo(
            pair_id=len(pairs),
            base_address=0,
            rotation=8,
            store_size=store_size,
            load_size=load_size,
            load_offset=load_offset,
            bypass_class=cls,
            conditional=False,
        )
        pairs.append(pair)
        writer_a = Segment(0, None, [
            StaticInst(take_pc(), StaticKind.STORE_PAIR, pair=pair,
                       writer_stride=1),
            StaticInst(take_pc(), StaticKind.ALU),
        ])
        if rng.random() < profile.branch_pattern_fraction:
            behavior = BranchBehavior.random_pattern(0.85, rng)
        else:
            behavior = BranchBehavior(0.85)
        writer_b = Segment(0, StaticInst(take_pc(), StaticKind.BRANCH,
                                         branch=behavior), [
            StaticInst(take_pc(), StaticKind.STORE_PAIR, pair=pair,
                       writer_stride=5, force_addr_chain=True),
            StaticInst(take_pc(), StaticKind.ALU),
        ])
        reader = Segment(0, None, [
            StaticInst(take_pc(), StaticKind.LOAD_PAIR, pair=pair),
            StaticInst(take_pc(), StaticKind.ALU),
        ])
        where = rng.randint(1, len(segments))
        segments[where:where] = [writer_a, writer_b, reader]

    for index, segment in enumerate(segments):
        segment.index = index

    # Pass 3: loose pair assignment. ---------------------------------------------
    # Collect loads and stores with their segment indices, in program order.
    placed: List[Tuple[int, StaticInst]] = []  # (segment index, inst)
    for segment in segments:
        for inst in segment.body:
            placed.append((segment.index, inst))

    loads = [(s, i) for s, i in placed if i.kind is StaticKind.LOAD_STREAM]
    stores = [(s, i) for s, i in placed if i.kind is StaticKind.STORE_FILLER]
    store_positions = {id(inst): pos for pos, (_, inst) in enumerate(stores)}
    order = {id(inst): pos for pos, (_, inst) in enumerate(placed)}
    paired_store_ids = set()
    guarded_by_segment = {seg.index: seg.is_guarded for seg in segments}

    # Tight pairs already realised part of the dependence and conditional
    # budgets; the loose pass covers the remainder.
    loose_dep_prob = profile.dep_fraction * (
        1.0 - profile.conditional_dep_fraction
        * profile.tight_conditional_fraction
    )
    loose_cond_prob = profile.conditional_dep_fraction * (
        1.0 - profile.tight_conditional_fraction
    )

    def eligible_stores(load_seg: int, load_pos: int, conditional: bool
                        ) -> List[Tuple[int, StaticInst]]:
        """Stores usable as the producer for a load, honouring guard rules."""
        found = []
        for seg, store in stores:
            if id(store) in paired_store_ids:
                continue
            if seg > load_seg:
                continue
            if conditional:
                # Producer must be guarded; the load must execute regardless,
                # so it cannot share the producer's segment.
                if not guarded_by_segment[seg] or seg == load_seg:
                    continue
            else:
                # Unconditional: store and load always execute together —
                # either both in unguarded segments or in the *same* segment.
                if guarded_by_segment[seg] and seg != load_seg:
                    continue
                if guarded_by_segment[load_seg] and seg != load_seg:
                    continue
            if order[id(store)] >= order[id(loads[load_pos][1])]:
                continue  # store must statically precede the load
            found.append((seg, store))
        return found

    for load_pos, (load_seg, load_inst) in enumerate(loads):
        if rng.random() >= loose_dep_prob:
            continue
        conditional = (
            rng.random() < loose_cond_prob
            and not guarded_by_segment[load_seg]
        )
        candidates = eligible_stores(load_seg, load_pos, conditional)
        if not candidates and conditional:
            conditional = False
            candidates = eligible_stores(load_seg, load_pos, conditional)
        if not candidates:
            continue  # realised dep_fraction falls slightly short; fine
        # Prefer the candidate whose static store gap (number of static
        # stores between producer and load) approximates the filler target.
        target_gap = max(0, int(round(rng.expovariate(
            1.0 / max(profile.filler_stores_mean, 0.25)
        ))))
        load_store_rank = sum(
            1 for _, st in stores if order[id(st)] < order[id(load_inst)]
        )
        best = min(
            candidates,
            key=lambda c: abs(
                (load_store_rank - 1 - store_positions[id(c[1])]) - target_gap
            ),
        )
        _, store_inst = best
        cls = class_allocator.next()
        store_size, load_size, load_offset = PAIR_GEOMETRY[cls]
        # Conditional-existence pairs rotate through many slots so a skipped
        # store leaves the load with no in-flight producer; a minority rotate
        # through a single slot, making the *distance* conditional instead.
        if conditional:
            rotation = 8 if rng.random() < 0.7 else 1
        else:
            rotation = 1 if rng.random() < 0.8 else 4
        pair = PairInfo(
            pair_id=len(pairs),
            base_address=0,  # assigned in pass 3
            rotation=rotation,
            store_size=store_size,
            load_size=load_size,
            load_offset=load_offset,
            bypass_class=cls,
            conditional=conditional,
        )
        pairs.append(pair)
        store_inst.kind = StaticKind.STORE_PAIR
        store_inst.pair = pair
        load_inst.kind = StaticKind.LOAD_PAIR
        load_inst.pair = pair
        paired_store_ids.add(id(store_inst))

    # Pass 3: addresses. --------------------------------------------------------
    next_pair_base = PAIR_REGION
    for pair in pairs:
        pair.base_address = next_pair_base
        next_pair_base += pair.rotation * SLOT_STRIDE + SLOT_STRIDE

    filler_index = 0
    stream_index = 0
    for segment in segments:
        for inst in segment.body:
            if inst.kind is StaticKind.STORE_FILLER:
                inst.filler_address = FILLER_REGION + filler_index * SLOT_STRIDE
                filler_index += 1
            elif inst.kind is StaticKind.LOAD_STREAM:
                inst.stream_random = rng.random() >= profile.stride_fraction
                inst.stream_stride = rng.choice((8, 16, 64, 64))
                inst.stream_start = (
                    STREAM_REGION
                    + (stream_index * 4096) % max(profile.footprint, 4096)
                )
                stream_index += 1

    # The loop-back branch: almost always taken, a real history contributor.
    loop_branch = StaticInst(
        take_pc(), StaticKind.BRANCH, branch=BranchBehavior(0.999, noise=0.0)
    )

    return Program(
        profile=profile,
        segments=segments,
        pairs=pairs,
        loop_branch=loop_branch,
        seed=seed,
    )
