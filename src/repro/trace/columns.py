"""Columnar (struct-of-arrays) view of a micro-op trace.

The batched engine (:mod:`repro.core.batched`) does not iterate
:class:`~repro.trace.uop.MicroOp` objects on its hot path; it consumes
per-field numpy columns precomputed once per trace.  :class:`TraceColumns`
is that view: one array per scalar field, with ``-1`` sentinels standing in
for ``None`` (``addr_src``, ``dep_store_seq``) and small integer codes for
the two enums.

The columns are derived data — they add no information beyond the trace —
so they are memoised by *identity* in a small bounded cache
(:func:`TraceColumns.ensure`).  Identity keying is safe because the
experiment harness holds traces in :class:`repro.experiments.runner.TraceCache`
for the life of the process; it also means a mutated trace list produces a
fresh column set rather than a stale one only if the caller rebuilds the
list object, which matches how traces are treated everywhere else
(immutable once generated).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from .uop import BypassClass, MicroOp, OpClass

__all__ = ["OP_CODES", "OP_BY_CODE", "BYPASS_CODES", "BYPASS_BY_CODE",
           "TraceColumns"]

#: Stable integer codes for :class:`OpClass`, ordered by enum definition.
OP_CODES = {op: i for i, op in enumerate(OpClass)}
OP_BY_CODE = tuple(OpClass)

#: Stable integer codes for :class:`BypassClass`.
BYPASS_CODES = {bc: i for i, bc in enumerate(BypassClass)}
BYPASS_BY_CODE = tuple(BypassClass)

#: Bounded identity-keyed memo: list of (trace, columns) pairs, newest last.
#: Safe across pool workers: a columnisation is a pure function of the
#: trace it is keyed on, so per-worker copies can only agree.
_MEMO_CAPACITY = 4
# repro-lint: allow(conc-mutable-global) -- identity-keyed memo of pure columnisations
_MEMO: List[Tuple[Sequence[MicroOp], "TraceColumns"]] = []


class TraceColumns:
    """Numpy columns for one trace, plus cached plain-list views.

    The numpy arrays serve vectorised work (event-index extraction,
    measured-count reductions); the ``.lists()`` views serve the
    per-uop timing loop, where native ``int`` elements avoid the cost of
    materialising ``np.int64`` scalars on every read.
    """

    __slots__ = (
        "n", "op", "pc", "address", "size", "taken", "target",
        "addr_src", "dep_store_seq", "store_distance", "bypass",
        "src_count", "srcs", "_lists",
    )

    def __init__(self, trace: Sequence[MicroOp]) -> None:
        n = len(trace)
        self.n = n
        op = np.empty(n, dtype=np.int8)
        pc = np.empty(n, dtype=np.int64)
        address = np.empty(n, dtype=np.int64)
        size = np.empty(n, dtype=np.int32)
        taken = np.empty(n, dtype=np.bool_)
        target = np.empty(n, dtype=np.int64)
        addr_src = np.empty(n, dtype=np.int64)
        dep_store_seq = np.empty(n, dtype=np.int64)
        store_distance = np.empty(n, dtype=np.int32)
        bypass = np.empty(n, dtype=np.int8)
        src_count = np.empty(n, dtype=np.int16)
        srcs: List[Tuple[int, ...]] = [()] * n

        op_codes = OP_CODES
        bypass_codes = BYPASS_CODES
        for i, uop in enumerate(trace):
            op[i] = op_codes[uop.op]
            pc[i] = uop.pc
            address[i] = uop.address
            size[i] = uop.size
            taken[i] = uop.taken
            target[i] = uop.target
            addr_src[i] = -1 if uop.addr_src is None else uop.addr_src
            dep_store_seq[i] = (-1 if uop.dep_store_seq is None
                                else uop.dep_store_seq)
            store_distance[i] = uop.store_distance
            bypass[i] = bypass_codes[uop.bypass]
            src_count[i] = len(uop.srcs)
            srcs[i] = uop.srcs

        self.op = op
        self.pc = pc
        self.address = address
        self.size = size
        self.taken = taken
        self.target = target
        self.addr_src = addr_src
        self.dep_store_seq = dep_store_seq
        self.store_distance = store_distance
        self.bypass = bypass
        self.src_count = src_count
        self.srcs = srcs
        self._lists = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_trace(cls, trace: Sequence[MicroOp]) -> "TraceColumns":
        """Build columns without touching the memo."""
        return cls(trace)

    @classmethod
    def ensure(cls, trace: Sequence[MicroOp]) -> "TraceColumns":
        """Return (building if necessary) the memoised columns for ``trace``.

        The memo is identity-keyed and holds at most ``_MEMO_CAPACITY``
        traces; the eldest entry is dropped on overflow.
        """
        for i, (cached_trace, cols) in enumerate(_MEMO):
            if cached_trace is trace:
                if i != len(_MEMO) - 1:  # keep MRU at the tail
                    _MEMO.append(_MEMO.pop(i))
                return cols
        cols = cls(trace)
        _MEMO.append((trace, cols))
        if len(_MEMO) > _MEMO_CAPACITY:
            _MEMO.pop(0)
        return cols

    @classmethod
    def clear_memo(cls) -> None:
        _MEMO.clear()

    # -- views -----------------------------------------------------------------

    def lists(self):
        """Plain-list views of the scalar columns (cached).

        Returns a dict of column name -> list of native python ints/bools.
        The timing loop indexes these instead of the numpy arrays: list
        indexing yields interned small ints rather than ``np.int64``
        scalars, which would otherwise contaminate downstream arithmetic
        and slow every operation on the hot path.
        """
        if self._lists is None:
            self._lists = {
                "op": self.op.tolist(),
                "pc": self.pc.tolist(),
                "address": self.address.tolist(),
                "size": self.size.tolist(),
                "taken": self.taken.tolist(),
                "target": self.target.tolist(),
                "addr_src": self.addr_src.tolist(),
                "dep_store_seq": self.dep_store_seq.tolist(),
                "store_distance": self.store_distance.tolist(),
                "bypass": self.bypass.tolist(),
                "src_count": self.src_count.tolist(),
            }
        return self._lists

    def indices_of(self, *ops: OpClass) -> np.ndarray:
        """Sorted sequence numbers of all uops with one of the given classes."""
        codes = [OP_CODES[o] for o in ops]
        mask = np.isin(self.op, codes) if len(codes) > 1 else (
            self.op == codes[0])
        return np.flatnonzero(mask)

    # -- reconstruction (testing aid) ------------------------------------------

    def uop_fields(self, seq: int) -> dict:
        """Scalar fields of uop ``seq`` decoded back to python values."""
        addr_src = int(self.addr_src[seq])
        dep = int(self.dep_store_seq[seq])
        return {
            "seq": seq,
            "pc": int(self.pc[seq]),
            "op": OP_BY_CODE[int(self.op[seq])],
            "srcs": self.srcs[seq],
            "taken": bool(self.taken[seq]),
            "target": int(self.target[seq]),
            "address": int(self.address[seq]),
            "size": int(self.size[seq]),
            "addr_src": None if addr_src < 0 else addr_src,
            "store_distance": int(self.store_distance[seq]),
            "dep_store_seq": None if dep < 0 else dep,
            "bypass": BYPASS_BY_CODE[int(self.bypass[seq])],
        }
