"""Ground-truth memory-dependence tracking.

The generator runs every dynamic store through a :class:`DependenceTracker`;
each dynamic load then queries the tracker for the youngest older store whose
bytes overlap the load's.  The tracker returns the paper's two key
annotations:

* the **store distance** — how many dynamic stores back the conflicting
  store sits (1 = the immediately preceding store), the quantity MASCOT's
  7-bit distance field predicts; and
* the **bypass class** — Fig. 1's classification of whether the store can
  fully feed the load (SMB opportunity) or only partially (MDP-only).

A dependence only "counts" if the store can still be in flight when the load
executes.  Hardware bounds this by the store-buffer capacity; we use the same
bound (``window`` = SB entries) so that prediction-only experiments agree
with the timing model about which loads are dependent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .uop import BypassClass, MicroOp

__all__ = ["classify_overlap", "DependenceTracker", "StoreRecord"]


def classify_overlap(
    store_addr: int, store_size: int, load_addr: int, load_size: int
) -> BypassClass:
    """Classify the byte overlap of a store and a younger load (Fig. 1).

    Returns :data:`BypassClass.NONE` when the accesses do not overlap at all.
    """
    if store_size <= 0 or load_size <= 0:
        raise ValueError("access sizes must be positive")
    store_end = store_addr + store_size
    load_end = load_addr + load_size
    if load_end <= store_addr or store_end <= load_addr:
        return BypassClass.NONE
    contained = store_addr <= load_addr and load_end <= store_end
    if not contained:
        return BypassClass.MDP_ONLY
    if load_addr == store_addr:
        if load_size == store_size:
            return BypassClass.DIRECT
        return BypassClass.NO_OFFSET
    return BypassClass.OFFSET


class StoreRecord:
    """A dynamic store as seen by the dependence tracker."""

    __slots__ = ("seq", "store_number", "address", "size")

    def __init__(self, seq: int, store_number: int, address: int, size: int):
        self.seq = seq                  # dynamic micro-op sequence number
        self.store_number = store_number  # 0-based count of dynamic stores
        self.address = address
        self.size = size

    def __repr__(self) -> str:
        return (
            f"StoreRecord(seq={self.seq}, n={self.store_number}, "
            f"addr={self.address:#x}, size={self.size})"
        )


class DependenceTracker:
    """Sliding window of recent dynamic stores with byte-granular lookup.

    ``window`` bounds how many older stores can be "in flight" relative to a
    load; the Golden Cove configuration uses its 114-entry store buffer.
    Lookup walks the window youngest-first and returns the first (youngest)
    overlapping store, matching store-queue forwarding semantics.
    """

    def __init__(self, window: int = 114, instr_window: int = 512):
        if window <= 0:
            raise ValueError("store window must be positive")
        if instr_window <= 0:
            raise ValueError("instruction window must be positive")
        self.window = window
        self.instr_window = instr_window
        self._stores: List[StoreRecord] = []
        self._store_count = 0
        # Byte -> index into a recency list would be over-engineering for the
        # window sizes involved (~100); a reverse linear scan of the window is
        # simple and fast enough, and trivially correct.

    @property
    def store_count(self) -> int:
        """Total number of dynamic stores observed."""
        return self._store_count

    def record_store(self, uop: MicroOp) -> StoreRecord:
        """Register a dynamic store micro-op."""
        if not uop.is_store:
            raise ValueError(f"uop {uop.seq} is not a store")
        record = StoreRecord(uop.seq, self._store_count, uop.address, uop.size)
        self._store_count += 1
        self._stores.append(record)
        if len(self._stores) > self.window:
            del self._stores[0 : len(self._stores) - self.window]
        return record

    def record_raw_store(self, seq: int, address: int, size: int) -> StoreRecord:
        """Register a store without constructing a MicroOp (generator fast path)."""
        record = StoreRecord(seq, self._store_count, address, size)
        self._store_count += 1
        self._stores.append(record)
        if len(self._stores) > self.window:
            del self._stores[0 : len(self._stores) - self.window]
        return record

    def find_dependence(
        self, load_addr: int, load_size: int, load_seq: int
    ) -> Tuple[int, Optional[StoreRecord], BypassClass]:
        """Locate the youngest older overlapping in-flight store for a load.

        Returns ``(store_distance, store_record, bypass_class)``;
        ``(0, None, BypassClass.NONE)`` when no in-flight store overlaps.

        A store counts as in flight only if it is within both the
        store-buffer window (``window`` dynamic stores) and the reorder
        window (``instr_window`` dynamic micro-ops): a store further back has
        committed and drained before the load could dispatch, so its value is
        obtained from the cache, not by forwarding.

        The store distance counts dynamic stores between the load and the
        conflicting store *inclusive of the conflicting store*: distance 1
        means the immediately preceding store, exactly the store-queue
        offset encoding of Sec. IV-B.
        """
        for idx in range(len(self._stores) - 1, -1, -1):
            store = self._stores[idx]
            if load_seq - store.seq > self.instr_window:
                break  # older entries are even further away
            cls = classify_overlap(store.address, store.size, load_addr, load_size)
            if cls is not BypassClass.NONE:
                distance = self._store_count - store.store_number
                return distance, store, cls
        return 0, None, BypassClass.NONE

    def reset(self) -> None:
        self._stores.clear()
        self._store_count = 0
