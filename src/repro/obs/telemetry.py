"""Concrete predictor telemetry: per-table counters behind TelemetrySink.

:class:`TableTelemetry` records the per-table activity the Fig. 13
analysis needs — which history length served each prediction, where
entries were allocated (and how many encode MASCOT's distance=0
non-dependencies), what was evicted, and how confidence counters moved.
Predictor code never imports this module: it talks to the abstract
:class:`~repro.predictors.base.TelemetrySink` protocol, and every hook
site is guarded by ``if sink is not None`` so an unattached predictor
pays one attribute read per event at most.

Table slots are allocated lazily as events name them, so the same sink
class serves MASCOT/PHAST (N history tables + base), NoSQ (path-dependent
/ path-independent / miss) and Store Sets (hit / miss) without
per-predictor subclasses.  By convention slot ``len(tables)`` is the
base/miss slot for TAGE-likes, mirroring ``predictions_per_table``.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..predictors.base import TelemetrySink

__all__ = ["TableTelemetry"]


class TableTelemetry(TelemetrySink):
    """Counting sink for per-table predictor events.

    ``provider_hits[t]`` mirrors the ad-hoc ``predictions_per_table``
    counters of the TAGE-like predictors exactly (a consistency test
    enforces this), so Fig. 13 can read either; telemetry additionally
    splits allocations into dependence vs non-dependence per table and
    counts evictions and confidence transitions, which the ad-hoc
    counters never captured.
    """

    def __init__(self, num_tables: Optional[int] = None) -> None:
        slots = (num_tables + 1) if num_tables is not None else 0
        self.lookups = 0
        self.provider_hits: List[int] = [0] * slots
        self.allocations: List[int] = [0] * slots
        self.nondep_allocations: List[int] = [0] * slots
        self.evictions: List[int] = [0] * slots
        self.confidence_events: Dict[str, int] = {}
        self.events: Dict[str, int] = {}

    # -- sink protocol ---------------------------------------------------------

    def lookup(self, table: int) -> None:
        self.lookups += 1
        self._ensure(table)
        self.provider_hits[table] += 1

    def allocation(self, table: int, distance: int) -> None:
        self._ensure(table)
        self.allocations[table] += 1
        if distance == 0:
            self.nondep_allocations[table] += 1

    def eviction(self, table: int) -> None:
        self._ensure(table)
        self.evictions[table] += 1

    def confidence(self, table: int, event: str) -> None:
        counts = self.confidence_events
        counts[event] = counts.get(event, 0) + 1

    def event(self, name: str) -> None:
        self.events[name] = self.events.get(name, 0) + 1

    # -- helpers ---------------------------------------------------------------

    def _ensure(self, table: int) -> None:
        """Grow every per-table list to cover slot ``table``."""
        needed = table + 1 - len(self.provider_hits)
        if needed > 0:
            for counters in (self.provider_hits, self.allocations,
                             self.nondep_allocations, self.evictions):
                counters.extend([0] * needed)

    @property
    def num_slots(self) -> int:
        return len(self.provider_hits)

    def provider_hits_by_history(
        self, history_lengths: Sequence[int]
    ) -> List[tuple]:
        """(label, hits) rows pairing tables with their history lengths.

        Slots beyond the named tables (the base predictor for TAGE-likes)
        are labelled ``base``.
        """
        rows = []
        for slot in range(self.num_slots):
            if slot < len(history_lengths):
                label = f"h={history_lengths[slot]}"
            else:
                label = "base"
            rows.append((label, self.provider_hits[slot]))
        return rows

    def merge(self, other: "TableTelemetry") -> None:
        """Accumulate another sink's counts into this one (suite totals)."""
        self.lookups += other.lookups
        self._ensure(max(other.num_slots - 1, -1))
        for mine, theirs in (
            (self.provider_hits, other.provider_hits),
            (self.allocations, other.allocations),
            (self.nondep_allocations, other.nondep_allocations),
            (self.evictions, other.evictions),
        ):
            for slot, count in enumerate(theirs):
                mine[slot] += count
        for event, count in other.confidence_events.items():
            self.confidence_events[event] = (
                self.confidence_events.get(event, 0) + count
            )
        for event, count in other.events.items():
            self.events[event] = self.events.get(event, 0) + count

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "lookups": self.lookups,
            "provider_hits": list(self.provider_hits),
            "allocations": list(self.allocations),
            "nondep_allocations": list(self.nondep_allocations),
            "evictions": list(self.evictions),
            "confidence_events": dict(self.confidence_events),
            "events": dict(self.events),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TableTelemetry":
        sink = cls()
        sink.lookups = int(data["lookups"])
        sink.provider_hits = [int(n) for n in data["provider_hits"]]
        sink.allocations = [int(n) for n in data["allocations"]]
        sink.nondep_allocations = [int(n)
                                   for n in data["nondep_allocations"]]
        sink.evictions = [int(n) for n in data["evictions"]]
        sink.confidence_events = {
            str(k): int(v) for k, v in dict(data["confidence_events"]).items()
        }
        sink.events = {
            str(k): int(v) for k, v in dict(data["events"]).items()
        }
        return sink

    def __repr__(self) -> str:
        return (f"TableTelemetry(lookups={self.lookups}, "
                f"provider_hits={self.provider_hits})")
