"""``repro profile``: cycle-stack + table-usage report for one cell.

Runs one (benchmark, predictor) cell through the full timing pipeline
with cycle accounting enabled and a telemetry sink attached, validates
the accounting invariant (per-category cycles sum exactly to the
measured cycle count), and renders both breakdowns.  This is the
human-facing entry point of :mod:`repro.obs`; the CI profile step calls
it on a small trace so any drift between the pipeline's stall
attribution and its cycle counter fails the build.

This module is imported lazily by the CLI so ``import repro.obs`` stays
free of experiment-layer dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.config import GOLDEN_COVE, CoreConfig
from ..core.pipeline import Pipeline
from ..core.stats import PipelineStats
from .cycles import CYCLE_CATEGORIES, CycleStack
from .telemetry import TableTelemetry

__all__ = ["ProfileReport", "profile_cell"]


@dataclass
class ProfileReport:
    """Everything one profiled cell produced."""

    benchmark: str
    predictor: str
    num_uops: int
    measure_from: int
    stats: PipelineStats
    stack: CycleStack
    telemetry: TableTelemetry
    #: History lengths of the predictor's tables (empty when the
    #: predictor has no TAGE-like table geometry to label).
    history_lengths: Tuple[int, ...] = ()

    def validate(self) -> None:
        """Raise CycleAccountingError unless the stack sums to cycles."""
        self.stack.validate(self.stats.cycles)

    def render(self) -> str:
        from ..experiments.reporting import render_table

        shares = self.stack.shares()
        cycle_rows = [
            [category, self.stack.cycles[category], f"{shares[category]:.2f}"]
            for category in CYCLE_CATEGORIES
            if self.stack.cycles[category]
        ]
        cycle_rows.append(["total", self.stack.total, "100.00"])
        out = [
            f"profile: {self.benchmark} / {self.predictor} "
            f"({self.num_uops} uops, measure_from={self.measure_from})",
            f"IPC {self.stats.ipc:.3f}  cycles {self.stats.cycles}  "
            f"instructions {self.stats.instructions}",
            "",
            render_table(["category", "cycles", "% of cycles"], cycle_rows,
                         title="cycle stack"),
        ]
        if self.telemetry.num_slots:
            hits = self.telemetry.provider_hits_by_history(
                self.history_lengths)
            table_rows = [
                [label, self.telemetry.provider_hits[slot],
                 self.telemetry.allocations[slot],
                 self.telemetry.nondep_allocations[slot],
                 self.telemetry.evictions[slot]]
                for slot, (label, _) in enumerate(hits)
            ]
            out.append(render_table(
                ["table", "provider hits", "allocs", "non-dep", "evictions"],
                table_rows, title="table usage"))
        transitions = dict(self.telemetry.confidence_events)
        transitions.update(self.telemetry.events)
        if transitions:
            out.append(render_table(
                ["event", "count"],
                sorted(transitions.items()),
                title="predictor events"))
        return "\n".join(out)

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "predictor": self.predictor,
            "num_uops": self.num_uops,
            "measure_from": self.measure_from,
            "ipc": self.stats.ipc,
            "cycles": self.stats.cycles,
            "instructions": self.stats.instructions,
            "cycle_stack": self.stack.to_dict(),
            "telemetry": self.telemetry.to_dict(),
            "history_lengths": list(self.history_lengths),
        }


def _history_lengths(predictor) -> Tuple[int, ...]:
    lengths = getattr(predictor, "history_lengths", None)
    if lengths is None:
        lengths = getattr(getattr(predictor, "config", None),
                          "history_lengths", None)
    return tuple(lengths) if lengths is not None else ()


def profile_cell(
    benchmark: str,
    predictor_name: str,
    num_uops: int = 40_000,
    config: CoreConfig = GOLDEN_COVE,
    measure_from: Optional[int] = None,
) -> ProfileReport:
    """Profile one (benchmark, predictor) timing cell.

    ``measure_from`` defaults to a quarter of the trace (the suite's
    warmed-measurement discipline).  The returned report has *not* been
    validated — callers decide whether an invariant violation is fatal
    (the CLI exits non-zero; tests assert).
    """
    from ..experiments.runner import default_cache
    from ..experiments.suite import make_predictor

    if measure_from is None:
        measure_from = num_uops // 4
    trace = default_cache().get(
        benchmark, num_uops,
        store_window=config.sb_size, instr_window=config.rob_size,
    )
    predictor = make_predictor(predictor_name)
    sink = predictor.attach_telemetry(TableTelemetry())
    pipeline = Pipeline(predictor, config=config, accounting=True)
    stats = pipeline.run(trace, measure_from=measure_from)
    return ProfileReport(
        benchmark=benchmark,
        predictor=predictor_name,
        num_uops=num_uops,
        measure_from=measure_from,
        stats=stats,
        stack=pipeline.cycle_stack,
        telemetry=sink,
        history_lengths=_history_lengths(predictor),
    )
