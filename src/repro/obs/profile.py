"""``repro profile``: cycle-stack + table-usage report for one cell.

Runs one (benchmark, predictor) cell through the full timing pipeline
with cycle accounting enabled and a telemetry sink attached, validates
the accounting invariant (per-category cycles sum exactly to the
measured cycle count), and renders both breakdowns.  This is the
human-facing entry point of :mod:`repro.obs`; the CI profile step calls
it on a small trace so any drift between the pipeline's stall
attribution and its cycle counter fails the build.

This module is imported lazily by the CLI so ``import repro.obs`` stays
free of experiment-layer dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.config import GOLDEN_COVE, CoreConfig
from ..core.pipeline import Pipeline
from ..core.stats import PipelineStats
from .cycles import CYCLE_CATEGORIES, CycleStack
from .telemetry import TableTelemetry

__all__ = ["ProfileReport", "profile_cell"]


@dataclass
class ProfileReport:
    """Everything one profiled cell produced."""

    benchmark: str
    predictor: str
    num_uops: int
    measure_from: int
    stats: PipelineStats
    stack: CycleStack
    telemetry: TableTelemetry
    #: History lengths of the predictor's tables (empty when the
    #: predictor has no TAGE-like table geometry to label).
    history_lengths: Tuple[int, ...] = ()
    #: Sampled-reconstruction metadata (``stats.sampling``) when the
    #: cell was profiled under a sampling policy; None on full runs.
    sampling: Optional[dict] = None
    #: Per-region measured stats/stacks behind a sampled profile.
    region_stats: List[PipelineStats] = field(default_factory=list)
    region_stacks: List[CycleStack] = field(default_factory=list)

    def validate(self) -> None:
        """Raise CycleAccountingError unless the stack sums to cycles.

        A sampled profile additionally validates every *measured*
        region stack against that region's cycle count — the
        reconstructed full-run stack is only as sound as its parts.
        """
        self.stack.validate(self.stats.cycles)
        for stack, stats in zip(self.region_stacks, self.region_stats):
            stack.validate(stats.cycles)

    def render(self) -> str:
        from ..experiments.reporting import render_table

        shares = self.stack.shares()
        cycle_rows = [
            [category, self.stack.cycles[category], f"{shares[category]:.2f}"]
            for category in CYCLE_CATEGORIES
            if self.stack.cycles[category]
        ]
        cycle_rows.append(["total", self.stack.total, "100.00"])
        out = [
            f"profile: {self.benchmark} / {self.predictor} "
            f"({self.num_uops} uops, measure_from={self.measure_from})",
            f"IPC {self.stats.ipc:.3f}  cycles {self.stats.cycles}  "
            f"instructions {self.stats.instructions}",
            "",
            render_table(["category", "cycles", "% of cycles"], cycle_rows,
                         title="cycle stack"),
        ]
        if self.sampling is not None:
            meta = self.sampling
            lo, hi = meta["ci"]
            out.append("")
            out.append(
                f"sampled reconstruction: {meta['metric']} "
                f"{meta['estimate']:.4f} in [{lo:.4f}, {hi:.4f}] "
                f"({meta['confidence']:.0%} CI)")
            out.append(
                f"  k={meta['k']} of {meta['n_intervals']} intervals, "
                f"coverage {meta['coverage']:.1%}, simulated "
                f"{meta['simulated_uops']} of {self.num_uops} uops")
            region_rows = [
                [meta["regions"][j]["index"],
                 f"{meta['regions'][j]['weight']:.3f}",
                 stats.instructions, stats.cycles, f"{stats.ipc:.3f}"]
                for j, stats in enumerate(self.region_stats)
            ]
            out.append(render_table(
                ["region", "weight", "instructions", "cycles", "ipc"],
                region_rows, title="measured regions"))
        if self.telemetry.num_slots:
            hits = self.telemetry.provider_hits_by_history(
                self.history_lengths)
            table_rows = [
                [label, self.telemetry.provider_hits[slot],
                 self.telemetry.allocations[slot],
                 self.telemetry.nondep_allocations[slot],
                 self.telemetry.evictions[slot]]
                for slot, (label, _) in enumerate(hits)
            ]
            out.append(render_table(
                ["table", "provider hits", "allocs", "non-dep", "evictions"],
                table_rows, title="table usage"))
        transitions = dict(self.telemetry.confidence_events)
        transitions.update(self.telemetry.events)
        if transitions:
            out.append(render_table(
                ["event", "count"],
                sorted(transitions.items()),
                title="predictor events"))
        return "\n".join(out)

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "predictor": self.predictor,
            "num_uops": self.num_uops,
            "measure_from": self.measure_from,
            "ipc": self.stats.ipc,
            "cycles": self.stats.cycles,
            "instructions": self.stats.instructions,
            "cycle_stack": self.stack.to_dict(),
            "telemetry": self.telemetry.to_dict(),
            "history_lengths": list(self.history_lengths),
            "sampling": self.sampling,
        }


def _history_lengths(predictor) -> Tuple[int, ...]:
    lengths = getattr(predictor, "history_lengths", None)
    if lengths is None:
        lengths = getattr(getattr(predictor, "config", None),
                          "history_lengths", None)
    return tuple(lengths) if lengths is not None else ()


def profile_cell(
    benchmark: str,
    predictor_name: str,
    num_uops: int = 40_000,
    config: CoreConfig = GOLDEN_COVE,
    measure_from: Optional[int] = None,
    sampling=None,
) -> ProfileReport:
    """Profile one (benchmark, predictor) timing cell.

    ``measure_from`` defaults to a quarter of the trace (the suite's
    warmed-measurement discipline).  With a
    :class:`~repro.sampling.SamplingPolicy` only the selected regions
    are simulated (accounting on), the full-run stack is reconstructed,
    and ``measure_from`` is ignored — each region carries its own warmup
    prefix.  The shared telemetry sink then accumulates over every
    region *including* warmup replay, so table-usage counts are
    slice-level observations, not full-run estimates.  The returned
    report has *not* been validated — callers decide whether an
    invariant violation is fatal (the CLI exits non-zero; tests assert).
    """
    from ..experiments.runner import default_cache
    from ..experiments.suite import make_predictor

    trace = default_cache().get(
        benchmark, num_uops,
        store_window=config.sb_size, instr_window=config.rob_size,
    )
    if sampling is not None:
        from ..sampling.reconstruct import run_sampled_timing

        sink = TableTelemetry()
        predictors = []

        def factory():
            predictor = make_predictor(predictor_name)
            predictor.attach_telemetry(sink)
            predictors.append(predictor)
            return predictor

        sampled = run_sampled_timing(trace, factory, sampling,
                                     config=config, accounting=True)
        return ProfileReport(
            benchmark=benchmark,
            predictor=predictor_name,
            num_uops=num_uops,
            measure_from=0,
            stats=sampled.stats,
            stack=sampled.stack,
            telemetry=sink,
            history_lengths=(
                _history_lengths(predictors[0]) if predictors else ()),
            sampling=sampled.stats.sampling,
            region_stats=sampled.region_stats,
            region_stacks=sampled.region_stacks,
        )
    if measure_from is None:
        measure_from = num_uops // 4
    predictor = make_predictor(predictor_name)
    sink = predictor.attach_telemetry(TableTelemetry())
    pipeline = Pipeline(predictor, config=config, accounting=True)
    stats = pipeline.run(trace, measure_from=measure_from)
    return ProfileReport(
        benchmark=benchmark,
        predictor=predictor_name,
        num_uops=num_uops,
        measure_from=measure_from,
        stats=stats,
        stack=pipeline.cycle_stack,
        telemetry=sink,
        history_lengths=_history_lengths(predictor),
    )
