"""Observability: cycle accounting, predictor telemetry, suite metrics.

The simulator's whole value is *relative* metrics between predictor
schemes, and relative metrics are exactly where silent accounting bugs
hide — a warmup-contaminated numerator or a mislabeled counter skews every
figure without failing a single test.  This package makes the two streams
the aggregates are computed from attributable:

* :mod:`repro.obs.cycles` — a stall taxonomy (:data:`CYCLE_CATEGORIES`)
  and the :class:`CycleStack` the pipeline fills when constructed with
  ``accounting=True``.  The invariant that the per-category cycles sum
  exactly to ``stats.cycles`` is machine-checked (``repro profile``, CI,
  and a property test), so an attribution or measurement-window bug
  becomes a test failure instead of quiet skew.
* :mod:`repro.obs.telemetry` — :class:`TableTelemetry`, a concrete
  :class:`~repro.predictors.base.TelemetrySink` recording per-table
  predictor activity (lookups, provider hits, allocations, non-dependence
  entries, evictions, confidence transitions).  Off by default;
  attaching it is the only cost.
* :mod:`repro.obs.metrics` — :class:`MetricsWriter`, the append-only JSONL
  sink the parallel suite engine emits per-cell execution metrics to
  (wall time, cache hit/miss, attempts).
* :mod:`repro.obs.profile` — ``repro profile``'s driver: one (benchmark,
  predictor) cell rendered as a cycle-stack breakdown plus a table-usage
  report.  Imported lazily by the CLI (it pulls in the experiments
  layer).
"""

from .cycles import CYCLE_CATEGORIES, CycleAccountingError, CycleStack
from .metrics import MetricsWriter, render_metrics_summary, summarize_metrics
from .telemetry import TableTelemetry

__all__ = [
    "CYCLE_CATEGORIES",
    "CycleAccountingError",
    "CycleStack",
    "MetricsWriter",
    "render_metrics_summary",
    "summarize_metrics",
    "TableTelemetry",
]
