"""Append-only JSONL sink for suite execution metrics.

The parallel supervisor already computes per-cell wall time, attempts and
cache provenance for its journal — this writer gives those numbers a
machine-readable home.  One JSON object per line, keys sorted, written
with line-granularity appends so a crashed sweep leaves a readable
prefix.

This module performs no clock or environment reads: durations are
computed by :mod:`repro.experiments.parallel` (the one module sanctioned
to read monotonic clocks) and passed in.  File writes live here and in
the other modules named by ``repro.lint``'s ``det-write`` sanction list —
the lint rule keeps new write sites from appearing elsewhere.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = ["MetricsWriter"]


class MetricsWriter:
    """Write metric records as JSON Lines to ``path``.

    The file is opened lazily on the first :meth:`emit` (a sweep that is
    fully cache-resolved before any metric fires still creates it — every
    resolution emits a record) and appended to, so several sweeps can
    share one metrics file.  ``records`` counts emissions for tests and
    the end-of-run summary.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.records = 0
        self._file = None

    def emit(self, record: Dict[str, object]) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()
        self.records += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "MetricsWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"MetricsWriter({str(self.path)!r}, records={self.records})"
