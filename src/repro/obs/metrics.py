"""Append-only JSONL sink for suite execution metrics.

The parallel supervisor already computes per-cell wall time, attempts and
cache provenance for its journal — this writer gives those numbers a
machine-readable home.  One JSON object per line, keys sorted, written
with line-granularity appends so a crashed sweep leaves a readable
prefix.

This module performs no clock or environment reads: durations are
computed by :mod:`repro.experiments.parallel` (the one module sanctioned
to read monotonic clocks) and passed in.  File writes live here and in
the other modules named by ``repro.lint``'s ``det-write`` sanction list —
the lint rule keeps new write sites from appearing elsewhere.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

__all__ = ["MetricsWriter", "render_metrics_summary", "summarize_metrics"]


class MetricsWriter:
    """Write metric records as JSON Lines to ``path``.

    The file is opened lazily on the first :meth:`emit` (a sweep that is
    fully cache-resolved before any metric fires still creates it — every
    resolution emits a record) and appended to, so several sweeps can
    share one metrics file.  ``records`` counts emissions for tests and
    the end-of-run summary.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.records = 0
        self._file = None

    def emit(self, record: Dict[str, object]) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()
        self.records += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "MetricsWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"MetricsWriter({str(self.path)!r}, records={self.records})"


#: WorkerBackend counter names folded into the summary from ``sweep``
#: records (see ``repro.experiments.backends``).
_BACKEND_COUNTERS = (
    "leases_granted", "leases_expired", "heartbeats", "reconnects",
    "worker_losses", "corrupt_results",
)

#: Result-cache counter names folded into the nested ``cache`` summary
#: from ``sweep`` records.  Local :class:`ResultCache` stores report the
#: first five; a :class:`NetworkCacheClient` adds the transport counters
#: (kept nested because ``reconnects`` would collide with the backend
#: counter of the same name).
_CACHE_COUNTERS = (
    "hits", "misses", "stores", "quarantined", "lock_timeouts",
    "rpc_errors", "reconnects", "corrupt_replies", "rejected_stores",
    "fallback_hits",
)


def summarize_metrics(path: Union[str, Path]) -> Dict[str, object]:
    """Aggregate a metrics JSONL file into one dict of counts.

    Tolerates a torn final line (a sweep killed mid-append) and unknown
    events, mirroring the journal loader's discipline.  Sums per-cell
    records (by source and status), ``requeue`` events by failure kind,
    and the distributed-backend and result-cache counters carried by
    ``sweep`` records.
    """
    summary: Dict[str, object] = {
        "cells": 0, "computed": 0, "cache_hits": 0, "from_journal": 0,
        "failed": 0, "sweeps": 0,
        "requeues": {},
        **{name: 0 for name in _BACKEND_COUNTERS},
        "cache": {name: 0 for name in _CACHE_COUNTERS},
    }
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return summary
    requeues: Dict[str, int] = summary["requeues"]
    for line in text.splitlines():
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail of a killed sweep
        if not isinstance(record, dict):
            continue
        event = record.get("event")
        if event == "cell":
            summary["cells"] += 1
            source = record.get("source")
            if source == "cache":
                summary["cache_hits"] += 1
            elif source == "journal":
                summary["from_journal"] += 1
            else:
                summary["computed"] += 1
            if record.get("status") == "failed":
                summary["failed"] += 1
        elif event == "requeue":
            kind = str(record.get("kind"))
            requeues[kind] = requeues.get(kind, 0) + 1
        elif event == "sweep":
            summary["sweeps"] += 1
            backend = record.get("backend")
            if isinstance(backend, dict):
                for name in _BACKEND_COUNTERS:
                    value = backend.get(name)
                    if isinstance(value, int):
                        summary[name] += value
            cache = record.get("cache")
            if isinstance(cache, dict):
                folded: Dict[str, int] = summary["cache"]
                for name in _CACHE_COUNTERS:
                    value = cache.get(name)
                    if isinstance(value, int):
                        folded[name] += value
    return summary


def render_metrics_summary(summary: Dict[str, object]) -> str:
    """One human-readable line over a :func:`summarize_metrics` dict."""
    parts = [
        f"{summary['cells']} cells"
        f" ({summary['computed']} computed, {summary['cache_hits']} cached,"
        f" {summary['from_journal']} resumed, {summary['failed']} failed)",
        f"leases {summary['leases_granted']} granted"
        f"/{summary['leases_expired']} expired",
        f"{summary['heartbeats']} heartbeats",
        f"{summary['reconnects']} reconnects",
    ]
    requeues = summary.get("requeues") or {}
    if requeues:
        detail = ", ".join(f"{kind}: {count}"
                           for kind, count in sorted(requeues.items()))
        parts.append(f"requeued {sum(requeues.values())} ({detail})")
    else:
        parts.append("requeued 0")
    cache = summary.get("cache") or {}
    if any(cache.values()):
        store = (f"cache {cache.get('hits', 0)} hits"
                 f"/{cache.get('misses', 0)} misses"
                 f"/{cache.get('stores', 0)} stores")
        trouble = {name: count for name, count in sorted(cache.items())
                   if count and name not in ("hits", "misses", "stores")}
        if trouble:
            store += " (" + ", ".join(f"{name}: {count}"
                                      for name, count in trouble.items()
                                      ) + ")"
        parts.append(store)
    return "; ".join(parts)
