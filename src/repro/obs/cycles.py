"""Cycle accounting: a CPI-stack over the pipeline's stall taxonomy.

The pipeline is a constraint-based scoreboard: every micro-op's commit
cycle is the maximum of a handful of explicit constraints (front-end
bandwidth, redirect barriers, window occupancy, source readiness,
dependence holds, port contention, execution/memory latency, commit
width).  Cycle accounting attributes each *measured* micro-op's
commit-to-commit gap to the constraint that bound it, walking the
constraint chain top-down with clamping so no cycle is counted twice and
none is dropped.

The defining invariant — checked by :meth:`CycleStack.validate`, the
``repro profile`` CLI, CI and a property test — is

    sum(stack.cycles.values()) == stats.cycles

exactly, for every trace, predictor, core and warmup boundary.  Because
the attribution consumes precisely the measured commit-to-commit gaps,
any measurement-window bug (a warmup-contaminated counter, a gap
accounted twice, a cycle outside the measured region leaking in) breaks
the invariant rather than silently skewing figures.

Categories
----------
``frontend``      fetch/decode bandwidth and pipeline depth
``redirect``      front-end refill after a redirect barrier (branch
                  mispredictions and memory-order/bypass squash refill)
``window_rob``    dispatch held for a ROB entry
``window_iq``     dispatch held for an IQ entry
``window_lq``     dispatch held for an LQ entry
``window_sb``     dispatch held for an SB entry
``src_wait``      issue held for source operands (dataflow)
``dependence``    issue held by a predicted memory dependence (MDP hold)
                  or a store serialised behind its store set
``ports``         issue held by execution-port contention
``execute``       non-memory execution latency (incl. store completion)
``memory``        load execution: cache hierarchy or SB forwarding
``squash``        memory-order violation / bypass-verification recovery
                  on the squashed load itself (the refill cost younger
                  ops pay lands in ``redirect``)
``commit``        in-order commit width/latency, plus the run tail after
                  the last measured commit
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

__all__ = ["CYCLE_CATEGORIES", "CycleAccountingError", "CycleStack"]

#: Attribution categories, in pipeline order (front end → commit).
CYCLE_CATEGORIES: Tuple[str, ...] = (
    "frontend",
    "redirect",
    "window_rob",
    "window_iq",
    "window_lq",
    "window_sb",
    "src_wait",
    "dependence",
    "ports",
    "execute",
    "memory",
    "squash",
    "commit",
)


class CycleAccountingError(AssertionError):
    """The per-category cycles do not sum to the run's measured cycles."""


class CycleStack:
    """Per-category cycle counts for one measured pipeline run."""

    __slots__ = ("cycles",)

    def __init__(self) -> None:
        self.cycles: Dict[str, int] = dict.fromkeys(CYCLE_CATEGORIES, 0)

    def add(self, category: str, cycles: int) -> None:
        self.cycles[category] += cycles

    @property
    def total(self) -> int:
        return sum(self.cycles.values())

    def shares(self) -> Dict[str, float]:
        """Per-category percentage of the accounted total."""
        total = max(self.total, 1)
        return {cat: 100.0 * n / total for cat, n in self.cycles.items()}

    def validate(self, expected_cycles: int) -> None:
        """Raise :class:`CycleAccountingError` unless the sum is exact."""
        total = self.total
        if total != expected_cycles:
            detail = ", ".join(
                f"{cat}={n}" for cat, n in self.cycles.items() if n
            )
            raise CycleAccountingError(
                f"cycle stack sums to {total}, pipeline measured "
                f"{expected_cycles} cycles (delta {total - expected_cycles}); "
                f"stack: {detail or 'empty'}"
            )
        negative = [cat for cat, n in self.cycles.items() if n < 0]
        if negative:
            raise CycleAccountingError(
                f"negative cycle categories: {', '.join(negative)}"
            )

    # -- serialisation ---------------------------------------------------------

    def to_dict(self) -> Dict[str, int]:
        return dict(self.cycles)

    @classmethod
    def from_dict(cls, data: Mapping[str, int]) -> "CycleStack":
        stack = cls()
        for category, count in data.items():
            if category not in stack.cycles:
                raise ValueError(f"unknown cycle category {category!r}")
            stack.cycles[category] = int(count)
        return stack

    def __repr__(self) -> str:
        nonzero = {cat: n for cat, n in self.cycles.items() if n}
        return f"CycleStack(total={self.total}, {nonzero})"
