"""A simplified TAGE direction predictor.

This is the front-end predictor used by the timing model (standing in for
Table I's TAGE-SC-L; we omit the statistical corrector and loop predictor).
It also serves as the reference implementation of classic TAGE behaviour
that MASCOT (Sec. IV) modifies: compare :meth:`TAGEBranchPredictor._train`'s
allocate-on-mispredict policy with MASCOT's non-dependence allocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..common.bitops import mask
from ..common.hashing import table_index, table_tag
from ..common.history import GlobalHistory
from .base import BranchPredictor

__all__ = ["TAGEBranchPredictor", "TageEntry"]


@dataclass
class TageEntry:
    """One tagged TAGE entry: 3-bit signed-ish counter, tag, 2-bit useful."""

    tag: int = 0
    counter: int = 4          # 3-bit counter, 4 = weakly taken
    useful: int = 0           # 2-bit usefulness
    valid: bool = False

    def prediction(self) -> bool:
        return self.counter >= 4

    def update_counter(self, taken: bool) -> None:
        if taken:
            self.counter = min(7, self.counter + 1)
        else:
            self.counter = max(0, self.counter - 1)


class TAGEBranchPredictor(BranchPredictor):
    """TAGE with a bimodal base predictor and geometric history lengths."""

    DEFAULT_HISTORIES: Tuple[int, ...] = (4, 8, 16, 32, 64, 128)

    def __init__(
        self,
        histories: Sequence[int] = DEFAULT_HISTORIES,
        index_bits: int = 10,
        tag_bits: int = 11,
        base_index_bits: int = 13,
        useful_reset_period: int = 256_000,
        use_ittage: bool = True,
    ):
        super().__init__()
        if any(h <= 0 for h in histories):
            raise ValueError("history lengths must be positive")
        if list(histories) != sorted(histories):
            raise ValueError("history lengths must be increasing")
        self.histories = tuple(histories)
        self.index_bits = index_bits
        self.tag_bits = tag_bits
        self.base_index_bits = base_index_bits
        self.useful_reset_period = useful_reset_period

        self._base = [2] * (1 << base_index_bits)  # 2-bit bimodal
        self._tables: List[List[TageEntry]] = [
            [TageEntry() for _ in range(1 << index_bits)] for _ in histories
        ]
        self._ghist = GlobalHistory(max_bits=max(histories) + 8)
        self._index_folds = [
            self._ghist.attach_fold(h, index_bits) for h in histories
        ]
        self._tag_folds = [
            self._ghist.attach_fold(h, tag_bits) for h in histories
        ]
        self._tag_folds2 = [
            self._ghist.attach_fold(h, max(tag_bits - 1, 1)) for h in histories
        ]
        self._branch_count = 0
        # Indirect targets: ITTAGE when enabled (Table I's front end pairs
        # TAGE-SC-L with an indirect target predictor), else the base
        # class's last-target fallback.
        self._ittage = None
        if use_ittage:
            from .ittage import ITTAGE
            self._ittage = ITTAGE()
        # Per-prediction scratch, filled by _predict, consumed by _train.
        self._hit_table: Optional[int] = None
        self._indices: List[int] = []
        self._tags: List[int] = []

    # -- helpers -------------------------------------------------------------

    def _base_index(self, pc: int) -> int:
        return (pc >> 1) & mask(self.base_index_bits)

    def _compute_keys(self, pc: int) -> None:
        self._indices = [
            table_index(pc, self.index_bits, fold.value, table_number=t + 1)
            for t, fold in enumerate(self._index_folds)
        ]
        self._tags = [
            table_tag(pc, self.tag_bits, f1.value, f2.value)
            for f1, f2 in zip(self._tag_folds, self._tag_folds2)
        ]

    # -- BranchPredictor interface ---------------------------------------------

    def _predict(self, pc: int) -> bool:
        self._compute_keys(pc)
        self._hit_table = None
        for t in range(len(self.histories) - 1, -1, -1):
            entry = self._tables[t][self._indices[t]]
            if entry.valid and entry.tag == self._tags[t]:
                self._hit_table = t
                return entry.prediction()
        return self._base[self._base_index(pc)] >= 2

    def _train(self, pc: int, taken: bool, prediction: bool) -> None:
        mispredicted = prediction != taken
        hit = self._hit_table

        if hit is None:
            idx = self._base_index(pc)
            counter = self._base[idx]
            self._base[idx] = min(3, counter + 1) if taken else max(0, counter - 1)
        else:
            entry = self._tables[hit][self._indices[hit]]
            if not mispredicted:
                entry.useful = min(3, entry.useful + 1)
            entry.update_counter(taken)

        if mispredicted:
            self._allocate(taken, hit)

        self._branch_count += 1
        if self._branch_count % self.useful_reset_period == 0:
            self._decay_useful()
        self._ghist.push_conditional(taken)

    def _allocate(self, taken: bool, hit: Optional[int]) -> None:
        """Allocate one entry in a longer-history table after a mispredict."""
        start = 0 if hit is None else hit + 1
        for t in range(start, len(self.histories)):
            entry = self._tables[t][self._indices[t]]
            if not entry.valid or entry.useful == 0:
                entry.valid = True
                entry.tag = self._tags[t]
                entry.counter = 4 if taken else 3
                entry.useful = 0
                return
        # All candidates useful: age them so a future allocation succeeds.
        for t in range(start, len(self.histories)):
            entry = self._tables[t][self._indices[t]]
            entry.useful = max(0, entry.useful - 1)

    def _decay_useful(self) -> None:
        for table in self._tables:
            for entry in table:
                entry.useful >>= 1

    def observe_indirect(self, pc: int, target: int) -> bool:
        """Predict/train the indirect target via ITTAGE when enabled."""
        if self._ittage is None:
            return super().observe_indirect(pc, target)
        correct = self._ittage.predict_and_train(pc, target)
        self._ittage.on_outcome(target)
        self._ghist.push_indirect(target)
        self.stats.indirect_branches += 1
        if not correct:
            self.stats.indirect_mispredictions += 1
        return correct

    @property
    def storage_bits(self) -> int:
        """Approximate table storage in bits."""
        entry_bits = self.tag_bits + 3 + 2 + 1
        tagged = sum(len(t) for t in self._tables) * entry_bits
        total = tagged + 2 * len(self._base)
        if self._ittage is not None:
            total += self._ittage.storage_bits
        return total
