"""Branch direction predictors: the front-end substrate of the timing model."""

from .base import BranchPredictor, BranchStats
from .gshare import GShare
from .ittage import ITTAGE, ITtageEntry
from .tage import TAGEBranchPredictor, TageEntry

__all__ = [
    "BranchPredictor",
    "BranchStats",
    "GShare",
    "ITTAGE",
    "ITtageEntry",
    "TAGEBranchPredictor",
    "TageEntry",
]
