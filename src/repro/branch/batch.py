"""Batched-session counterpart of the branch predictors.

Mirrors :mod:`repro.predictors.batch` for the front-end direction
predictor: :class:`TageSession` transcribes the exact
:class:`TAGEBranchPredictor` predict/train/allocate logic over the same
live table entries and :class:`BranchStats`, with history folds carried by
a :class:`~repro.common.foldvec.FoldVector` (synced back on
:meth:`finish`) and the PC-static hash components cached per PC.  The
ITTAGE indirect-target predictor is driven through its real interface —
indirects are ~1% of the branch stream, so fidelity is free.

Any other direction predictor runs through :class:`GenericBranchSession`,
which simply forwards to the real ``predict_and_train`` path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..common.bitops import mask
from ..common.foldplan import BranchStream, FoldPlan
from ..common.foldvec import FoldVector
from ..common.history import INDIRECT_TARGET_BITS
from .base import BranchPredictor
from .ittage import ITtageEntry
from .tage import TAGEBranchPredictor

__all__ = ["TageSession", "GenericBranchSession", "make_branch_session"]


class GenericBranchSession:
    """Session driving the real branch-predictor protocol."""

    __slots__ = ("p",)

    def __init__(self, p: BranchPredictor) -> None:
        self.p = p

    def on_branch(self, pc: int, taken: bool) -> bool:
        return self.p.predict_and_train(pc, taken)

    def on_indirect(self, pc: int, target: int) -> bool:
        return self.p.observe_indirect(pc, target)

    def finish(self) -> None:
        pass


class TageSession:
    """Fast conditional-branch path for :class:`TAGEBranchPredictor`."""

    __slots__ = ("p", "fv", "_idx_slots", "_tag_slots", "_tag2_slots",
                 "_tables", "_base", "_nh", "_imask", "_tmask", "_bmask",
                 "_ibits", "_tbits", "_reset_period", "_stats", "_pc_cache",
                 "_idx", "_tags", "_plan", "_rows_idx", "_rows_tag",
                 "_base_rows", "_jc", "_ifv", "_iplan", "_ind_idx",
                 "_ind_tag", "_ind_base", "_ji")

    def __init__(self, p: TAGEBranchPredictor) -> None:
        self.p = p
        self.fv = FoldVector(p._ghist)
        nh = len(p.histories)
        self._nh = nh
        self._idx_slots = [self.fv.slot(h, p.index_bits) for h in p.histories]
        self._tag_slots = [self.fv.slot(h, p.tag_bits) for h in p.histories]
        self._tag2_slots = [self.fv.slot(h, max(p.tag_bits - 1, 1))
                            for h in p.histories]
        self._tables = p._tables
        self._base = p._base
        self._imask = mask(p.index_bits)
        self._tmask = mask(p.tag_bits)
        self._bmask = mask(p.base_index_bits)
        self._ibits = p.index_bits
        self._tbits = p.tag_bits
        self._reset_period = p.useful_reset_period
        self._stats = p.stats
        self._pc_cache: Dict[int, Tuple[List[int], int, int]] = {}
        self._idx = [0] * nh
        self._tags = [0] * nh
        self._plan: Optional[FoldPlan] = None
        self._rows_idx: Optional[List[Tuple[int, ...]]] = None
        self._rows_tag: Optional[List[Tuple[int, ...]]] = None
        self._base_rows: Optional[List[int]] = None
        self._jc = 0
        self._ifv: Optional[FoldVector] = None
        self._iplan: Optional[FoldPlan] = None
        self._ind_idx: Optional[List[Tuple[int, ...]]] = None
        self._ind_tag: Optional[List[Tuple[int, ...]]] = None
        self._ind_base: Optional[List[int]] = None
        self._ji = 0

    def _build_pc(self, pc: int) -> Tuple[List[int], int, int]:
        pcv = pc >> 1
        ib = self._ibits
        base = pcv ^ (pcv >> ib) ^ (pcv >> (2 * ib))
        sidx = [base ^ ((t + 1) * 0x9E37) for t in range(self._nh)]
        stag = pcv ^ (pcv >> self._tbits)
        return sidx, stag, pcv & self._bmask

    def prime(self, stream: BranchStream) -> None:
        """Precompute every conditional branch's table keys, vectorised.

        TAGE's history stream is the conditional outcome bits, plus the
        folded indirect-target bits when an ITTAGE is attached (mirroring
        :meth:`on_indirect`'s ``push_indirect``)."""
        cond = stream.kind == 0
        if self.p._ittage is not None:
            bits, ofs = stream.mixed()
            k_cond = ofs[cond]
            self._prime_ittage(stream)
        else:
            bits = stream.cond_only()
            k_cond = np.arange(int(np.count_nonzero(cond)))
        try:
            plan = FoldPlan(self.fv, bits)
        except RuntimeError:
            return
        self._plan = plan
        series = plan.series
        pcv = stream.pc[cond] >> 1
        ib = self._ibits
        base = pcv ^ (pcv >> ib) ^ (pcv >> (2 * ib))
        stag = pcv ^ (pcv >> self._tbits)
        imask = self._imask
        tmask = self._tmask
        icols = []
        tcols = []
        for t in range(self._nh):
            vi = series[self._idx_slots[t]][k_cond]
            vt = series[self._tag_slots[t]][k_cond]
            vt2 = series[self._tag2_slots[t]][k_cond]
            icols.append(((base ^ ((t + 1) * 0x9E37) ^ vi) & imask).tolist())
            tcols.append(((stag ^ vt ^ (vt2 << 1)) & tmask).tolist())
        self._rows_idx = list(zip(*icols))
        self._rows_tag = list(zip(*tcols))
        self._base_rows = (pcv & self._bmask).tolist()

    def _prime_ittage(self, stream: BranchStream) -> None:
        """Precompute the ITTAGE's per-indirect table keys and history.

        The ITTAGE's private :class:`GlobalHistory` sees only the folded
        target bits of indirect events (:meth:`ITTAGE.on_outcome`), another
        pure function of the trace."""
        itt = self.p._ittage
        ifv = FoldVector(itt._ghist)
        try:
            iplan = FoldPlan(ifv, stream.ind_only())
        except RuntimeError:
            return
        self._ifv = ifv
        self._iplan = iplan
        series = iplan.series
        ipc = stream.pc[stream.kind != 0] >> 1
        kp = np.arange(int(ipc.shape[0])) * INDIRECT_TARGET_BITS
        ib = itt.index_bits
        tb = itt.tag_bits
        tb2 = max(tb - 1, 1)
        imask = mask(ib)
        tmask = mask(tb)
        base_i = ipc ^ (ipc >> ib) ^ (ipc >> (2 * ib))
        stag = ipc ^ (ipc >> tb)
        icols = []
        tcols = []
        for t, h in enumerate(itt.histories):
            vi = series[ifv.slot(h, ib)][kp]
            vt = series[ifv.slot(h, tb)][kp]
            vt2 = series[ifv.slot(h, tb2)][kp]
            icols.append(
                ((base_i ^ vi ^ ((t + 1) * 0x9E37)) & imask).tolist())
            tcols.append(((stag ^ vt ^ (vt2 << 1)) & tmask).tolist())
        self._ind_idx = list(zip(*icols))
        self._ind_tag = list(zip(*tcols))
        self._ind_base = (ipc & mask(itt.base_index_bits)).tolist()

    def on_branch(self, pc: int, taken: bool) -> bool:
        p = self.p
        nh = self._nh
        rows = self._rows_idx
        if rows is not None:
            jc = self._jc
            self._jc = jc + 1
            idx = rows[jc]
            tags = self._rows_tag[jc]
            base_idx = self._base_rows[jc]
        else:
            c = self._pc_cache.get(pc)
            if c is None:
                c = self._build_pc(pc)
                self._pc_cache[pc] = c
            sidx, stag, base_idx = c
            values = self.fv.values
            idx = self._idx
            tags = self._tags
            imask = self._imask
            tmask = self._tmask
            idx_slots = self._idx_slots
            tag_slots = self._tag_slots
            tag2_slots = self._tag2_slots
            for t in range(nh):
                idx[t] = (sidx[t] ^ values[idx_slots[t]]) & imask
                tags[t] = (stag ^ values[tag_slots[t]]
                           ^ (values[tag2_slots[t]] << 1)) & tmask

        # -- predict --
        tables = self._tables
        hit = -1
        for t in range(nh - 1, -1, -1):
            entry = tables[t][idx[t]]
            if entry.valid and entry.tag == tags[t]:
                hit = t
                prediction = entry.counter >= 4
                break
        if hit < 0:
            prediction = self._base[base_idx] >= 2

        # -- train --
        mispredicted = prediction != taken
        if hit < 0:
            counter = self._base[base_idx]
            self._base[base_idx] = (min(3, counter + 1) if taken
                                    else max(0, counter - 1))
        else:
            entry = tables[hit][idx[hit]]
            if not mispredicted and entry.useful < 3:
                entry.useful += 1
            if taken:
                if entry.counter < 7:
                    entry.counter += 1
            elif entry.counter > 0:
                entry.counter -= 1

        if mispredicted:
            start = 0 if hit < 0 else hit + 1
            allocated = False
            for t in range(start, nh):
                entry = tables[t][idx[t]]
                if not entry.valid or entry.useful == 0:
                    entry.valid = True
                    entry.tag = tags[t]
                    entry.counter = 4 if taken else 3
                    entry.useful = 0
                    allocated = True
                    break
            if not allocated:
                for t in range(start, nh):
                    entry = tables[t][idx[t]]
                    if entry.useful > 0:
                        entry.useful -= 1

        p._branch_count += 1
        if p._branch_count % self._reset_period == 0:
            p._decay_useful()
        if rows is None:
            self.fv.push_bit(1 if taken else 0)

        stats = self._stats
        stats.conditional_branches += 1
        if mispredicted:
            stats.mispredictions += 1
            return False
        return True

    def on_indirect(self, pc: int, target: int) -> bool:
        p = self.p
        stats = self._stats
        if p._ittage is None:
            # Base-class last-target fallback (lazily created attribute).
            if not hasattr(p, "_last_targets"):
                p._last_targets = {}
            predicted = p._last_targets.get(pc)
            p._last_targets[pc] = target
            correct = predicted == target
        elif self._iplan is not None:
            correct = self._ittage_step(target)
            if self._plan is None:
                self.fv.push_indirect(target)
        else:
            correct = p._ittage.predict_and_train(pc, target)
            p._ittage.on_outcome(target)
            if self._plan is None:
                self.fv.push_indirect(target)
        stats.indirect_branches += 1
        if not correct:
            stats.indirect_mispredictions += 1
        return correct

    def _ittage_step(self, target: int) -> bool:
        """``ITTAGE.predict_and_train`` with primed keys; history advance
        deferred to the plan's ``finalize``."""
        itt = self.p._ittage
        ji = self._ji
        self._ji = ji + 1
        idx = self._ind_idx[ji]
        tags = self._ind_tag[ji]
        base_idx = self._ind_base[ji]
        tables = itt._tables
        nh = len(tables)
        provider = -1
        prediction = None
        for t in range(nh - 1, -1, -1):
            entry = tables[t][idx[t]]
            if entry is not None and entry.tag == tags[t]:
                provider = t
                prediction = entry.target
                break
        if prediction is None:
            prediction = itt._base[base_idx]

        correct = prediction == target
        itt.lookups += 1
        if not correct:
            itt.mispredictions += 1

        if provider >= 0:
            entry = tables[provider][idx[provider]]
            if entry.target == target:
                entry.confidence = min(3, entry.confidence + 1)
                entry.useful = min(3, entry.useful + 1)
            elif entry.confidence > 0:
                entry.confidence -= 1
            else:
                entry.target = target
                entry.confidence = 1
        itt._base[base_idx] = target

        if not correct:
            start = 0 if provider < 0 else provider + 1
            for t in range(start, nh):
                entry = tables[t][idx[t]]
                if entry is None or entry.useful == 0:
                    tables[t][idx[t]] = ITtageEntry(tag=tags[t],
                                                    target=target)
                    break
                entry.useful -= 1
        return correct

    def finish(self) -> None:
        if self._plan is not None:
            self._plan.finalize()
        self.fv.sync_back()
        if self._iplan is not None:
            self._iplan.finalize()
            self._ifv.sync_back()


def make_branch_session(predictor: BranchPredictor):
    """Session for the direction predictor; type-exact for subclass safety."""
    if type(predictor) is TAGEBranchPredictor:
        return TageSession(predictor)
    return GenericBranchSession(predictor)
