"""Common interface for branch direction predictors.

The timing pipeline uses a direction predictor to decide which branches
redirect the front end (Table I's machine uses TAGE-SC-L; we provide GShare
and a simplified TAGE).  The memory-dependence predictors do *not* consume
these predictions — they only consume the architectural outcome stream via
their own :class:`~repro.common.history.GlobalHistory` — so branch-predictor
fidelity only affects the timing model's redirect rate.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

__all__ = ["BranchPredictor", "BranchStats"]


@dataclass
class BranchStats:
    """Aggregate accuracy counters for a direction predictor."""

    conditional_branches: int = 0
    mispredictions: int = 0
    indirect_branches: int = 0
    indirect_mispredictions: int = 0

    @property
    def misprediction_rate(self) -> float:
        if self.conditional_branches == 0:
            return 0.0
        return self.mispredictions / self.conditional_branches

    def mpki(self, instructions: int) -> float:
        """Conditional mispredictions per kilo-instruction."""
        if instructions <= 0:
            raise ValueError("instruction count must be positive")
        return 1000.0 * self.mispredictions / instructions


class BranchPredictor(abc.ABC):
    """A branch direction predictor with a combined predict+train step.

    The trace-driven pipeline processes branches in program order, so the
    usual fetch-time speculation / commit-time repair split collapses into a
    single :meth:`predict_and_train` call per dynamic branch.
    """

    def __init__(self) -> None:
        self.stats = BranchStats()

    @abc.abstractmethod
    def _predict(self, pc: int) -> bool:
        """Direction guess for the branch at ``pc`` under current history."""

    @abc.abstractmethod
    def _train(self, pc: int, taken: bool, prediction: bool) -> None:
        """Update tables and history with the resolved outcome."""

    def predict_and_train(self, pc: int, taken: bool) -> bool:
        """Predict the branch, then train on its outcome.

        Returns ``True`` when the prediction was correct.
        """
        prediction = self._predict(pc)
        self._train(pc, taken, prediction)
        correct = prediction == taken
        self.stats.conditional_branches += 1
        if not correct:
            self.stats.mispredictions += 1
        return correct

    def batch_session(self):
        """Fused replay session for the batched engine (type-exact)."""
        from .batch import make_branch_session
        return make_branch_session(self)

    def observe_indirect(self, pc: int, target: int) -> bool:
        """Record an indirect branch; returns True if the target was predicted.

        The base implementation models a last-target predictor, the common
        baseline inside a BTB.  Subclasses may override.
        """
        if not hasattr(self, "_last_targets"):
            self._last_targets = {}
        predicted = self._last_targets.get(pc)
        self._last_targets[pc] = target
        correct = predicted == target
        self.stats.indirect_branches += 1
        if not correct:
            self.stats.indirect_mispredictions += 1
        return correct
