"""GShare direction predictor (McFarling, 1993).

Kept both as a cheap front-end predictor option and because NoSQ's
memory-dependence predictor is "based on the GShare predictor" — its
path-dependent table XORs the PC with a global-history vector exactly as
done here.
"""

from __future__ import annotations

from ..common.bitops import mask
from .base import BranchPredictor

__all__ = ["GShare"]


class GShare(BranchPredictor):
    """Classic GShare: PC XOR global history indexing a table of 2-bit counters."""

    def __init__(self, index_bits: int = 14, history_bits: int = 14):
        super().__init__()
        if index_bits <= 0:
            raise ValueError("index_bits must be positive")
        if history_bits < 0:
            raise ValueError("history_bits must be non-negative")
        self.index_bits = index_bits
        self.history_bits = min(history_bits, index_bits)
        # Weakly-taken initial state: real machines reset to weakly a side.
        self._counters = [2] * (1 << index_bits)
        self._history = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 1) ^ self._history) & mask(self.index_bits)

    def _predict(self, pc: int) -> bool:
        return self._counters[self._index(pc)] >= 2

    def _train(self, pc: int, taken: bool, prediction: bool) -> None:
        idx = self._index(pc)
        counter = self._counters[idx]
        if taken:
            self._counters[idx] = min(3, counter + 1)
        else:
            self._counters[idx] = max(0, counter - 1)
        self._history = ((self._history << 1) | (1 if taken else 0)) & mask(
            self.history_bits
        )

    @property
    def storage_bits(self) -> int:
        """Table storage in bits (2-bit counters)."""
        return 2 * len(self._counters)
