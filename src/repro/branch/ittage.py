"""ITTAGE-style indirect branch target predictor.

Sec. III-B of the paper leans on the TAGE/ITTAGE analogy: "the reason that
ITTAGE and TAGE are kept separate in branch prediction is that TAGE entries
are much smaller... In the analogy, all loads are indirect branches."  We
provide a compact ITTAGE so the timing model's indirect branches are
predicted with history context rather than the last-target baseline, and so
the analogy is concretely inspectable in code: compare
:class:`ITTAGE`'s target-table entries with MASCOT's distance entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..common.bitops import mask
from ..common.hashing import table_index, table_tag
from ..common.history import GlobalHistory

__all__ = ["ITTAGE", "ITtageEntry"]


@dataclass
class ITtageEntry:
    """Tag + full target + 2-bit confidence + 2-bit usefulness."""

    tag: int
    target: int
    confidence: int = 1
    useful: int = 0


class ITTAGE:
    """A small ITTAGE: base last-target table + tagged history tables."""

    def __init__(
        self,
        histories: Sequence[int] = (2, 8, 32, 128),
        index_bits: int = 8,
        tag_bits: int = 9,
        base_index_bits: int = 10,
    ):
        if list(histories) != sorted(histories) or not histories:
            raise ValueError("history lengths must be increasing, non-empty")
        self.histories = tuple(histories)
        self.index_bits = index_bits
        self.tag_bits = tag_bits
        self.base_index_bits = base_index_bits

        # Base predictor: direct-mapped last-target table.
        self._base: List[Optional[int]] = [None] * (1 << base_index_bits)
        self._tables: List[List[Optional[ITtageEntry]]] = [
            [None] * (1 << index_bits) for _ in histories
        ]
        self._ghist = GlobalHistory(max_bits=max(histories) + 8)
        self._index_folds = [
            self._ghist.attach_fold(h, index_bits) for h in histories
        ]
        self._tag_folds = [
            self._ghist.attach_fold(h, tag_bits) for h in histories
        ]
        self._tag_folds2 = [
            self._ghist.attach_fold(h, max(tag_bits - 1, 1))
            for h in histories
        ]
        # Prediction counters.
        self.lookups = 0
        self.mispredictions = 0

    # -------------------------------------------------------------------- keys

    def _base_index(self, pc: int) -> int:
        return (pc >> 1) & mask(self.base_index_bits)

    def _keys(self, pc: int) -> List[Tuple[int, int]]:
        return [
            (
                table_index(pc, self.index_bits, self._index_folds[t].value,
                            table_number=t + 1),
                table_tag(pc, self.tag_bits, self._tag_folds[t].value,
                          self._tag_folds2[t].value),
            )
            for t in range(len(self.histories))
        ]

    # ----------------------------------------------------------------- predict

    def predict(self, pc: int) -> Optional[int]:
        """Predicted target, or None when nothing is known."""
        keys = self._keys(pc)
        for t in range(len(self.histories) - 1, -1, -1):
            index, tag = keys[t]
            entry = self._tables[t][index]
            if entry is not None and entry.tag == tag:
                return entry.target
        return self._base[self._base_index(pc)]

    def predict_and_train(self, pc: int, target: int) -> bool:
        """Predict, then update with the resolved target.

        Returns True when the target was predicted correctly.  History must
        be advanced separately via :meth:`on_outcome` (the trace drives it
        through the owning branch predictor in the pipeline).
        """
        keys = self._keys(pc)
        provider: Optional[int] = None
        prediction: Optional[int] = None
        for t in range(len(self.histories) - 1, -1, -1):
            index, tag = keys[t]
            entry = self._tables[t][index]
            if entry is not None and entry.tag == tag:
                provider = t
                prediction = entry.target
                break
        if prediction is None:
            prediction = self._base[self._base_index(pc)]

        correct = prediction == target
        self.lookups += 1
        if not correct:
            self.mispredictions += 1

        # Update provider / base.
        if provider is not None:
            index, tag = keys[provider]
            entry = self._tables[provider][index]
            if entry.target == target:
                entry.confidence = min(3, entry.confidence + 1)
                entry.useful = min(3, entry.useful + 1)
            elif entry.confidence > 0:
                entry.confidence -= 1
            else:
                entry.target = target
                entry.confidence = 1
        self._base[self._base_index(pc)] = target

        # Allocate on a mispredict, in a longer-history table.
        if not correct:
            start = 0 if provider is None else provider + 1
            for t in range(start, len(self.histories)):
                index, tag = keys[t]
                entry = self._tables[t][index]
                if entry is None or entry.useful == 0:
                    self._tables[t][index] = ITtageEntry(tag=tag,
                                                         target=target)
                    break
                entry.useful -= 1
        return correct

    def on_outcome(self, target: int) -> None:
        """Push the resolved target into this predictor's own history."""
        self._ghist.push_indirect(target)

    @property
    def misprediction_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.mispredictions / self.lookups

    @property
    def storage_bits(self) -> int:
        entry_bits = self.tag_bits + 32 + 2 + 2  # 32-bit folded target field
        tagged = sum(len(t) for t in self._tables) * entry_bits
        return tagged + 32 * len(self._base)
