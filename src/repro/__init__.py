"""repro — a reproduction of MASCOT (HPCA 2025).

MASCOT is a TAGE-like predictor that unifies memory-dependence prediction
(MDP) and speculative memory bypassing (SMB) by learning context-dependent
*non-dependencies* alongside dependencies.  This package implements the
predictor, every baseline the paper compares against (PHAST, Store Sets,
NoSQ, a no-non-dependence TAGE ablation, perfect oracles), and the full
evaluation substrate: a synthetic SPEC CPU2017 stand-in workload generator,
branch predictors, a three-level cache hierarchy, and a trace-driven
out-of-order timing model.

Quickstart::

    from repro import Mascot, Pipeline, generate_trace

    trace = generate_trace("perlbench1", 50_000)
    stats = Pipeline(Mascot()).run(trace)
    print(f"IPC {stats.ipc:.3f}, "
          f"{stats.loads_bypassed} loads bypassed, "
          f"{stats.accuracy.mispredictions} dependence mispredictions")

See DESIGN.md for the system inventory and the per-experiment index, and
EXPERIMENTS.md for paper-vs-measured results.
"""

from .analysis import (
    AccuracyStats,
    Outcome,
    OutcomeKind,
    classify,
    expected_drain_from_max,
)
from .core import GOLDEN_COVE, LION_COVE, CoreConfig, Pipeline, PipelineStats
from .memory import Cache, HierarchyConfig, MemoryHierarchy
from .predictors import (
    MASCOT_DEFAULT,
    MASCOT_OPT,
    ActualOutcome,
    Mascot,
    MascotConfig,
    MDPredictor,
    NoSQ,
    PerfectMDP,
    PerfectMDPSMB,
    Phast,
    Prediction,
    PredictionKind,
    StoreSets,
    make_tage_no_nd,
    mascot_opt_reduced_tags,
)
from .trace import (
    SPEC_SUITE,
    BypassClass,
    MicroOp,
    OpClass,
    TraceGenerator,
    WorkloadProfile,
    build_program,
    generate_trace,
    get_profile,
    suite_names,
)

__version__ = "1.0.0"

__all__ = [
    "AccuracyStats",
    "Outcome",
    "OutcomeKind",
    "classify",
    "expected_drain_from_max",
    "GOLDEN_COVE",
    "LION_COVE",
    "CoreConfig",
    "Pipeline",
    "PipelineStats",
    "Cache",
    "HierarchyConfig",
    "MemoryHierarchy",
    "MASCOT_DEFAULT",
    "MASCOT_OPT",
    "ActualOutcome",
    "Mascot",
    "MascotConfig",
    "MDPredictor",
    "NoSQ",
    "PerfectMDP",
    "PerfectMDPSMB",
    "Phast",
    "Prediction",
    "PredictionKind",
    "StoreSets",
    "make_tage_no_nd",
    "mascot_opt_reduced_tags",
    "SPEC_SUITE",
    "BypassClass",
    "MicroOp",
    "OpClass",
    "TraceGenerator",
    "WorkloadProfile",
    "build_program",
    "generate_trace",
    "get_profile",
    "suite_names",
    "__version__",
]
