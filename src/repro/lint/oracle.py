"""oracle-leak: ground-truth reads reachable from ``predict()``.

The harness contract (:class:`repro.predictors.base.MDPredictor.predict`)
is that a predictor sees only ``uop.pc`` and ``uop.seq`` at predict time;
the trace's ground-truth annotations — ``bypass``, ``store_distance``,
``dep_store_seq`` and the ``has_dependence`` property — are reserved for
the oracle predictors (classes carrying ``is_oracle = True``).  A read of
any of those fields anywhere on a non-oracle ``predict()`` path is exactly
the unintended information flow SPOILER-style attacks exploit in reverse:
the predictor scores as if it had hardware it cannot build.

The check taints the ``uop`` parameter of every non-oracle predictor's
``predict()`` and follows it through local aliases and in-package helper
calls (``self.helper(uop)``, ``module.helper(uop)``); reading a
ground-truth attribute off any tainted name is a finding.  Table-entry
attributes that happen to share a name (e.g. a MASCOT entry's ``bypass``
counter) are untouched because their receiver is never tainted.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .findings import Finding
from .index import ClassInfo, FunctionInfo, PackageIndex

__all__ = ["RULES", "check"]

RULE = "oracle-leak"

RULES: Dict[str, str] = {
    RULE: "non-oracle predictor predict() path reads a ground-truth "
          "MicroOp annotation (bypass / store_distance / dep_store_seq / "
          "has_dependence)",
}

#: Ground-truth annotation fields of :class:`repro.trace.uop.MicroOp`.
GROUND_TRUTH_FIELDS = frozenset(
    {"bypass", "store_distance", "dep_store_seq", "has_dependence"}
)

#: Base-class names that mark a class as a predictor.
_PREDICTOR_BASES = ("predictors.base.MDPredictor", "MDPredictor")


def _is_oracle(index: PackageIndex, cls: ClassInfo) -> bool:
    marker = index.class_attr(cls, "is_oracle")
    return isinstance(marker, ast.Constant) and marker.value is True


def _assignment_aliases(node: ast.AST) -> List[Tuple[str, str]]:
    """Simple ``new = old`` name aliases inside a function body."""
    aliases = []
    for child in ast.walk(node):
        if isinstance(child, ast.Assign) and isinstance(child.value, ast.Name):
            for target in child.targets:
                if isinstance(target, ast.Name):
                    aliases.append((target.id, child.value.id))
        elif (isinstance(child, ast.AnnAssign)
              and isinstance(child.value, ast.Name)
              and isinstance(child.target, ast.Name)):
            aliases.append((child.target.id, child.value.id))
    return aliases


def _tainted_names(func: FunctionInfo, seeds: FrozenSet[str]) -> Set[str]:
    """Seeds plus everything reachable through simple aliasing."""
    tainted = set(seeds)
    aliases = _assignment_aliases(func.node)
    changed = True
    while changed:
        changed = False
        for new, old in aliases:
            if old in tainted and new not in tainted:
                tainted.add(new)
                changed = True
    return tainted


def _walk(
    index: PackageIndex,
    func: FunctionInfo,
    seeds: FrozenSet[str],
    self_class: Optional[ClassInfo],
    origin: str,
    visited: Set[Tuple[int, FrozenSet[str]]],
    findings: List[Finding],
) -> None:
    # repro-lint: allow(det-id) -- per-process memo key; never ordered or persisted
    key = (id(func.node), seeds)
    if key in visited:
        return
    visited.add(key)
    tainted = _tainted_names(func, seeds)
    mod = index.modules.get(func.module)
    if mod is None:
        return

    for node in ast.walk(func.node):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and node.attr in GROUND_TRUTH_FIELDS
            and isinstance(node.value, ast.Name)
            and node.value.id in tainted
        ):
            findings.append(Finding(
                rule=RULE,
                module=func.module,
                path=str(mod.path),
                line=node.lineno,
                col=node.col_offset,
                message=(
                    f"predict() path of {origin} reads ground-truth field "
                    f"'{node.value.id}.{node.attr}' in {func.qualname}; "
                    "only oracle predictors (is_oracle = True) may read "
                    "trace annotations"
                ),
                symbol=func.qualname,
            ))
        elif isinstance(node, ast.Call):
            for callee, callee_class in index.resolve_call(
                func.module, self_class, node
            ):
                params = list(callee.params)
                # Methods reached via self.m(...) bind args after self.
                offset = 1 if callee_class is not None else 0
                new_seeds: Set[str] = set()
                for position, arg in enumerate(node.args):
                    if (isinstance(arg, ast.Name) and arg.id in tainted
                            and position + offset < len(params)):
                        new_seeds.add(params[position + offset])
                for keyword in node.keywords:
                    if (keyword.arg and isinstance(keyword.value, ast.Name)
                            and keyword.value.id in tainted
                            and keyword.arg in params):
                        new_seeds.add(keyword.arg)
                if new_seeds:
                    next_class = callee_class
                    if next_class is None and callee.class_name is not None:
                        next_class = index.find_class(
                            f"{callee.module}.{callee.class_name}"
                        )
                    _walk(index, callee, frozenset(new_seeds), next_class,
                          origin, visited, findings)


def check(index: PackageIndex) -> List[Finding]:
    findings: List[Finding] = []
    visited: Set[Tuple[int, FrozenSet[str]]] = set()
    for cls in sorted(index.classes.values(), key=lambda c: c.qualname):
        if not index.has_base(cls, _PREDICTOR_BASES):
            continue
        if _is_oracle(index, cls):
            continue
        predict = index.find_method(cls, "predict")
        if predict is None:
            continue
        # Skip the abstract declaration on the base protocol itself.
        if predict.class_name == "MDPredictor":
            continue
        params = list(predict.params)
        if len(params) < 2:
            continue
        _walk(index, predict, frozenset({params[1]}), cls, cls.qualname,
              visited, findings)
    return findings
