"""salt-*: audit of the result cache's code-version salt.

The content-addressed result cache keys every cell on a hash of the
"shared simulation substrate" — the hand-maintained ``_SHARED_SOURCES``
tuple in ``experiments/result_cache.py`` (plus a per-predictor
fingerprint covering ``predictors/``).  Nothing checked that list until
now: a module that influences results but is missing from the salt means
*stale cache hits after an edit*, silently.

These rules cross-check the salt against the import closure of the
cell-execution entry module (``experiments/runner.py``):

* ``salt-missing`` — a module reachable from the runner is covered by
  neither ``_SHARED_SOURCES``, the per-predictor fingerprint
  (``predictors/``), nor the :data:`RESULT_NEUTRAL_MODULES` allowlist.
* ``salt-stale``   — a salt entry that matches no module in the linted
  tree, or (for ``_SHARED_SOURCES``) one whose modules are all
  unreachable from the runner: dead weight that invalidates caches on
  edits that cannot change results.
* ``salt-opaque``  — a salt element that is not a plain string literal,
  so the audit (and a human) cannot tell what it covers.

Reachability is the *import* closure, direct imports only — ancestor
package ``__init__`` files are not expanded (see
:mod:`repro.lint.callgraph`), which keeps re-export hubs like
``experiments/__init__.py`` from dragging figures and CLI code into the
audit.  The whole checker stands down unless both the result-cache and
runner modules are in the linted tree, so per-file lints stay cheap and
quiet.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .callgraph import CallGraph
from .findings import Finding
from .index import PackageIndex
from .source import SourceModule

__all__ = ["RULES", "check", "RESULT_NEUTRAL_MODULES"]

RULES: Dict[str, str] = {
    "salt-missing": "result-influencing module absent from the cache salt",
    "salt-stale": "cache-salt entry matching nothing (or nothing reachable)",
    "salt-opaque": "cache-salt element is not a string literal",
}

#: Module suffix of the file defining the salt tuples.
_RESULT_CACHE_SUFFIX = "experiments.result_cache"
#: Module suffix of the cell-execution entry point.
_RUNNER_SUFFIX = "experiments.runner"

#: Package-relative module names reachable from the runner whose code is
#: result-neutral *by design* and therefore deliberately unsalted.  Keep
#: this list justified: an entry here means "editing this module can
#: never change a cached payload".
RESULT_NEUTRAL_MODULES = frozenset({
    # Cycle accounting feeds the profile renderer only; CycleStack totals
    # never enter PipelineStats or any cached payload (result_cache's
    # docstring documents the obs/ split).
    "obs.cycles",
})


def _find_module(index: PackageIndex, suffix: str) -> Optional[SourceModule]:
    for name in sorted(index.modules):
        if name == suffix or name.endswith("." + suffix):
            return index.modules[name]
    return None


def _salt_tuple(mod: SourceModule,
                name: str) -> Optional[Tuple[ast.Assign, List[ast.expr]]]:
    """The ``name = (...)`` assignment and its elements, if present."""
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign):
            targets = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            if name in targets and isinstance(stmt.value, (ast.Tuple,
                                                           ast.List)):
                return stmt, list(stmt.value.elts)
    return None


def _rel_module(module: str, root: str) -> Optional[str]:
    """``module`` relative to the package ``root`` ("" keeps it whole)."""
    if not root:
        return module
    if module == root:
        return None  # the package __init__ itself
    if module.startswith(root + "."):
        return module[len(root) + 1:]
    return None


def _entry_module(entry: str) -> str:
    """Salt entry ("trace", "experiments/runner.py") as a dotted module."""
    if entry.endswith(".py"):
        entry = entry[:-3]
    return entry.replace("/", ".").replace("\\", ".")


def _covers(entry: str, rel: str) -> bool:
    target = _entry_module(entry)
    if entry.endswith(".py"):
        return rel == target
    return rel == target or rel.startswith(target + ".")


def _finding(mod: SourceModule, rule: str, line: int, col: int,
             message: str, symbol: str) -> Finding:
    return Finding(rule=rule, module=mod.module, path=str(mod.path),
                   line=line, col=col, message=message, symbol=symbol)


def check(index: PackageIndex) -> List[Finding]:
    rc_mod = _find_module(index, _RESULT_CACHE_SUFFIX)
    runner_mod = _find_module(index, _RUNNER_SUFFIX)
    if rc_mod is None or runner_mod is None:
        return []
    shared = _salt_tuple(rc_mod, "_SHARED_SOURCES")
    predictor_common = _salt_tuple(rc_mod, "_PREDICTOR_COMMON_SOURCES")
    if shared is None:
        return []

    root = rc_mod.module[: -len(_RESULT_CACHE_SUFFIX)].rstrip(".")
    graph = CallGraph(index)
    closure = graph.import_closure([runner_mod.module])

    findings: List[Finding] = []
    entries: List[Tuple[str, ast.expr, bool]] = []  # (tuple name, elt, shared?)
    for name, parsed, is_shared in (("_SHARED_SOURCES", shared, True),
                                    ("_PREDICTOR_COMMON_SOURCES",
                                     predictor_common, False)):
        if parsed is None:
            continue
        _, elements = parsed
        for elt in elements:
            if (isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)):
                entries.append((name, elt, is_shared))
            else:
                findings.append(_finding(
                    rc_mod, "salt-opaque", elt.lineno, elt.col_offset,
                    f"element of {name} is not a string literal; the salt "
                    "audit (and the next maintainer) cannot tell what it "
                    "covers",
                    f"{rc_mod.module}:{name}",
                ))

    shared_entries = [elt.value for _, elt, is_shared in entries if is_shared]

    # salt-stale: entries covering no module, or nothing reachable.
    rel_by_module = {}
    for module in sorted(index.modules):
        rel = _rel_module(module, root)
        if rel is not None:
            rel_by_module[module] = rel
    for name, elt, is_shared in entries:
        entry = elt.value
        matching = [m for m, rel in sorted(rel_by_module.items())
                    if _covers(entry, rel)]
        if not matching:
            findings.append(_finding(
                rc_mod, "salt-stale", elt.lineno, elt.col_offset,
                f"{name} entry {entry!r} matches no module in the linted "
                "tree; it only invalidates caches without guarding "
                "anything",
                f"{rc_mod.module}:{name}:{entry}",
            ))
        elif is_shared and not any(m in closure for m in matching):
            findings.append(_finding(
                rc_mod, "salt-stale", elt.lineno, elt.col_offset,
                f"_SHARED_SOURCES entry {entry!r} is unreachable from the "
                f"cell-execution entry points in {runner_mod.module}; "
                "editing it cannot change results, yet invalidates every "
                "cached cell",
                f"{rc_mod.module}:{name}:{entry}",
            ))

    # salt-missing: reachable modules no salt entry covers.
    assign, _ = shared
    for module in sorted(closure):
        rel = rel_by_module.get(module)
        if rel is None:
            continue  # outside the package root
        if rel == "predictors" or rel.startswith("predictors."):
            continue  # covered per-predictor by predictor_fingerprint()
        if rel in RESULT_NEUTRAL_MODULES:
            continue
        if any(_covers(entry, rel) for entry in shared_entries):
            continue
        findings.append(_finding(
            rc_mod, "salt-missing", assign.lineno, assign.col_offset,
            f"module {module} is reachable from the cell-execution entry "
            f"points in {runner_mod.module} but no _SHARED_SOURCES entry "
            f"covers {rel.replace('.', '/')}.py; edits there would leave "
            "stale cache hits",
            f"{rc_mod.module}:_SHARED_SOURCES:{rel}",
        ))
    return findings
