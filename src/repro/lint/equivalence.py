"""eq-*: semantic-surface equivalence of the scalar and batched engines.

The two timing engines (``core/pipeline.py``'s ``Pipeline`` and
``core/batched.py``'s ``BatchedPipeline``) must stay bit-identical; the
golden grid proves it dynamically but runs behind the ``slow`` marker.
These rules catch the common drift — "edited one engine, forgot the
other" — at lint time by comparing the engines' static surfaces (see
:mod:`repro.lint.summaries`):

* ``eq-config-read``     — a config field read by one engine only,
* ``eq-stats-write``     — a stats field written by one engine only,
* ``eq-predictor-call``  — a predictor / branch-predictor / hierarchy
  hook invoked by one engine only (batch-session hooks are normalised to
  their scalar counterparts first),
* ``eq-config-literal``  — an integer literal combined with a config
  field in one engine with no counterpart in the other (e.g. a hoisted
  ``+ 64`` drain penalty).

A genuine one-sided construct carries a suppression pragma on the line
the finding anchors to::

    # repro-lint: allow(eq-config-literal) -- provisional drain estimate,
    # refined at commit by the batched engine

Findings anchor in the engine that *has* the extra element, because that
is where the asymmetry is visible and where the pragma can explain it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .findings import Finding
from .index import ClassInfo, PackageIndex
from .summaries import EngineSummary, summarize_engine

__all__ = ["RULES", "check", "ENGINE_PAIRS"]

RULES: Dict[str, str] = {
    "eq-config-read": "config field read by only one of the paired engines",
    "eq-stats-write": "stats field written by only one of the paired engines",
    "eq-predictor-call": "collaborator hook invoked by only one of the "
                         "paired engines",
    "eq-config-literal": "config-field/literal pairing present in only one "
                         "of the paired engines",
}

#: (module suffix, class name) of the scalar and batched halves of an
#: engine pair.  Modules pair up when they share the package prefix in
#: front of the suffix, so test fixtures shaped like the real tree
#: (``pkg/core/pipeline.py`` + ``pkg/core/batched.py``) pair too.
ENGINE_PAIRS = (
    (("core.pipeline", "Pipeline"), ("core.batched", "BatchedPipeline")),
)

_KIND_LABEL = {
    "predictor": "predictor",
    "branch": "branch predictor",
    "hierarchy": "memory hierarchy",
}


def _find_engines(index: PackageIndex,
                  suffix: str, class_name: str) -> Dict[str, ClassInfo]:
    """Package prefix -> engine class, for every module matching suffix."""
    found: Dict[str, ClassInfo] = {}
    for module in sorted(index.modules):
        if module == suffix or module.endswith("." + suffix):
            cls = index.classes.get(f"{module}.{class_name}")
            if cls is not None:
                found[module[: -len(suffix)]] = cls
    return found


def _one_sided(
    here: Dict, there: Dict,
) -> List[Tuple[object, int]]:
    """Elements of ``here`` missing from ``there``, with their lines."""
    return [(key, here[key]) for key in sorted(here, key=str)
            if key not in there]


def _emit(findings: List[Finding], index: PackageIndex, rule: str,
          cls: ClassInfo, other: ClassInfo, line: int, message: str) -> None:
    mod = index.modules.get(cls.module)
    findings.append(Finding(
        rule=rule,
        module=cls.module,
        path=str(mod.path) if mod is not None else cls.module,
        line=line,
        col=0,
        message=f"{message}; the engines must stay semantically aligned "
                f"(counterpart: {other.qualname})",
        symbol=f"{cls.module}:{cls.name}",
    ))


def _compare(findings: List[Finding], index: PackageIndex,
             cls: ClassInfo, other: ClassInfo,
             summary: EngineSummary, other_summary: EngineSummary,
             label: str, other_label: str) -> None:
    """One direction: elements ``cls`` has that ``other`` lacks."""
    for fieldname, line in _one_sided(summary.config_reads,
                                      other_summary.config_reads):
        _emit(findings, index, "eq-config-read", cls, other, line,
              f"{label} engine reads config field {fieldname!r} which the "
              f"{other_label} engine never reads")
    for fieldname, line in _one_sided(summary.stats_writes,
                                      other_summary.stats_writes):
        _emit(findings, index, "eq-stats-write", cls, other, line,
              f"{label} engine writes stats field {fieldname!r} which the "
              f"{other_label} engine never writes")
    for (kind, hook), line in _one_sided(summary.hook_calls,
                                         other_summary.hook_calls):
        _emit(findings, index, "eq-predictor-call", cls, other, line,
              f"{label} engine calls {_KIND_LABEL[kind]} hook {hook!r} "
              f"which the {other_label} engine never calls")
    for (fieldname, literal), line in _one_sided(summary.literal_pairs,
                                                 other_summary.literal_pairs):
        _emit(findings, index, "eq-config-literal", cls, other, line,
              f"{label} engine combines config field {fieldname!r} with "
              f"literal {literal} in a statement; the {other_label} engine "
              f"has no such pairing")


def check(index: PackageIndex) -> List[Finding]:
    findings: List[Finding] = []
    for (scalar_loc, batched_loc) in ENGINE_PAIRS:
        scalar_engines = _find_engines(index, *scalar_loc)
        batched_engines = _find_engines(index, *batched_loc)
        for prefix in sorted(scalar_engines):
            batched: Optional[ClassInfo] = batched_engines.get(prefix)
            if batched is None:
                continue  # single-engine tree (or per-file lint): no pair
            scalar = scalar_engines[prefix]
            scalar_summary = summarize_engine(index, scalar)
            batched_summary = summarize_engine(index, batched)
            _compare(findings, index, scalar, batched,
                     scalar_summary, batched_summary, "scalar", "batched")
            _compare(findings, index, batched, scalar,
                     batched_summary, scalar_summary, "batched", "scalar")
    return findings
