"""Package index: classes, functions, imports and a lightweight call graph.

The index is purely syntactic — nothing is imported or executed.  Names are
resolved best-effort through each module's import table, which is enough to
follow ``self.helper(...)``, ``module.helper(...)`` and bare ``helper(...)``
calls *within* the linted package; calls that escape the package resolve to
nothing and the taint walk simply stops there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from .source import SourceModule

__all__ = ["FunctionInfo", "ClassInfo", "PackageIndex"]


@dataclass
class FunctionInfo:
    """One function or method definition."""

    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    class_name: Optional[str] = None
    #: Positional-or-keyword parameter names, including ``self``.
    params: Tuple[str, ...] = ()

    @property
    def qualname(self) -> str:
        inner = f"{self.class_name}.{self.name}" if self.class_name else self.name
        return f"{self.module}:{inner}"


@dataclass
class ClassInfo:
    """One class definition with resolved base names."""

    module: str
    name: str
    node: ast.ClassDef
    #: Bases resolved to dotted names (best effort; may be external).
    bases: Tuple[str, ...] = ()
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: Class-scope simple assignments, e.g. ``is_oracle = True``.
    attrs: Dict[str, ast.expr] = field(default_factory=dict)
    #: Dataclass-style annotated field defaults.
    field_defaults: Dict[str, ast.expr] = field(default_factory=dict)

    @property
    def qualname(self) -> str:
        return f"{self.module}.{self.name}"


def _dotted(node: ast.expr) -> Optional[str]:
    """``a.b.c`` attribute chains as a dotted string; None otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _params(node: ast.AST) -> Tuple[str, ...]:
    args = node.args
    names = [a.arg for a in getattr(args, "posonlyargs", [])]
    names += [a.arg for a in args.args]
    return tuple(names)


class PackageIndex:
    """Cross-module symbol and call-graph index over parsed sources."""

    def __init__(self, modules: Dict[str, SourceModule]):
        self.modules = modules
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: module -> local name -> dotted target.
        self.imports: Dict[str, Dict[str, str]] = {}
        for mod in modules.values():
            self._index_module(mod)
        # Base names can only be resolved once every module's import table
        # exists, so bases are filled in a second pass.
        for mod in modules.values():
            self._resolve_bases(mod)

    # ------------------------------------------------------------- building

    def _index_module(self, mod: SourceModule) -> None:
        imports: Dict[str, str] = {}
        is_package = mod.path.name == "__init__.py"
        pkg_parts = mod.module.split(".")
        if not is_package:
            pkg_parts = pkg_parts[:-1]

        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        imports[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base: List[str] = []
                if node.level:
                    up = node.level - 1
                    base = pkg_parts[: len(pkg_parts) - up] if up else list(pkg_parts)
                if node.module:
                    base = base + node.module.split(".") if node.level else node.module.split(".")
                prefix = ".".join(base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    target = f"{prefix}.{alias.name}" if prefix else alias.name
                    imports[alias.asname or alias.name] = target
        self.imports[mod.module] = imports

        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = FunctionInfo(mod.module, stmt.name, stmt,
                                    params=_params(stmt))
                self.functions[f"{mod.module}.{stmt.name}"] = info
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(mod, stmt)

    def _index_class(self, mod: SourceModule, node: ast.ClassDef) -> None:
        cls = ClassInfo(mod.module, node.name, node)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                cls.methods[stmt.name] = FunctionInfo(
                    mod.module, stmt.name, stmt, class_name=node.name,
                    params=_params(stmt),
                )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        cls.attrs[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    cls.field_defaults[stmt.target.id] = stmt.value
                    cls.attrs[stmt.target.id] = stmt.value
        self.classes[cls.qualname] = cls

    def _resolve_bases(self, mod: SourceModule) -> None:
        for stmt in mod.tree.body:
            if not isinstance(stmt, ast.ClassDef):
                continue
            cls = self.classes[f"{mod.module}.{stmt.name}"]
            bases = []
            for base in stmt.bases:
                dotted = _dotted(base)
                if dotted:
                    bases.append(self.resolve(mod.module, dotted))
            cls.bases = tuple(bases)

    # ------------------------------------------------------------ resolution

    def resolve(self, module: str, dotted: str) -> str:
        """Resolve a dotted name through ``module``'s import table."""
        head, _, rest = dotted.partition(".")
        imports = self.imports.get(module, {})
        if head in imports:
            target = imports[head]
            return f"{target}.{rest}" if rest else target
        local = f"{module}.{head}"
        if local in self.classes or local in self.functions:
            return f"{local}.{rest}" if rest else local
        return dotted

    def find_class(self, qualname: str) -> Optional[ClassInfo]:
        return self.classes.get(qualname)

    def iter_ancestry(self, cls: ClassInfo) -> Iterator[ClassInfo]:
        """The class and every in-package ancestor, MRO-ish order."""
        seen = {cls.qualname}
        queue = [cls]
        while queue:
            current = queue.pop(0)
            yield current
            for base in current.bases:
                parent = self.classes.get(base)
                if parent is not None and parent.qualname not in seen:
                    seen.add(parent.qualname)
                    queue.append(parent)

    def has_base(self, cls: ClassInfo, suffixes: Sequence[str]) -> bool:
        """Whether any (transitive) base name ends with one of ``suffixes``.

        Suffix matching lets fixtures that import the real
        ``repro.predictors.base.MDPredictor`` — without that module being
        part of the linted tree — still be recognised as predictors.
        """
        for ancestor in self.iter_ancestry(cls):
            for base in ancestor.bases:
                if any(base == s or base.endswith("." + s) for s in suffixes):
                    return True
        return False

    def find_method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        for ancestor in self.iter_ancestry(cls):
            if name in ancestor.methods:
                return ancestor.methods[name]
        return None

    def class_attr(self, cls: ClassInfo, name: str) -> Optional[ast.expr]:
        for ancestor in self.iter_ancestry(cls):
            if name in ancestor.attrs:
                return ancestor.attrs[name]
        return None

    def resolve_call(
        self,
        module: str,
        current_class: Optional[ClassInfo],
        call: ast.Call,
    ) -> List[Tuple[FunctionInfo, Optional[ClassInfo]]]:
        """Candidate in-package callees of ``call``.

        Returns ``(function, class-for-self)`` pairs; the class is the one
        ``self`` binds to inside the callee (for methods), else None.
        """
        func = call.func
        out: List[Tuple[FunctionInfo, Optional[ClassInfo]]] = []
        if isinstance(func, ast.Name):
            resolved = self.resolve(module, func.id)
            target = self.functions.get(resolved)
            if target is not None:
                out.append((target, None))
        elif isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                if current_class is not None:
                    method = self.find_method(current_class, func.attr)
                    if method is not None:
                        out.append((method, current_class))
            else:
                dotted = _dotted(func)
                if dotted:
                    resolved = self.resolve(module, dotted)
                    target = self.functions.get(resolved)
                    if target is not None:
                        out.append((target, None))
        return out
