"""Per-class semantic summaries of the timing engines, for the eq-* rules.

A summary reduces an engine class to the surfaces that must stay aligned
between the scalar and batched implementations:

* which config fields it reads (``self.config.x``, hoisted ``cfg = ...``
  aliases, and field-valued locals like ``alu_lat = cfg.alu_latency``),
* which stats fields it writes (plain and augmented assignment, nested
  sub-stat objects collapse to their first component, and stats *method*
  calls recorded as ``name()``),
* which collaborator hooks it invokes on the predictor, branch predictor
  and memory hierarchy — through direct calls, batch-session objects and
  bound-method aliases (``s_on_branch = session.on_branch``),
* which integer literals appear in a statement together with a config
  field (catching "scalar adds ``cfg.sb_drain_latency + 64``, batched
  forgot the 64" drift).  Literals 0 and 1 are excluded: zero-filled
  port lists and off-by-one loop bounds are structural noise, not tuning
  constants.

Everything is keyed to the *first* source line an element occurs on, so
findings anchor where a suppression pragma can sit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from .index import ClassInfo, PackageIndex

__all__ = ["EngineSummary", "summarize_engine",
           "PREDICTOR_SESSION_MAP", "BRANCH_SESSION_MAP", "IGNORED_HOOKS"]

#: ``self.<attr>`` collaborator roots and the kind each one denotes.
_COLLABORATORS = {
    "config": "config",
    "stats": "stats",
    "predictor": "predictor",
    "branch_predictor": "branch",
    "hierarchy": "hierarchy",
}

#: Batch-session hook -> scalar-path hook(s) it stands for, on the memory
#: dependence predictor.  ``predict_train`` fuses the scalar predict+train
#: pair into one call.
PREDICTOR_SESSION_MAP: Dict[str, Tuple[str, ...]] = {
    "predict_train": ("predict", "train"),
}

#: Same for the branch predictor's batch session.
BRANCH_SESSION_MAP: Dict[str, Tuple[str, ...]] = {
    "on_branch": ("predict_and_train",),
    "on_indirect": ("observe_indirect",),
}

#: Session-lifecycle hooks with no scalar counterpart by design: the
#: scalar path has no session object to create, finish or prime.
IGNORED_HOOKS = frozenset({"batch_session", "finish", "prime"})

#: Literals too generic to signal tuning-constant drift.
_NOISE_LITERALS = frozenset({0, 1})


@dataclass
class EngineSummary:
    """Semantic surface of one engine class (element -> first line)."""

    config_reads: Dict[str, int] = field(default_factory=dict)
    stats_writes: Dict[str, int] = field(default_factory=dict)
    #: (collaborator kind, hook name) -> line.
    hook_calls: Dict[Tuple[str, str], int] = field(default_factory=dict)
    #: (config field, integer literal) -> line.
    literal_pairs: Dict[Tuple[str, int], int] = field(default_factory=dict)


class _MethodScan(ast.NodeVisitor):
    """One pass over a method body, aliases threaded in source order."""

    def __init__(self, summary: EngineSummary):
        self.summary = summary
        #: local name -> collaborator kind ("config", "stats", ...).
        self.aliases: Dict[str, str] = {}
        #: local name -> config field it holds (``lat = cfg.alu_latency``).
        self.field_locals: Dict[str, str] = {}
        #: local name -> (collaborator kind, hook) bound-method alias.
        self.bound_methods: Dict[str, Tuple[str, str]] = {}

    # -------------------------------------------------------------- recording

    def _record(self, table: Dict, key, line: int) -> None:
        if key not in table:
            table[key] = line

    def _read_config(self, fieldname: str, line: int) -> None:
        self._record(self.summary.config_reads, fieldname, line)

    def _write_stats(self, fieldname: str, line: int) -> None:
        self._record(self.summary.stats_writes, fieldname, line)

    def _call_hook(self, kind: str, hook: str, line: int) -> None:
        if hook in IGNORED_HOOKS:
            return
        session_map = {"session:predictor": PREDICTOR_SESSION_MAP,
                       "session:branch": BRANCH_SESSION_MAP}.get(kind)
        if session_map is not None:
            kind = kind.split(":", 1)[1]
            for mapped in session_map.get(hook, (hook,)):
                self._record(self.summary.hook_calls, (kind, mapped), line)
        else:
            self._record(self.summary.hook_calls, (kind, hook), line)

    # ------------------------------------------------------------ resolution

    def _root_kind(self, node: ast.expr) -> Optional[str]:
        """Collaborator kind of an expression, or None."""
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if (isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"):
            return _COLLABORATORS.get(node.attr)
        return None

    def _attr_chain(self, node: ast.expr) -> Tuple[Optional[str],
                                                   Tuple[str, ...]]:
        """(root kind, attribute chain) for ``root.a.b`` expressions."""
        chain = []
        while isinstance(node, ast.Attribute):
            kind = self._root_kind(node.value)
            chain.append(node.attr)
            if kind is not None:
                return kind, tuple(reversed(chain))
            node = node.value
        return None, ()

    # ----------------------------------------------------------- assignments

    def _bind(self, name: str, value: ast.expr, line: int) -> None:
        """Track what an assignment binds ``name`` to; drop stale aliases."""
        self.aliases.pop(name, None)
        self.field_locals.pop(name, None)
        self.bound_methods.pop(name, None)

        if isinstance(value, ast.Name) and value.id in self.aliases:
            self.aliases[name] = self.aliases[value.id]
            return
        kind, chain = self._attr_chain(value)
        if kind is not None and len(chain) == 1:
            if kind == "config":
                # ``lat = cfg.alu_latency``: a field-valued local.
                self.field_locals[name] = chain[0]
                self._read_config(chain[0], line)
            elif kind in ("predictor", "branch", "hierarchy",
                          "session:predictor", "session:branch"):
                # ``timed_load = self.hierarchy.timed_load`` or
                # ``s_on_branch = session.on_branch``.
                self.bound_methods[name] = (kind, chain[0])
            return
        if isinstance(value, ast.Attribute) and self._root_kind(value) is not None:
            self.aliases[name] = self._root_kind(value)
            return
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "batch_session"):
            kind = self._root_kind(value.func.value)
            if kind in ("predictor", "branch"):
                self.aliases[name] = f"session:{kind}"
            return
        if (isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "getattr" and len(value.args) >= 2):
            # ``prime = getattr(session, "prime", None)``.
            kind = self._root_kind(value.args[0])
            hook = value.args[1]
            if (kind is not None and isinstance(hook, ast.Constant)
                    and isinstance(hook.value, str)):
                self.bound_methods[name] = (kind, hook.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._bind(target.id, node.value, node.lineno)
            else:
                self._write_target(target, node.lineno)
                self.visit(target)
        self.visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            if isinstance(node.target, ast.Name):
                self._bind(node.target.id, node.value, node.lineno)
            else:
                self._write_target(node.target, node.lineno)
            self.visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._write_target(node.target, node.lineno)
        self.visit(node.target)
        self.visit(node.value)

    def _write_target(self, target: ast.expr, line: int) -> None:
        while isinstance(target, ast.Subscript):
            target = target.value
        kind, chain = self._attr_chain(target)
        if kind == "stats" and chain:
            self._write_stats(chain[0], line)

    # ----------------------------------------------------------------- reads

    def visit_Attribute(self, node: ast.Attribute) -> None:
        kind = self._root_kind(node.value)
        if kind == "config":
            self._read_config(node.attr, node.lineno)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            kind = self._root_kind(func.value)
            if kind == "stats":
                self._write_stats(f"{func.attr}()", node.lineno)
            elif kind in ("predictor", "branch", "hierarchy",
                          "session:predictor", "session:branch"):
                self._call_hook(kind, func.attr, node.lineno)
        elif isinstance(func, ast.Name) and func.id in self.bound_methods:
            kind, hook = self.bound_methods[func.id]
            self._call_hook(kind, hook, node.lineno)
        self.generic_visit(node)


def _iter_shallow(stmt: ast.stmt):
    """The statement and its expressions, stopping at nested statements.

    A compound statement (``if``/``for``/``while``/``with``) contributes
    only its header expressions; the statements of its body are visited
    in their own right, so a literal deep inside one branch never pairs
    with a config field read in another.
    """
    stack: list = [stmt]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.stmt):
                stack.append(child)


def _scan_literals(scan: _MethodScan, stmt: ast.stmt) -> None:
    """Statement-level (config field x integer literal) association.

    Runs after the alias pass with the method's final alias tables: a
    statement that mentions both a config field (directly or through a
    field-valued local) and a non-noise integer literal contributes the
    cross product of its fields and literals.
    """
    fields = []
    literals = []
    for node in _iter_shallow(stmt):
        if isinstance(node, ast.Attribute):
            if scan._root_kind(node.value) == "config":
                fields.append(node.attr)
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            fieldname = scan.field_locals.get(node.id)
            if fieldname is not None:
                fields.append(fieldname)
        elif isinstance(node, ast.Constant):
            if (type(node.value) is int
                    and node.value not in _NOISE_LITERALS):
                literals.append((node.value, node.lineno))
    for fieldname in fields:
        for literal, line in literals:
            # Anchored at the literal itself: that line is where a
            # suppression pragma for a deliberate one-sided constant sits.
            scan._record(scan.summary.literal_pairs,
                         (fieldname, literal), line)


def _scan_method(summary: EngineSummary, method_node: ast.AST) -> None:
    scan = _MethodScan(summary)
    # Constructor-style config parameters alias the config collaborator.
    for arg in getattr(method_node.args, "args", []):
        if arg.arg == "config":
            scan.aliases["config"] = "config"
    for stmt in method_node.body:
        scan.visit(stmt)
    for node in ast.walk(method_node):
        if isinstance(node, ast.stmt) and not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef,
                       ast.Import, ast.ImportFrom)):
            _scan_literals(scan, node)


def summarize_engine(index: PackageIndex, cls: ClassInfo) -> EngineSummary:
    """Merge the summaries of every method of ``cls`` and its ancestors."""
    summary = EngineSummary()
    for ancestor in index.iter_ancestry(cls):
        for name in sorted(ancestor.methods):
            _scan_method(summary, ancestor.methods[name].node)
    return summary
