"""det-*: determinism / cache-safety checks.

Every experiment cell must compute bit-identically across runs, machines
and worker counts — the on-disk result cache stores cells by content
address and the parallel engine merges them positionally, so *any*
run-to-run variation silently corrupts sweeps.  These rules flag the usual
entropy sources:

* ``det-unseeded-rng``  — module-level ``random.*`` draws, ``random.Random()``
  / ``numpy.random.default_rng()`` / ``RandomState()`` without a seed, and
  any ``numpy.random.*`` global-state draw — through every import spelling
  (``import numpy``, ``import numpy.random as npr``, ``from numpy import
  random``, ``from numpy.random import shuffle``).
* ``det-time``          — wall/CPU clock reads (``time.time`` et al.,
  ``datetime.now``/``utcnow``/``today``).  The parallel supervisor alone
  (:data:`MONOTONIC_CLOCK_MODULES`) may read *monotonic* clocks: it needs
  them for timeout deadlines and backoff scheduling, and they never flow
  into results.  Backoff *jitter* must still derive from cell keys —
  ``random``/wall-clock jitter anywhere (including
  ``repro.experiments.resilience`` and ``.journal``) stays flagged.
* ``det-entropy``       — OS entropy (``os.urandom``, ``secrets``,
  ``uuid.uuid1``/``uuid4``, ``random.SystemRandom``).
* ``det-id``            — ``id()`` values, which vary per process.
* ``det-hash``          — ``hash()`` outside ``__hash__``: string hashing is
  salted per process (PYTHONHASHSEED).
* ``det-set-order``     — iterating a ``set`` (or feeding one to
  ``list``/``tuple``/``sum``/``join``/...) without ``sorted``: set order
  depends on the per-process hash salt.
* ``det-env``           — environment reads outside the sanctioned config
  surface (:data:`SANCTIONED_ENV_MODULES`: the result-cache / journal
  directory overrides and the fault-injection switch): hidden env inputs
  make identical-looking cells differ between hosts.
* ``det-write``         — file writes (``open`` in a ``w``/``a``/``x``/``+``
  mode, ``Path.write_text``/``write_bytes``, ``Path.open("w")``) outside
  the sanctioned output surface (:data:`SANCTIONED_WRITE_MODULES`: trace
  serialisation, metrics/telemetry emission, the cache, journal, export
  and lint-baseline writers).  A stray write from simulation code can
  race across workers and silently change what a cached cell means.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .findings import Finding
from .index import PackageIndex
from .source import SourceModule

__all__ = ["RULES", "check", "MONOTONIC_CLOCK_MODULES",
           "SANCTIONED_ENV_MODULES", "SANCTIONED_WRITE_MODULES"]

RULES: Dict[str, str] = {
    "det-unseeded-rng": "unseeded or process-global random number generator",
    "det-time": "wall/CPU clock read in simulation code",
    "det-entropy": "OS entropy source (urandom/secrets/uuid1/uuid4)",
    "det-id": "id() is per-process and must not reach results or cache keys",
    "det-hash": "hash() outside __hash__ is salted per process",
    "det-set-order": "iteration over an unordered set without sorted()",
    "det-env": "environment read outside the sanctioned config surface",
    "det-write": "file write outside the sanctioned output surface",
}

#: Modules allowed to read the environment: the result-cache / run-journal
#: directory overrides and the fault-injection switch are the package's
#: sanctioned env-configured knobs.  Add new env inputs here (and to the
#: cache key, if they can change results!) rather than scattering reads.
SANCTIONED_ENV_MODULES = frozenset({
    "repro.experiments.result_cache",
    "repro.experiments.journal",
    "repro.experiments.resilience",
    # $REPRO_CACHE_URL: where results are cached, never what they are.
    "repro.experiments.cache_service",
})

#: Modules allowed to read monotonic (never wall-clock) clocks: the
#: supervisor loop (deadlines and backoff scheduling), the throughput
#: bench harness (``perf_counter`` deltas are its entire product) and the
#: lint CLI (its ``--metrics`` record carries the run's wall seconds).
#: Clock values there drive *when* a cell runs or *how long it took*,
#: never *what* it computes.
MONOTONIC_CLOCK_MODULES = frozenset({
    "repro.experiments.parallel",
    "repro.experiments.bench_baseline",
    "repro.lint.cli",
    # Distributed substrate: lease deadlines, heartbeat ages, reconnect
    # cooldowns — scheduling only, never part of a result.
    "repro.experiments.backends",
    # CacheLock wait budget (its one wall-clock read, lock-file age for
    # stale-break, carries a det-time pragma at the call site).
    "repro.experiments.result_cache",
    # Cache-client reconnect cooldown — scheduling only.
    "repro.experiments.cache_service",
})

#: Modules allowed to open files for writing.  Everything else — the
#: simulator core, predictors, trace generation, figures — must stay
#: side-effect free so cells are pure functions of their parameters;
#: telemetry and metrics leave the process only through
#: ``repro.obs.metrics`` and these writers.
SANCTIONED_WRITE_MODULES = frozenset({
    "repro.trace.stream",
    "repro.obs.metrics",
    "repro.lint.baseline",
    "repro.experiments.resilience",
    "repro.experiments.export",
    "repro.experiments.result_cache",
    "repro.experiments.journal",
    # The perf-baseline writer: BENCH_throughput.json is a committed
    # artifact, produced on explicit request, never from a suite cell.
    "repro.experiments.bench_baseline",
    # The worker service's ready-file (host:port for launch scripts);
    # cell computation inside the worker stays write-free.
    "repro.experiments.worker",
    # The cache service and HTTP coordinator write the same ready-file
    # breadcrumb; entry persistence itself goes through result_cache.
    "repro.experiments.cache_service",
    "repro.experiments.serve",
})

_RANDOM_DRAWS = frozenset({
    "random", "randint", "randrange", "uniform", "choice", "choices",
    "sample", "shuffle", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "paretovariate",
    "weibullvariate", "triangular", "vonmisesvariate", "getrandbits",
    "randbytes", "binomialvariate", "seed",
})
_NUMPY_DRAWS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "exponential", "poisson", "binomial", "bytes",
    "seed",
})
_TIME_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
})
#: Clock reads with no wall-time meaning, tolerated in
#: MONOTONIC_CLOCK_MODULES only.
_MONOTONIC_FUNCS = frozenset({
    "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns",
})
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})
_WRITE_MODE_CHARS = frozenset("wax+")
_SET_SINKS = frozenset({"list", "tuple", "iter", "enumerate", "sum", "map",
                        "filter", "reversed"})


def _resolves_to(index: PackageIndex, module: str, name: str,
                 target: str) -> bool:
    return index.resolve(module, name) == target


def _write_mode(node: ast.Call, position: int) -> Optional[str]:
    """Constant write-mode string of an ``open``-style call, if any.

    ``position`` is where the mode argument sits positionally: 1 for the
    ``open(file, mode)`` builtin, 0 for ``Path.open(mode)``.  A
    non-constant mode is treated as read (the common dynamic case is
    plumbing a caller-supplied "r").
    """
    mode: Optional[ast.expr] = None
    if len(node.args) > position:
        mode = node.args[position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if (isinstance(mode, ast.Constant) and isinstance(mode.value, str)
            and any(c in _WRITE_MODE_CHARS for c in mode.value)):
        return mode.value
    return None


class _DetVisitor(ast.NodeVisitor):
    def __init__(self, index: PackageIndex, mod: SourceModule):
        self.index = index
        self.mod = mod
        self.findings: List[Finding] = []
        self._func_stack: List[str] = []
        #: Stack of per-scope sets of names currently bound to set values.
        self._set_scopes: List[Set[str]] = [set()]

    # -------------------------------------------------------------- helpers

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule,
            module=self.mod.module,
            path=str(self.mod.path),
            line=node.lineno,
            col=node.col_offset,
            message=message,
            symbol=self._symbol(),
        ))

    def _symbol(self) -> Optional[str]:
        if not self._func_stack:
            return f"{self.mod.module}:<module>"
        return f"{self.mod.module}:{'.'.join(self._func_stack)}"

    def _resolve_name(self, name: str) -> str:
        return self.index.resolve(self.mod.module, name)

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset")):
            return True
        if isinstance(node, ast.Name):
            return any(node.id in scope for scope in self._set_scopes)
        return False

    def _check_iteration(self, iterable: ast.expr, context: str) -> None:
        if self._is_set_expr(iterable):
            self._emit(
                "det-set-order", iterable,
                f"{context} iterates an unordered set; wrap it in sorted() "
                "so result/cache ordering does not depend on the per-process "
                "hash seed",
            )

    # ---------------------------------------------------------------- scopes

    def _visit_function(self, node) -> None:
        self._func_stack.append(node.name)
        self._set_scopes.append(set())
        self.generic_visit(node)
        self._set_scopes.pop()
        self._func_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                scope = self._set_scopes[-1]
                if self._is_set_expr(node.value):
                    scope.add(target.id)
                else:
                    scope.discard(target.id)
        self.generic_visit(node)

    # ------------------------------------------------------------ iteration

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, "for loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node) -> None:
        for generator in node.generators:
            self._check_iteration(generator.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    # ----------------------------------------------------------------- calls

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func

        if isinstance(func, ast.Name):
            resolved = self._resolve_name(func.id)
            if func.id == "id" and resolved == "id":
                self._emit(
                    "det-id", node,
                    "id() changes between processes; it must never flow "
                    "into results, cache keys or ordering",
                )
            elif func.id == "hash" and resolved == "hash":
                if "__hash__" not in self._func_stack:
                    self._emit(
                        "det-hash", node,
                        "hash() of strings is salted per process "
                        "(PYTHONHASHSEED); use repro.common.hashing for "
                        "stable hashes",
                    )
            elif func.id in _SET_SINKS and node.args:
                self._check_iteration(node.args[0], f"{func.id}()")
            # from-imports of RNG constructors / draws.
            if resolved.startswith("random.") and (
                resolved.split(".", 1)[1] in _RANDOM_DRAWS
            ):
                self._emit(
                    "det-unseeded-rng", node,
                    f"{resolved}() draws from the process-global RNG; use a "
                    "seeded random.Random instance",
                )
            elif resolved in ("numpy.random.default_rng",
                              "numpy.random.RandomState") and not node.args:
                self._emit(
                    "det-unseeded-rng", node,
                    f"{resolved}() without a seed is OS-entropy seeded",
                )
            elif resolved.startswith("numpy.random.") and (
                resolved.rsplit(".", 1)[1] in _NUMPY_DRAWS
            ):
                # from numpy.random import shuffle / seed / rand / ...
                self._emit(
                    "det-unseeded-rng", node,
                    f"{resolved}() uses numpy's global RNG state; use "
                    "numpy.random.default_rng(seed)",
                )
            elif resolved == "random.Random" and not node.args:
                self._emit(
                    "det-unseeded-rng", node,
                    "random.Random() without a seed is OS-entropy seeded",
                )
            elif resolved == "os.urandom":
                self._emit("det-entropy", node,
                           "os.urandom() is nondeterministic by design")
            elif resolved in ("uuid.uuid1", "uuid.uuid4"):
                self._emit("det-entropy", node,
                           f"{resolved}() embeds host/OS entropy")
            elif resolved == "os.getenv":
                self._check_env(node)
            elif resolved == "open":
                mode = _write_mode(node, 1)
                if mode is not None:
                    self._check_write(node, f"open(..., {mode!r})")

        elif isinstance(func, ast.Attribute):
            self._check_attribute_call(node, func)

        self.generic_visit(node)

    def _check_attribute_call(self, node: ast.Call,
                              func: ast.Attribute) -> None:
        attr = func.attr
        value = func.value

        if attr in ("write_text", "write_bytes"):
            self._check_write(node, f".{attr}()")
        elif attr == "open":
            mode = _write_mode(node, 0)
            if mode is not None:
                self._check_write(node, f".open({mode!r})")

        # <name>.<attr>(...) with <name> an imported module (or class).
        if isinstance(value, ast.Name):
            resolved = self._resolve_name(value.id)
            if resolved == "random":
                if attr in _RANDOM_DRAWS:
                    self._emit(
                        "det-unseeded-rng", node,
                        f"random.{attr}() uses the process-global RNG "
                        "(seeded from OS entropy); use a seeded "
                        "random.Random instance",
                    )
                elif attr == "Random" and not node.args:
                    self._emit(
                        "det-unseeded-rng", node,
                        "random.Random() without a seed is OS-entropy seeded",
                    )
                elif attr == "SystemRandom":
                    self._emit("det-entropy", node,
                               "random.SystemRandom draws OS entropy")
            elif resolved == "numpy.random":
                # import numpy.random as npr / from numpy import random
                if attr in ("default_rng", "RandomState"):
                    if not node.args:
                        self._emit(
                            "det-unseeded-rng", node,
                            f"numpy.random.{attr}() without a seed is "
                            "OS-entropy seeded",
                        )
                elif attr in _NUMPY_DRAWS:
                    self._emit(
                        "det-unseeded-rng", node,
                        f"numpy.random.{attr}() uses numpy's global RNG "
                        "state; use numpy.random.default_rng(seed)",
                    )
            elif resolved == "time" and attr in _TIME_FUNCS:
                if not (attr in _MONOTONIC_FUNCS
                        and self.mod.module in MONOTONIC_CLOCK_MODULES):
                    self._emit(
                        "det-time", node,
                        f"time.{attr}() reads the clock; simulation results "
                        "must not depend on wall time",
                    )
            elif (resolved in ("datetime", "datetime.datetime",
                               "datetime.date")
                  and attr in _DATETIME_FUNCS):
                self._emit("det-time", node,
                           f"{resolved.split('.')[-1]}.{attr}() reads the "
                           "clock")
            elif resolved == "os":
                if attr == "urandom":
                    self._emit("det-entropy", node,
                               "os.urandom() is nondeterministic by design")
                elif attr == "getenv":
                    self._check_env(node)
            elif resolved == "secrets":
                self._emit("det-entropy", node,
                           f"secrets.{attr}() draws OS entropy")
            elif resolved == "uuid" and attr in ("uuid1", "uuid4"):
                self._emit("det-entropy", node,
                           f"uuid.{attr}() embeds host/OS entropy")
            elif attr == "join" and node.args:
                self._check_iteration(node.args[0], "str.join()")

        # numpy.random.<attr>(...).
        elif isinstance(value, ast.Attribute) and isinstance(value.value,
                                                             ast.Name):
            root = self._resolve_name(value.value.id)
            if root == "numpy" and value.attr == "random":
                if attr in ("default_rng", "RandomState"):
                    if not node.args:
                        self._emit(
                            "det-unseeded-rng", node,
                            f"numpy.random.{attr}() without a seed is "
                            "OS-entropy seeded",
                        )
                elif attr in _NUMPY_DRAWS:
                    self._emit(
                        "det-unseeded-rng", node,
                        f"numpy.random.{attr}() uses numpy's global RNG "
                        "state; use numpy.random.default_rng(seed)",
                    )
            elif attr == "join" and node.args:
                self._check_iteration(node.args[0], "str.join()")
        elif attr == "join" and node.args:
            self._check_iteration(node.args[0], "str.join()")

    # ------------------------------------------------------------------ env

    def _check_write(self, node: ast.AST, description: str) -> None:
        if self.mod.module in SANCTIONED_WRITE_MODULES:
            return
        self._emit(
            "det-write", node,
            f"{description} writes a file outside the sanctioned output "
            "surface (see repro.lint.determinism.SANCTIONED_WRITE_MODULES); "
            "simulation cells must be pure — emit artifacts through "
            "repro.obs.metrics or the cache/journal/export writers",
        )

    def _check_env(self, node: ast.AST) -> None:
        if self.mod.module in SANCTIONED_ENV_MODULES:
            return
        self._emit(
            "det-env", node,
            "environment read outside the sanctioned config surface "
            "(see repro.lint.determinism.SANCTIONED_ENV_MODULES); hidden "
            "env inputs make cached cells host-dependent",
        )

    def visit_Attribute(self, node: ast.Attribute) -> None:
        # Bare os.environ access (subscript, .get, iteration, ...).
        if (node.attr == "environ" and isinstance(node.value, ast.Name)
                and self._resolve_name(node.value.id) == "os"):
            self._check_env(node)
        self.generic_visit(node)


def check(index: PackageIndex) -> List[Finding]:
    findings: List[Finding] = []
    for name in sorted(index.modules):
        mod = index.modules[name]
        visitor = _DetVisitor(index, mod)
        visitor.visit(mod.tree)
        findings.extend(visitor.findings)
    return findings
