"""The :class:`Finding` record every checker emits.

A finding's :attr:`~Finding.fingerprint` deliberately excludes the line and
column so a committed baseline survives unrelated edits to the same file;
two findings with the same rule, module, symbol and message are considered
the same defect wherever it moved to.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Finding"]


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str
    #: Dotted module name (stable across checkouts, unlike the path).
    module: str
    #: Path as discovered on disk (for editor-clickable output).
    path: str
    line: int
    col: int
    message: str
    #: Qualified context, e.g. ``repro.predictors.mascot:Mascot.predict``.
    symbol: Optional[str] = None
    suppressed: bool = False
    baselined: bool = False
    #: Justification text captured from the suppression pragma, if any.
    justification: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        basis = "\x1f".join(
            [self.rule, self.module, self.symbol or "", self.message]
        )
        return hashlib.sha256(basis.encode("utf-8")).hexdigest()[:16]

    @property
    def family(self) -> str:
        """Rule-name prefix grouping related rules (``eq``, ``salt``...)."""
        return self.rule.split("-", 1)[0]

    @property
    def active(self) -> bool:
        """Counts toward the non-zero exit status."""
        return not (self.suppressed or self.baselined)

    def sort_key(self):
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "family": self.family,
            "module": self.module,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "symbol": self.symbol,
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "fingerprint": self.fingerprint,
        }
