"""Command-line front end: ``repro lint`` / ``python -m repro.lint``.

Exit status: **0** when no active findings remain (suppressed and
baselined findings do not count), **1** when active findings exist, **2**
on usage errors — a path that does not exist, or an unknown rule family
passed to ``--select`` / ``--ignore``.  The default target is the
installed ``repro`` package, so ``python -m repro.lint`` works from any
directory; CI pins the tree explicitly with ``repro lint src/repro``.

``--select`` / ``--ignore`` take comma-separated rule *families* (the
prefix before the first dash: ``oracle``, ``det``, ``hw``, ``eq``,
``salt``, ``conc``), letting CI run the cheap per-file rules and the
interprocedural pass as separate jobs.  ``--metrics FILE`` appends one
JSONL record (files, rules run, findings per family, wall seconds) via
:class:`repro.obs.MetricsWriter`, so lint cost lands in the same
observability stream as suite execution.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from .baseline import write_baseline
from .engine import ALL_RULES, lint_paths, rule_family
from .report import render_json, render_text

__all__ = ["add_arguments", "run", "main"]

#: Baseline picked up automatically when present in the working directory.
DEFAULT_BASELINE = "lint-baseline.json"


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline file of accepted findings (default: "
             f"./{DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output",
    )
    parser.add_argument(
        "--select", metavar="FAMILIES", default=None,
        help="comma-separated rule families to run (e.g. eq,salt,conc); "
             "default: all",
    )
    parser.add_argument(
        "--ignore", metavar="FAMILIES", default=None,
        help="comma-separated rule families to skip",
    )
    parser.add_argument(
        "--metrics", metavar="FILE", default=None,
        help="append a lint-run metrics record (JSONL) to FILE",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every rule with its description and exit",
    )


def _default_paths() -> List[str]:
    import repro

    return [str(Path(repro.__file__).parent)]


def _split_families(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [part.strip() for part in raw.split(",") if part.strip()]


def _emit_metrics(path: str, args: argparse.Namespace, result,
                  wall_seconds: float) -> None:
    from ..obs.metrics import MetricsWriter

    rules_run = len(ALL_RULES)
    selected = _split_families(args.select)
    ignored = _split_families(args.ignore) or []
    if selected is not None or ignored:
        rules_run = sum(
            1 for rule in ALL_RULES
            if (selected is None or rule_family(rule) in selected)
            and rule_family(rule) not in ignored
        )
    with MetricsWriter(path) as writer:
        writer.emit({
            "event": "lint",
            "files": result.files,
            "rules_run": rules_run,
            "active": len(result.active),
            "suppressed": sum(1 for f in result.findings if f.suppressed),
            "baselined": sum(1 for f in result.findings if f.baselined),
            "findings_by_family": result.family_counts(),
            "wall_seconds": round(wall_seconds, 3),
        })


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        width = max(len(rule) for rule in ALL_RULES)
        for rule in sorted(ALL_RULES):
            print(f"{rule.ljust(width)}  {ALL_RULES[rule]}")
        return 0

    paths = args.paths or _default_paths()
    baseline = args.baseline
    if baseline is None and Path(DEFAULT_BASELINE).exists():
        baseline = DEFAULT_BASELINE

    start = time.perf_counter()
    try:
        result = lint_paths(paths, baseline=baseline,
                            select=_split_families(args.select),
                            ignore=_split_families(args.ignore))
    except (FileNotFoundError, ValueError) as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2
    wall_seconds = time.perf_counter() - start

    if args.metrics:
        _emit_metrics(args.metrics, args, result, wall_seconds)

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE
        write_baseline(result.findings, target)
        accepted = sum(1 for f in result.findings if not f.suppressed)
        print(f"repro-lint: wrote {accepted} accepted findings to {target}")
        return 0

    if args.format == "json":
        sys.stdout.write(render_json(result.findings, result.files))
    else:
        sys.stdout.write(render_text(result.findings, result.files,
                                     show_suppressed=args.show_suppressed))
    return result.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based simulator-correctness linter "
                    "(oracle isolation, determinism, hardware "
                    "realizability, engine equivalence, cache-salt "
                    "audit, worker safety)",
    )
    add_arguments(parser)
    try:
        return run(parser.parse_args(argv))
    except BrokenPipeError:
        # Reports piped into `head` etc.; a truncated report is not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
