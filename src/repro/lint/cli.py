"""Command-line front end: ``repro lint`` / ``python -m repro.lint``.

Exit status: 0 when no active findings remain (suppressed and baselined
findings do not count), 1 otherwise.  The default target is the installed
``repro`` package, so ``python -m repro.lint`` works from any directory;
CI pins the tree explicitly with ``repro lint src/repro``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from .baseline import write_baseline
from .engine import ALL_RULES, lint_paths
from .report import render_json, render_text

__all__ = ["add_arguments", "run", "main"]

#: Baseline picked up automatically when present in the working directory.
DEFAULT_BASELINE = "lint-baseline.json"


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--baseline", metavar="FILE", default=None,
        help=f"baseline file of accepted findings (default: "
             f"./{DEFAULT_BASELINE} when it exists)",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--show-suppressed", action="store_true",
        help="include suppressed findings in text output",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list every rule with its description and exit",
    )


def _default_paths() -> List[str]:
    import repro

    return [str(Path(repro.__file__).parent)]


def run(args: argparse.Namespace) -> int:
    if args.list_rules:
        width = max(len(rule) for rule in ALL_RULES)
        for rule in sorted(ALL_RULES):
            print(f"{rule.ljust(width)}  {ALL_RULES[rule]}")
        return 0

    paths = args.paths or _default_paths()
    baseline = args.baseline
    if baseline is None and Path(DEFAULT_BASELINE).exists():
        baseline = DEFAULT_BASELINE

    try:
        result = lint_paths(paths, baseline=baseline)
    except FileNotFoundError as error:
        print(f"repro-lint: error: {error}", file=sys.stderr)
        return 2

    if args.update_baseline:
        target = args.baseline or DEFAULT_BASELINE
        write_baseline(result.findings, target)
        accepted = sum(1 for f in result.findings if not f.suppressed)
        print(f"repro-lint: wrote {accepted} accepted findings to {target}")
        return 0

    if args.format == "json":
        sys.stdout.write(render_json(result.findings, result.files))
    else:
        sys.stdout.write(render_text(result.findings, result.files,
                                     show_suppressed=args.show_suppressed))
    return result.exit_code


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="AST-based simulator-correctness linter "
                    "(oracle isolation, determinism, hardware "
                    "realizability)",
    )
    add_arguments(parser)
    try:
        return run(parser.parse_args(argv))
    except BrokenPipeError:
        # Reports piped into `head` etc.; a truncated report is not an error.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main())
