"""Whole-package call graph and reachability over the :class:`PackageIndex`.

The index resolves one call at a time; the interprocedural rules (eq-*,
salt-*, conc-*) need two whole-package views built on top of it:

* a **module import graph** — which in-package modules each module imports
  (directly, at any nesting depth), giving :meth:`CallGraph.import_closure`
  for the cache-salt audit.  Ancestor-package ``__init__`` files are *not*
  pulled in implicitly: importing ``pkg.core.pipeline`` executes
  ``pkg/core/__init__.py`` at runtime, but package initialisers only bind
  names — treating them as result-influencing would drag every re-export
  (figures, CLI, docs helpers) into the salt audit.

* a **function call graph** — edges from each function/method to every
  in-package callee the index can resolve, plus "references class C"
  edges.  Reachability is deliberately conservative: touching a class
  (instantiating it, passing it around, calling a classmethod) reaches
  *all* of its methods and its in-package ancestors, because instance
  method calls through arbitrary variables cannot be resolved statically.
  When a module is first reached, its top-level non-import statements are
  scanned too, so registry tables (``PREDICTOR_FACTORIES = {"x": Xpred}``)
  reach the classes they name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from .index import ClassInfo, FunctionInfo, PackageIndex, _dotted

__all__ = ["CallGraph", "Reachable"]


@dataclass
class Reachable:
    """Closure of one BFS over the call graph."""

    functions: Set[str] = field(default_factory=set)  # FunctionInfo.qualname
    classes: Set[str] = field(default_factory=set)    # ClassInfo.qualname
    modules: Set[str] = field(default_factory=set)    # dotted module names


class CallGraph:
    """Call and import edges derived once per lint run."""

    def __init__(self, index: PackageIndex):
        self.index = index
        #: Every function and method, keyed by qualname.
        self.functions: Dict[str, FunctionInfo] = {}
        #: function qualname -> callee function qualnames.
        self.calls: Dict[str, Tuple[str, ...]] = {}
        #: function qualname -> in-package class qualnames it references.
        self.class_refs: Dict[str, Tuple[str, ...]] = {}
        #: module -> in-package modules it imports directly.
        self.module_imports: Dict[str, Tuple[str, ...]] = {}
        #: module -> (functions, classes) referenced from top-level
        #: non-import statements (registry dicts, module constants).
        self._toplevel_refs: Dict[str, Tuple[Tuple[str, ...],
                                             Tuple[str, ...]]] = {}
        self._build()

    # -------------------------------------------------------------- building

    def _build(self) -> None:
        index = self.index
        for info in index.functions.values():
            self.functions[info.qualname] = info
        for cls in index.classes.values():
            for method in cls.methods.values():
                self.functions[method.qualname] = method

        for qualname in sorted(self.functions):
            info = self.functions[qualname]
            cls = None
            if info.class_name is not None:
                cls = index.classes.get(f"{info.module}.{info.class_name}")
            callees, classes = self._scan(info.module, cls, info.node)
            self.calls[qualname] = callees
            self.class_refs[qualname] = classes

        for name in sorted(index.modules):
            self.module_imports[name] = self._imports_of(name)
            self._toplevel_refs[name] = self._scan_toplevel(name)

    def _module_of(self, dotted: str) -> Optional[str]:
        """Longest prefix of ``dotted`` that names an in-package module."""
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.index.modules:
                return candidate
        return None

    def _imports_of(self, module: str) -> Tuple[str, ...]:
        targets: Set[str] = set()
        for dotted in self.index.imports.get(module, {}).values():
            resolved = self._module_of(dotted)
            if resolved is not None and resolved != module:
                targets.add(resolved)
        return tuple(sorted(targets))

    def _scan(self, module: str, cls: Optional[ClassInfo],
              node: ast.AST) -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
        """Callee qualnames and referenced class qualnames under ``node``."""
        index = self.index
        callees: Set[str] = set()
        classes: Set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                for target, _ in index.resolve_call(module, cls, sub):
                    callees.add(target.qualname)
                dotted = _dotted(sub.func)
                if dotted is not None and not dotted.startswith("self."):
                    self._resolve_dotted_call(module, dotted, callees, classes)
            elif isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                resolved = index.resolve(module, sub.id)
                if resolved in index.classes:
                    classes.add(resolved)
        return tuple(sorted(callees)), tuple(sorted(classes))

    def _resolve_dotted_call(self, module: str, dotted: str,
                             callees: Set[str], classes: Set[str]) -> None:
        """Resolve ``a.b.c(...)`` to a class, classmethod or function."""
        index = self.index
        resolved = index.resolve(module, dotted)
        if resolved in index.classes:
            classes.add(resolved)
            return
        head, _, last = resolved.rpartition(".")
        owner = index.classes.get(head)
        if owner is not None:
            classes.add(owner.qualname)
            method = index.find_method(owner, last)
            if method is not None:
                callees.add(method.qualname)

    def _scan_toplevel(self, module: str) -> Tuple[Tuple[str, ...],
                                                   Tuple[str, ...]]:
        mod = self.index.modules[module]
        callees: Set[str] = set()
        classes: Set[str] = set()
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.Import, ast.ImportFrom,
                                 ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            sub_callees, sub_classes = self._scan(module, None, stmt)
            callees |= set(sub_callees)
            classes |= set(sub_classes)
        return tuple(sorted(callees)), tuple(sorted(classes))

    # ---------------------------------------------------------- reachability

    def import_closure(self, roots: Iterable[str]) -> Set[str]:
        """Modules transitively imported from ``roots`` (roots included)."""
        seen: Set[str] = set()
        queue = [r for r in roots if r in self.index.modules]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            queue.extend(self.module_imports.get(current, ()))
        return seen

    def reachable(self, seeds: Iterable[str]) -> Reachable:
        """BFS from seed function qualnames; see the module docstring."""
        reach = Reachable()
        queue: List[str] = [s for s in seeds if s in self.functions]
        while queue:
            qualname = queue.pop()
            if qualname in reach.functions:
                continue
            reach.functions.add(qualname)
            info = self.functions[qualname]
            self._reach_module(info.module, reach, queue)
            queue.extend(self.calls.get(qualname, ()))
            for cls_name in self.class_refs.get(qualname, ()):
                self._reach_class(cls_name, reach, queue)
        return reach

    def _reach_class(self, qualname: str, reach: Reachable,
                     queue: List[str]) -> None:
        if qualname in reach.classes:
            return
        cls = self.index.classes.get(qualname)
        if cls is None:
            return
        reach.classes.add(qualname)
        for ancestor in self.index.iter_ancestry(cls):
            reach.classes.add(ancestor.qualname)
            self._reach_module(ancestor.module, reach, queue)
            for method in ancestor.methods.values():
                queue.append(method.qualname)

    def _reach_module(self, module: str, reach: Reachable,
                      queue: List[str]) -> None:
        if module in reach.modules:
            return
        reach.modules.add(module)
        callees, classes = self._toplevel_refs.get(module, ((), ()))
        queue.extend(callees)
        for cls_name in classes:
            self._reach_class(cls_name, reach, queue)
