"""conc-*: fork/worker safety of code reachable from pool workers.

``execute_cells`` fans cells out to a ``ProcessPoolExecutor``; everything
the worker function (``compute_cell``) can reach runs in forked/spawned
children.  Module-level mutable state there is a trap twice over: under
``fork`` it is silently *copied* (mutations diverge per worker, results
depend on scheduling), and the upcoming distributed-suite work will move
workers onto hosts where no sharing exists at all.  These rules fence
that surface:

* ``conc-mutable-global`` — a module-scope mutable container that the
  module itself mutates, or a module-scope instance of an in-package
  class that is not a frozen dataclass, in any worker-reachable module.
  Deliberate per-process memos (content-keyed caches whose entries are
  pure functions of their keys) carry a suppression pragma saying so.
* ``conc-global-rebind``  — a ``global`` statement rebinding module state
  inside a worker-reachable function: the rebind is per-process and its
  value cannot be trusted across workers.
* ``conc-process-handle`` — a file / lock / socket / subprocess handle
  created at module scope in a worker-reachable module: handles do not
  survive the process boundary (fork shares fds, spawn re-imports), so
  they must be created per worker instead.
* ``conc-socket``         — socket creation anywhere outside the two
  modules that own the coordinator/worker wire protocol
  (:data:`SOCKET_SANCTIONED_MODULES`).  The distributed backend's
  crash-safety argument rests on *all* network I/O flowing through one
  audited frame codec; a stray socket elsewhere bypasses the lease,
  digest and fault-injection machinery.
* ``conc-file-lock``      — file-locking primitives (``fcntl.flock`` /
  ``lockf``, ``os.open`` with ``O_EXCL``) outside the result cache
  (:data:`FILE_LOCK_SANCTIONED_MODULES`), whose ``CacheLock`` is the one
  place allowed to hold cross-process locks — ad-hoc locks deadlock
  against it on shared filesystems.

Reachability is the conservative call-graph closure of
:mod:`repro.lint.callgraph` seeded at ``compute_cell``; ``functools``
caches (``lru_cache``) are exempt — they are content-keyed memos the
runtime owns.  The reachability rules stand down when no worker entry
point is in the linted tree; the boundary rules (``conc-socket``,
``conc-file-lock``) scan every module unconditionally.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import CallGraph
from .findings import Finding
from .index import PackageIndex, _dotted
from .source import SourceModule

__all__ = ["RULES", "check", "WORKER_ENTRY_POINTS",
           "SOCKET_SANCTIONED_MODULES", "FILE_LOCK_SANCTIONED_MODULES"]

RULES: Dict[str, str] = {
    "conc-mutable-global": "mutable module-level state in a worker-reachable "
                           "module",
    "conc-global-rebind": "global-statement rebind in worker-reachable code",
    "conc-process-handle": "process-bound handle created at module scope in "
                           "a worker-reachable module",
    "conc-socket": "socket use outside the sanctioned protocol modules",
    "conc-file-lock": "file-lock primitive outside the result cache",
}

#: (module suffix, function name) seeds for worker reachability: the pure
#: functions the process pool maps over cells.
WORKER_ENTRY_POINTS = (("experiments.parallel", "compute_cell"),)

#: The only modules allowed to create sockets: the coordinator-side frame
#: codec/backend and the ``repro worker`` service.  All network I/O must
#: flow through their audited length-prefixed protocol.
SOCKET_SANCTIONED_MODULES = frozenset({
    "repro.experiments.backends",
    "repro.experiments.worker",
    # The shared result-cache service and its client (same frame
    # protocol as the worker substrate).
    "repro.experiments.cache_service",
    # The async HTTP coordinator front-end (asyncio streams plus the
    # frame protocol via the backends it drives).
    "repro.experiments.serve",
})

#: The only module allowed to take cross-process file locks: the result
#: cache's ``CacheLock`` (shared-filesystem writer discipline).
FILE_LOCK_SANCTIONED_MODULES = frozenset({
    "repro.experiments.result_cache",
})

#: Calls that create a network socket.
_SOCKET_CALLS = frozenset({
    "socket.socket", "socket.create_connection", "socket.create_server",
    "socket.socketpair", "socket.fromfd",
})

#: Calls that take (or implement) a cross-process file lock.
_FILE_LOCK_CALLS = frozenset({
    "fcntl.flock", "fcntl.lockf", "msvcrt.locking",
})

#: Constructors whose module-scope result is a mutable container.
_MUTABLE_CTORS = frozenset({
    "dict", "list", "set", "bytearray", "deque", "defaultdict",
    "OrderedDict", "Counter", "ChainMap",
})

#: Method names that mutate the container they are called on.
_MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert", "add",
    "update", "setdefault", "pop", "popitem", "popleft", "remove",
    "discard", "clear", "move_to_end", "sort", "reverse",
})

#: Calls that produce handles bound to the creating process.
_HANDLE_CALLS = frozenset({
    "open",
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore", "threading.Event",
    "multiprocessing.Lock", "multiprocessing.RLock", "multiprocessing.Queue",
    "multiprocessing.Manager", "multiprocessing.Pool",
    "socket.socket", "sqlite3.connect", "subprocess.Popen",
    "tempfile.NamedTemporaryFile", "tempfile.TemporaryFile",
})


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        if isinstance(deco, ast.Call):
            name = deco.func
            for kw in deco.keywords:
                if (kw.arg == "frozen" and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True):
                    if getattr(name, "id", getattr(name, "attr", "")) == \
                            "dataclass":
                        return True
    return False


def _is_enum(index: PackageIndex, qualname: str) -> bool:
    cls = index.classes.get(qualname)
    if cls is None:
        return False
    return index.has_base(cls, ("Enum", "IntEnum", "Flag", "IntFlag",
                                "NamedTuple"))


def _mutations_of(mod: SourceModule) -> Set[str]:
    """Module-global names the module itself mutates or rebinds."""
    mutated: Set[str] = set()
    module_scope: Set[str] = set()
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.Assign):
            module_scope.update(t.id for t in stmt.targets
                                if isinstance(t, ast.Name))
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name):
                module_scope.add(stmt.target.id)

    def root_name(expr: ast.expr) -> Optional[str]:
        while isinstance(expr, (ast.Subscript, ast.Attribute)):
            expr = expr.value
        return expr.id if isinstance(expr, ast.Name) else None

    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Global):
            mutated.update(node.names)
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (node.targets if isinstance(node, ast.Assign)
                       else [node.target])
            for target in targets:
                if isinstance(target, (ast.Subscript, ast.Attribute)):
                    name = root_name(target)
                    if name is not None:
                        mutated.add(name)
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                name = root_name(target)
                if name is not None:
                    mutated.add(name)
        elif (isinstance(node, ast.Call)
              and isinstance(node.func, ast.Attribute)
              and node.func.attr in _MUTATING_METHODS):
            name = root_name(node.func.value)
            if name is not None:
                mutated.add(name)
    return mutated & module_scope


class _ModuleScan:
    """conc findings for one worker-reachable module's top level."""

    def __init__(self, index: PackageIndex, mod: SourceModule):
        self.index = index
        self.mod = mod
        self.findings: List[Finding] = []
        self._mutated = _mutations_of(mod)

    def _emit(self, rule: str, node: ast.AST, name: str,
              message: str) -> None:
        self.findings.append(Finding(
            rule=rule, module=self.mod.module, path=str(self.mod.path),
            line=node.lineno, col=node.col_offset, message=message,
            symbol=f"{self.mod.module}:{name}",
        ))

    def _ctor_name(self, call: ast.Call) -> Optional[str]:
        func = call.func
        if isinstance(func, ast.Name):
            return func.id
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            return func.attr
        return None

    def _handle_target(self, call: ast.Call) -> Optional[str]:
        func = call.func
        dotted: Optional[str] = None
        if isinstance(func, ast.Name):
            dotted = self.index.resolve(self.mod.module, func.id)
        elif isinstance(func, ast.Attribute) and isinstance(func.value,
                                                            ast.Name):
            base = self.index.resolve(self.mod.module, func.value.id)
            dotted = f"{base}.{func.attr}"
        if dotted in _HANDLE_CALLS:
            return dotted
        return None

    def scan(self) -> None:
        for stmt in self.mod.tree.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            value = stmt.value
            if value is None:
                continue
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            names = [t.id for t in targets if isinstance(t, ast.Name)]
            if not names:
                continue
            self._scan_value(stmt, value, names)

    def _scan_value(self, stmt: ast.stmt, value: ast.expr,
                    names: List[str]) -> None:
        if isinstance(value, ast.Call):
            handle = self._handle_target(value)
            if handle is not None:
                self._emit(
                    "conc-process-handle", stmt, names[0],
                    f"{handle}() at module scope creates a handle that does "
                    "not survive the worker process boundary; create it per "
                    "worker instead",
                )
                return
            ctor = self._ctor_name(value)
            if ctor in _MUTABLE_CTORS:
                self._flag_container(stmt, names)
                return
            dotted = _dotted(value.func)
            if dotted is not None:
                resolved = self.index.resolve(self.mod.module, dotted)
                cls = self.index.classes.get(resolved)
                if (cls is not None and not _is_frozen_dataclass(cls.node)
                        and not _is_enum(self.index, resolved)):
                    self._emit(
                        "conc-mutable-global", stmt, names[0],
                        f"module-scope instance of {resolved} in a "
                        "worker-reachable module; instance state diverges "
                        "per worker process and must not influence results",
                    )
            return
        if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                              ast.DictComp, ast.SetComp)):
            self._flag_container(stmt, names)

    def _flag_container(self, stmt: ast.stmt, names: List[str]) -> None:
        for name in names:
            if name in self._mutated:
                self._emit(
                    "conc-mutable-global", stmt, name,
                    f"module-scope container {name!r} is mutated in a "
                    "worker-reachable module; each pool worker sees its own "
                    "copy, so the mutations diverge across processes",
                )


def _resolved_call(index: PackageIndex, module: str,
                   call: ast.Call) -> Optional[str]:
    """Dotted target of a call through the module's import table."""
    func = call.func
    if isinstance(func, ast.Name):
        return index.resolve(module, func.id)
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        base = index.resolve(module, func.value.id)
        return f"{base}.{func.attr}"
    return None


def _uses_o_excl(call: ast.Call) -> bool:
    """True when any argument expression mentions ``O_EXCL``."""
    values = list(call.args) + [kw.value for kw in call.keywords]
    for value in values:
        for node in ast.walk(value):
            if isinstance(node, ast.Attribute) and node.attr == "O_EXCL":
                return True
            if isinstance(node, ast.Name) and node.id == "O_EXCL":
                return True
    return False


def _boundary_findings(index: PackageIndex) -> List[Finding]:
    """conc-socket / conc-file-lock: whole-package, any nesting depth."""
    findings: List[Finding] = []
    for name in sorted(index.modules):
        mod = index.modules[name]
        socket_ok = name in SOCKET_SANCTIONED_MODULES
        lock_ok = name in FILE_LOCK_SANCTIONED_MODULES
        for node in ast.walk(mod.tree):
            if not isinstance(node, ast.Call):
                continue
            target = _resolved_call(index, name, node)
            if target is None:
                continue
            if not socket_ok and target in _SOCKET_CALLS:
                findings.append(Finding(
                    rule="conc-socket", module=name, path=str(mod.path),
                    line=node.lineno, col=node.col_offset,
                    message=f"{target}() outside the sanctioned protocol "
                            "modules; all network I/O must go through "
                            "repro.experiments.backends/.worker so leases, "
                            "digests and fault injection cover it",
                    symbol=f"{name}:{target}",
                ))
            elif not lock_ok and (target in _FILE_LOCK_CALLS
                                  or (target == "os.open"
                                      and _uses_o_excl(node))):
                findings.append(Finding(
                    rule="conc-file-lock", module=name, path=str(mod.path),
                    line=node.lineno, col=node.col_offset,
                    message=f"{target}() takes a cross-process file lock "
                            "outside repro.experiments.result_cache; use "
                            "CacheLock so lock discipline stays in one "
                            "audited place",
                    symbol=f"{name}:{target}",
                ))
    return findings


def _rebind_findings(index: PackageIndex, graph: CallGraph,
                     reachable_functions: Set[str]) -> List[Finding]:
    findings: List[Finding] = []
    for qualname in sorted(reachable_functions):
        info = graph.functions[qualname]
        mod = index.modules.get(info.module)
        if mod is None:
            continue
        for node in ast.walk(info.node):
            if isinstance(node, ast.Global):
                findings.append(Finding(
                    rule="conc-global-rebind", module=info.module,
                    path=str(mod.path), line=node.lineno,
                    col=node.col_offset,
                    message=f"worker-reachable {info.qualname} rebinds "
                            f"global(s) {', '.join(node.names)}; the rebind "
                            "is per-process and invisible to other workers",
                    symbol=info.qualname,
                ))
    return findings


def check(index: PackageIndex) -> List[Finding]:
    findings: List[Finding] = _boundary_findings(index)

    seeds = []
    for suffix, func_name in WORKER_ENTRY_POINTS:
        for module in sorted(index.modules):
            if module == suffix or module.endswith("." + suffix):
                qualname = f"{module}:{func_name}"
                if f"{module}.{func_name}" in index.functions:
                    seeds.append(qualname)
    if not seeds:
        return findings

    graph = CallGraph(index)
    reach = graph.reachable(seeds)

    for module in sorted(reach.modules):
        mod = index.modules.get(module)
        if mod is None:
            continue
        scan = _ModuleScan(index, mod)
        scan.scan()
        findings.extend(scan.findings)
    findings.extend(_rebind_findings(index, graph, reach.functions))
    return findings
