"""Text and JSON reporters for lint results."""

from __future__ import annotations

import json
from typing import Dict, List

from .findings import Finding

__all__ = ["render_text", "render_json"]


def _family_counts(findings: List[Finding]) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for finding in findings:
        if finding.active:
            counts[finding.family] = counts.get(finding.family, 0) + 1
    return counts


def _status_suffix(finding: Finding) -> str:
    if finding.suppressed:
        note = " [suppressed"
        if finding.justification:
            note += f": {finding.justification}"
        return note + "]"
    if finding.baselined:
        return " [baselined]"
    return ""


def render_text(findings: List[Finding], files: int,
                show_suppressed: bool = False) -> str:
    lines = []
    active = suppressed = baselined = 0
    for finding in findings:
        if finding.suppressed:
            suppressed += 1
            if not show_suppressed:
                continue
        elif finding.baselined:
            baselined += 1
        else:
            active += 1
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col + 1}: "
            f"{finding.rule}: {finding.message}{_status_suffix(finding)}"
        )
    summary = (
        f"repro-lint: {files} files checked, {active} finding"
        f"{'s' if active != 1 else ''}"
    )
    extras = []
    if baselined:
        extras.append(f"{baselined} baselined")
    if suppressed:
        extras.append(f"{suppressed} suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines) + "\n"


def render_json(findings: List[Finding], files: int) -> str:
    payload = {
        "version": 1,
        "files": files,
        "summary": {
            "active": sum(1 for f in findings if f.active),
            "suppressed": sum(1 for f in findings if f.suppressed),
            "baselined": sum(1 for f in findings if f.baselined),
            "active_by_family": _family_counts(findings),
        },
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2) + "\n"
