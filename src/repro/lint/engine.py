"""Lint engine: file discovery, checker orchestration, suppressions.

Library entry point::

    from repro.lint import lint_paths
    result = lint_paths(["src/repro"])
    assert result.ok, result.findings

Checkers are pure functions ``PackageIndex -> List[Finding]``; adding a
rule family means adding a module with a ``RULES`` dict and a ``check``
function and listing it in :data:`CHECKERS`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from . import (concurrency, determinism, equivalence, oracle, realizability,
               saltaudit)
from .baseline import apply_baseline, load_baseline
from .findings import Finding
from .index import PackageIndex
from .source import SourceModule, load_module

__all__ = ["ALL_FAMILIES", "ALL_RULES", "CHECKERS", "LintResult",
           "collect_files", "lint_paths", "rule_family"]

CHECKERS = (oracle, determinism, realizability,
            equivalence, saltaudit, concurrency)

#: rule name -> one-line description (includes the engine's own rules).
ALL_RULES: Dict[str, str] = {
    "parse-error": "file could not be parsed as Python",
}
for _checker in CHECKERS:
    ALL_RULES.update(_checker.RULES)


def rule_family(rule: str) -> str:
    """Rule-name prefix grouping related rules (``eq-config-read`` -> ``eq``)."""
    return rule.split("-", 1)[0]


#: Every known rule family, for ``--select`` / ``--ignore`` validation.
ALL_FAMILIES = tuple(sorted({rule_family(r) for r in ALL_RULES}))


def _resolve_families(
    select: Optional[Sequence[str]],
    ignore: Optional[Sequence[str]],
) -> Optional[frozenset]:
    """The families to run, or None for all; raises on unknown names."""
    if select is None and ignore is None:
        return None
    for name in list(select or ()) + list(ignore or ()):
        if name not in ALL_FAMILIES:
            known = ", ".join(ALL_FAMILIES)
            raise ValueError(
                f"unknown rule family {name!r} (known families: {known})")
    chosen = set(select) if select is not None else set(ALL_FAMILIES)
    chosen -= set(ignore or ())
    return frozenset(chosen)


@dataclass
class LintResult:
    """Findings plus enough context to render reports."""

    findings: List[Finding] = field(default_factory=list)
    files: int = 0

    @property
    def active(self) -> List[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def ok(self) -> bool:
        return not self.active

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def family_counts(self) -> Dict[str, int]:
        """Active findings per rule family (for reports and metrics)."""
        counts: Dict[str, int] = {}
        for finding in self.active:
            family = rule_family(finding.rule)
            counts[family] = counts.get(family, 0) + 1
        return counts


def collect_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(p for p in path.rglob("*.py"))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    unique = sorted({p.resolve(): p for p in files}.items())
    return [original for _, original in unique]


def lint_paths(
    paths: Sequence[Union[str, Path]],
    baseline: Optional[Union[str, Path]] = None,
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
) -> LintResult:
    """Lint every ``.py`` file under ``paths``; see the module docstring.

    ``select`` / ``ignore`` restrict the run to (or away from) the named
    rule *families* (``oracle``, ``det``, ``hw``, ``eq``, ``salt``,
    ``conc``); checkers with no selected rules are skipped entirely, so
    CI can split the cheap per-file rules and the interprocedural pass
    into separate jobs.  ``parse-error`` is always reported.  Unknown
    family names raise :class:`ValueError`.
    """
    families = _resolve_families(select, ignore)
    files = collect_files(paths)
    modules: Dict[str, SourceModule] = {}
    findings: List[Finding] = []

    for path in files:
        try:
            mod = load_module(path)
        except SyntaxError as error:
            findings.append(Finding(
                rule="parse-error",
                module=path.stem,
                path=str(path),
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                message=f"syntax error: {error.msg}",
            ))
            continue
        modules[mod.module] = mod

    index = PackageIndex(modules)
    for checker in CHECKERS:
        if families is not None and not any(
                rule_family(rule) in families for rule in checker.RULES):
            continue
        findings.extend(checker.check(index))
    if families is not None:
        findings = [f for f in findings
                    if rule_family(f.rule) in families
                    or f.rule == "parse-error"]

    for finding in findings:
        mod = modules.get(finding.module)
        if mod is not None and mod.is_suppressed(finding.rule, finding.line):
            finding.suppressed = True
            finding.justification = mod.justification_for(finding.line)

    findings.sort(key=Finding.sort_key)

    if baseline is not None:
        apply_baseline(findings, load_baseline(baseline))

    return LintResult(findings=findings, files=len(files))
