"""Source loading: parse trees, module naming and in-code pragmas.

repro-lint understands three comment pragmas:

``# repro-lint: allow(rule[, rule...]) -- justification``
    Suppress the named rules on this line (trailing pragma) or on the next
    line (stand-alone pragma).  The justification after ``--`` is optional
    but strongly encouraged; it is carried into reports.

``# repro-lint: allow-file(rule[, rule...]) -- justification``
    Suppress the named rules for the whole file.  Reserve this for files
    where a pattern is pervasive and uniformly safe (and say why).

``# repro-lint: budget(<kib> KiB)``
    Declare the storage budget of the predictor configuration constructed
    on this line (or the next); the hardware-realizability checker
    recomputes the budget from the literals and flags a mismatch.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Tuple

__all__ = ["SourceModule", "load_module", "module_name_for"]

_ALLOW_RE = re.compile(
    r"#\s*repro-lint:\s*allow(?P<scope>-file)?\(\s*(?P<rules>[^)]*)\)"
    r"(?:\s*--\s*(?P<why>.*))?"
)
_BUDGET_RE = re.compile(
    r"#\s*repro-lint:\s*budget\(\s*(?P<kib>[0-9]+(?:\.[0-9]+)?)\s*KiB\s*\)"
)


@dataclass
class SourceModule:
    """One parsed file plus its pragma tables."""

    path: Path
    module: str
    text: str
    tree: ast.Module
    #: line -> set of rules allowed on that line.
    allow: Dict[int, Set[str]] = field(default_factory=dict)
    #: rules allowed anywhere in the file.
    allow_file: Set[str] = field(default_factory=set)
    #: line -> justification text (best effort, for reports).
    justifications: Dict[int, str] = field(default_factory=dict)
    #: line -> declared storage budget in KiB.
    budgets: Dict[int, float] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        return rule in self.allow_file or rule in self.allow.get(line, ())

    def justification_for(self, line: int) -> str:
        return self.justifications.get(line, "")

    def budget_for(self, line: int) -> Optional[float]:
        return self.budgets.get(line)


def _scan_pragmas(mod: SourceModule) -> None:
    for lineno, line in enumerate(mod.text.splitlines(), start=1):
        match = _ALLOW_RE.search(line)
        if match:
            rules = {
                r.strip() for r in match.group("rules").split(",") if r.strip()
            }
            why = (match.group("why") or "").strip()
            if match.group("scope"):
                mod.allow_file |= rules
            else:
                # A pragma covers its own line and — for stand-alone
                # comment lines — the statement that follows it.
                for covered in (lineno, lineno + 1):
                    mod.allow.setdefault(covered, set()).update(rules)
                    if why:
                        mod.justifications.setdefault(covered, why)
        match = _BUDGET_RE.search(line)
        if match:
            kib = float(match.group("kib"))
            mod.budgets[lineno] = kib
            mod.budgets.setdefault(lineno + 1, kib)


def module_name_for(path: Path) -> str:
    """Dotted module name, derived from the ``__init__.py`` chain on disk.

    A file outside any package is named by its stem, which keeps single-file
    fixtures usable in tests.
    """
    path = path.resolve()
    parts: List[str] = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if parts[0] == "__init__":
        parts = parts[1:] or [path.parent.name]
    return ".".join(reversed(parts))


def load_module(path: Path, module: Optional[str] = None) -> SourceModule:
    """Parse ``path``; raises :class:`SyntaxError` on unparsable source."""
    text = path.read_text(encoding="utf-8")
    tree = ast.parse(text, filename=str(path))
    mod = SourceModule(
        path=path, module=module or module_name_for(path), text=text, tree=tree
    )
    _scan_pragmas(mod)
    return mod
