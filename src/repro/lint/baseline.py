"""Committed-baseline support.

A baseline is a JSON file of previously-accepted finding fingerprints; a
finding whose fingerprint appears in the baseline is reported but does not
fail the run.  This lets a new rule land with the tree's pre-existing debt
recorded instead of suppressed inline, and makes the debt shrink-only:
``--update-baseline`` rewrites the file from the *current* findings, so
fixing a violation removes its entry.

Fingerprints ignore line numbers (see :mod:`repro.lint.findings`), so
unrelated edits do not churn the file.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Dict, List, Union

from .findings import Finding

__all__ = ["load_baseline", "apply_baseline", "write_baseline"]

_VERSION = 1


def load_baseline(path: Union[str, Path]) -> Counter:
    """Fingerprint multiset from a baseline file (empty if missing)."""
    path = Path(path)
    if not path.exists():
        return Counter()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != _VERSION:
        raise ValueError(
            f"unsupported baseline version {data.get('version')!r} in {path}"
        )
    return Counter(
        entry["fingerprint"] for entry in data.get("findings", [])
    )


def apply_baseline(findings: List[Finding], baseline: Counter) -> None:
    """Mark findings covered by the baseline (multiset semantics)."""
    remaining = Counter(baseline)
    for finding in findings:
        if finding.suppressed:
            continue
        fingerprint = finding.fingerprint
        if remaining[fingerprint] > 0:
            remaining[fingerprint] -= 1
            finding.baselined = True


def write_baseline(findings: List[Finding], path: Union[str, Path]) -> None:
    """Record every non-suppressed finding as accepted debt."""
    entries: List[Dict[str, object]] = []
    for finding in sorted(findings, key=Finding.sort_key):
        if finding.suppressed:
            continue
        entries.append({
            "rule": finding.rule,
            "module": finding.module,
            "symbol": finding.symbol,
            "message": finding.message,
            "fingerprint": finding.fingerprint,
        })
    payload = {"version": _VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n",
        encoding="utf-8",
    )
