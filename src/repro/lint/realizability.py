"""hw-*: hardware-realizability checks on configuration literals.

The predictors model concrete SRAM structures; a config literal that no
index function or bit budget can realise silently turns the storage
comparison (Table II) into fiction.  Checks:

* ``hw-pow2-table``      — table entry counts must be powers of two
  (set-index bits are a bit-slice of the hashed PC/history).
* ``hw-counter-width``   — counter widths must fit their budgeted fields:
  usefulness/bypass/confidence counters 1–8 bits, distance fields at least
  7 bits (a 114-entry store window needs ⌈log2 115⌉ = 7), any field at
  most 64 bits.
* ``hw-history-geometric`` — TAGE-style ``history_lengths`` series must be
  increasing and geometric (each length ≈ first·rⁱ), the property the
  TAGE literature relies on for history coverage.
* ``hw-kib-budget``      — a ``# repro-lint: budget(<kib> KiB)`` annotation
  on a ``MascotConfig(...)`` construction is recomputed from the literals
  with the same arithmetic as :class:`repro.predictors.sizing` and must
  match within 1 %.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from .findings import Finding
from .index import PackageIndex
from .source import SourceModule

__all__ = ["RULES", "check"]

RULES: Dict[str, str] = {
    "hw-pow2-table": "predictor table entry count is not a power of two",
    "hw-counter-width": "counter/field width outside its hardware bit budget",
    "hw-history-geometric": "TAGE history lengths are not an increasing "
                            "geometric series",
    "hw-kib-budget": "declared KiB budget does not match the literal "
                     "configuration",
}

#: Keyword / parameter / field names that carry table entry counts.
TABLE_ENTRY_NAMES = frozenset({
    "table_entries", "entries_per_table", "ssit_entries", "lfst_entries",
    "num_entries",
})
#: Saturating-counter width names (small update/confidence state).
COUNTER_WIDTH_NAMES = frozenset({
    "usefulness_bits", "bypass_bits", "confidence_bits", "counter_bits",
})
#: ``*_bits`` names that are capacities or correction terms, not the width
#: of a single hardware field (``max_bits`` caps a history register;
#: ``extra_bits`` in PredictorSizing may legitimately be 0 or negative).
_WIDTH_NAME_EXCLUSIONS = frozenset({
    "extra_bits", "max_bits", "min_bits", "total_bits", "storage_bits",
})
#: The store window the distance field must be able to name (Table I:
#: Golden Cove's 114-entry store buffer).
STORE_WINDOW = 114
_MIN_DISTANCE_BITS = (STORE_WINDOW + 1).bit_length()  # == 7
#: Relative tolerance for the geometric-series fit (TAGE series are
#: integer-rounded, e.g. I-Dist's 2, 5, 11, 27, 64 for r ≈ 2.38).
_GEOMETRIC_TOLERANCE = 0.25

#: Fallback MascotConfig field defaults used when the class body is not
#: part of the linted tree (e.g. single-file fixtures).  Mirrors
#: :class:`repro.predictors.configs.MascotConfig`.
_MASCOT_DEFAULTS: Dict[str, object] = {
    "table_entries": (512,) * 8,
    "tag_bits": (16,) * 8,
    "distance_bits": 7,
    "usefulness_bits": 3,
    "bypass_bits": 2,
}

_FOLD_BINOPS = {
    ast.Add: lambda a, b: a + b,
    ast.Sub: lambda a, b: a - b,
    ast.Mult: lambda a, b: a * b,
    ast.FloorDiv: lambda a, b: a // b,
    ast.Pow: lambda a, b: a ** b,
    ast.LShift: lambda a, b: a << b,
    ast.RShift: lambda a, b: a >> b,
}


def const_fold(node: ast.expr):
    """Evaluate literal expressions like ``(512,) * 8``; None if dynamic."""
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, (ast.Tuple, ast.List)):
        items = [const_fold(e) for e in node.elts]
        if any(item is None for item in items):
            return None
        return tuple(items)
    if isinstance(node, ast.BinOp) and type(node.op) in _FOLD_BINOPS:
        left = const_fold(node.left)
        right = const_fold(node.right)
        if left is None or right is None:
            return None
        try:
            return _FOLD_BINOPS[type(node.op)](left, right)
        except Exception:
            return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        value = const_fold(node.operand)
        return -value if isinstance(value, (int, float)) else None
    return None


def _is_pow2(value: int) -> bool:
    return isinstance(value, int) and value > 0 and value & (value - 1) == 0


def _as_int_seq(value) -> Optional[Tuple[int, ...]]:
    if isinstance(value, int):
        return (value,)
    if isinstance(value, tuple) and all(isinstance(v, int) for v in value):
        return value
    return None


class _HwVisitor(ast.NodeVisitor):
    def __init__(self, index: PackageIndex, mod: SourceModule):
        self.index = index
        self.mod = mod
        self.findings: List[Finding] = []
        self._symbol_stack: List[str] = []

    # -------------------------------------------------------------- helpers

    def _emit(self, rule: str, node: ast.AST, message: str) -> None:
        self.findings.append(Finding(
            rule=rule,
            module=self.mod.module,
            path=str(self.mod.path),
            line=node.lineno,
            col=node.col_offset,
            message=message,
            symbol=self._symbol(),
        ))

    def _symbol(self) -> Optional[str]:
        if not self._symbol_stack:
            return f"{self.mod.module}:<module>"
        return f"{self.mod.module}:{'.'.join(self._symbol_stack)}"

    def _check_named_value(self, name: str, node: ast.expr) -> None:
        """Dispatch width/pow2/geometry checks by configuration name."""
        if name == "fields_per_entry" and isinstance(node, ast.Dict):
            self._check_fields_dict(node)
            return
        value = const_fold(node)
        if value is None:
            return
        if name in TABLE_ENTRY_NAMES:
            entries = _as_int_seq(value)
            if entries is None:
                return
            for count in entries:
                if not _is_pow2(count):
                    self._emit(
                        "hw-pow2-table", node,
                        f"{name} contains {count}, which is not a power of "
                        "two; set indexing needs a power-of-two table",
                    )
        elif name == "history_lengths" or name.endswith("HISTORY_LENGTHS"):
            lengths = _as_int_seq(value)
            if lengths is not None:
                self._check_geometric(name, lengths, node)
        elif name == "distance_bits":
            if isinstance(value, int) and not (
                _MIN_DISTANCE_BITS <= value <= 16
            ):
                self._emit(
                    "hw-counter-width", node,
                    f"distance_bits = {value} cannot name every store in a "
                    f"{STORE_WINDOW}-entry store window (needs "
                    f"{_MIN_DISTANCE_BITS}–16 bits)",
                )
        elif name in COUNTER_WIDTH_NAMES:
            if isinstance(value, int) and not (1 <= value <= 8):
                self._emit(
                    "hw-counter-width", node,
                    f"{name} = {value} is outside the 1–8 bit range of a "
                    "saturating confidence counter",
                )
        elif name.endswith("_bits") and name not in _WIDTH_NAME_EXCLUSIONS:
            if isinstance(value, int) and not (1 <= value <= 64):
                self._emit(
                    "hw-counter-width", node,
                    f"{name} = {value} is not a realizable field width "
                    "(1–64 bits)",
                )

    def _check_fields_dict(self, node: ast.Dict) -> None:
        for key_node, value_node in zip(node.keys, node.values):
            key = const_fold(key_node) if key_node is not None else None
            width = const_fold(value_node)
            if not isinstance(key, str) or not isinstance(width, int):
                continue
            if not (1 <= width <= 64):
                self._emit(
                    "hw-counter-width", value_node,
                    f"field '{key}' is {width} bits; not a realizable "
                    "field width (1–64)",
                )
            elif key == "distance" and width < _MIN_DISTANCE_BITS:
                self._emit(
                    "hw-counter-width", value_node,
                    f"distance field of {width} bits cannot name every "
                    f"store in a {STORE_WINDOW}-entry store window",
                )
            elif key == "counter" and width > 8:
                self._emit(
                    "hw-counter-width", value_node,
                    f"counter field of {width} bits exceeds the 8-bit "
                    "saturating-counter budget",
                )

    def _check_geometric(self, name: str, lengths: Sequence[int],
                         node: ast.AST) -> None:
        nonzero = [h for h in lengths if h > 0]
        if list(lengths) != sorted(lengths) or any(h < 0 for h in lengths):
            self._emit(
                "hw-history-geometric", node,
                f"{name} {tuple(lengths)} is not non-decreasing",
            )
            return
        if len(nonzero) != len(set(nonzero)):
            self._emit(
                "hw-history-geometric", node,
                f"{name} {tuple(lengths)} repeats a non-zero history length",
            )
            return
        if len(nonzero) < 3:
            return
        first, last = nonzero[0], nonzero[-1]
        ratio = (last / first) ** (1.0 / (len(nonzero) - 1))
        for position, length in enumerate(nonzero):
            expected = first * ratio ** position
            if abs(length - expected) > _GEOMETRIC_TOLERANCE * expected:
                self._emit(
                    "hw-history-geometric", node,
                    f"{name} {tuple(lengths)} deviates from a geometric "
                    f"series at {length} (expected ≈{expected:.1f} for "
                    f"ratio {ratio:.2f})",
                )
                return

    # ------------------------------------------------------------- visitors

    def visit_Call(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg:
                self._check_named_value(keyword.arg, keyword.value)
        self.generic_visit(node)

    def _visit_function(self, node) -> None:
        args = list(getattr(node.args, "posonlyargs", [])) + node.args.args
        defaults = node.args.defaults
        for arg, default in zip(args[len(args) - len(defaults):], defaults):
            self._check_named_value(arg.arg, default)
        for arg, default in zip(node.args.kwonlyargs, node.args.kw_defaults):
            if default is not None:
                self._check_named_value(arg.arg, default)
        self._symbol_stack.append(node.name)
        self.generic_visit(node)
        self._symbol_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    self._check_named_value(stmt.target.id, stmt.value)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self._check_named_value(target.id, stmt.value)
        self._symbol_stack.append(node.name)
        self.generic_visit(node)
        self._symbol_stack.pop()

    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._symbol_stack:  # module level
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._check_named_value(target.id, node.value)
            self._check_budget(node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if not self._symbol_stack and node.value is not None:
            if isinstance(node.target, ast.Name):
                self._check_named_value(node.target.id, node.value)
        self.generic_visit(node)

    # ---------------------------------------------------------- KiB budgets

    def _check_budget(self, node: ast.Assign) -> None:
        declared = self.mod.budget_for(node.lineno)
        if declared is None or not isinstance(node.value, ast.Call):
            return
        call = node.value
        func_name = None
        if isinstance(call.func, ast.Name):
            func_name = self.index.resolve(self.mod.module, call.func.id)
        if func_name is None or not func_name.endswith("MascotConfig"):
            return

        fields = dict(_MASCOT_DEFAULTS)
        config_class = self.index.find_class(func_name)
        if config_class is not None:
            for field_name in fields:
                default = config_class.field_defaults.get(field_name)
                if default is not None:
                    folded = const_fold(default)
                    if folded is not None:
                        fields[field_name] = folded
        for keyword in call.keywords:
            if keyword.arg in fields:
                folded = const_fold(keyword.value)
                if folded is None:
                    self._emit(
                        "hw-kib-budget", node,
                        f"declared budget {declared} KiB cannot be verified: "
                        f"{keyword.arg} is not a literal",
                    )
                    return
                fields[keyword.arg] = folded

        entries = _as_int_seq(fields["table_entries"])
        tags = _as_int_seq(fields["tag_bits"])
        widths = (fields["distance_bits"], fields["usefulness_bits"],
                  fields["bypass_bits"])
        if (entries is None or tags is None or len(entries) != len(tags)
                or not all(isinstance(w, int) for w in widths)):
            self._emit(
                "hw-kib-budget", node,
                f"declared budget {declared} KiB cannot be verified from "
                "the literals",
            )
            return
        per_entry_extra = sum(widths)
        total_bits = sum(
            count * (tag + per_entry_extra)
            for count, tag in zip(entries, tags)
        )
        computed = total_bits / 8 / 1024
        if abs(computed - declared) > max(0.01, 0.01 * declared):
            self._emit(
                "hw-kib-budget", node,
                f"declared budget {declared} KiB but the literals give "
                f"{computed:.4f} KiB ({total_bits} bits)",
            )


def check(index: PackageIndex) -> List[Finding]:
    findings: List[Finding] = []
    for name in sorted(index.modules):
        mod = index.modules[name]
        visitor = _HwVisitor(index, mod)
        visitor.visit(mod.tree)
        findings.extend(visitor.findings)
    return findings
