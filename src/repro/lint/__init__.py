"""repro-lint: AST-based simulator-correctness checks.

The reproduction's scientific contracts are social conventions the type
system cannot see:

* **oracle isolation** — :meth:`repro.predictors.base.MDPredictor.predict`
  must only read ``uop.pc``/``uop.seq``; the ground-truth annotations
  (``bypass``, ``store_distance``, ``dep_store_seq``, ``has_dependence``)
  are reserved for the oracle predictors.  A leak silently inflates a
  predictor's reported accuracy.
* **determinism / cache safety** — every experiment cell must compute
  bit-identically across runs and worker counts, or the PR-1 result cache
  and the ``jobs=N`` merge are unsound.  Unseeded RNGs, wall-clock reads,
  ``id()``/``hash()`` of objects and unsorted set iteration all break this.
* **hardware realizability** — predictor configuration literals must
  describe buildable hardware: power-of-two tables, counter widths within
  their bit budgets, geometric TAGE history series, and declared KiB
  budgets that match the :class:`~repro.predictors.sizing.PredictorSizing`
  arithmetic.

:mod:`repro.lint` walks the package's ASTs (no imports are executed) and
enforces all three families.  Run it as ``repro lint`` or
``python -m repro.lint``; see :mod:`repro.lint.engine` for the library
entry point and ``docs/lint.md`` for the rule catalogue and the
suppression/baseline workflow.
"""

from __future__ import annotations

from .engine import ALL_RULES, LintResult, lint_paths
from .findings import Finding

__all__ = ["ALL_RULES", "Finding", "LintResult", "lint_paths", "main"]


def main(argv=None) -> int:
    """CLI entry point (``python -m repro.lint``)."""
    from .cli import main as _main

    return _main(argv)
