"""IDist + Store Sets: the Perais et al. SMB configuration (Sec. II-B.2).

"Their IDist predictor is a TAGE-based predictor, which uses 2, 5, 11, 27
and 64 bits of global branch history combined with 16 bits of path history
and the load PC.  To minimise squashes, IDist only makes predictions when
it is highly confident.  Because of this, it is not suitable for
memory-dependence prediction, and thus the authors implement it in
conjunction with a 4 KiB store-sets predictor for that purpose."

This module implements exactly that split design:

* **IDist** — a TAGE-like distance predictor over the paper's history
  series (2, 5, 11, 27, 64) whose entries carry a 3-bit confidence counter;
  it only emits an SMB prediction when fully confident (and the tracked
  geometry is bypassable), and it emits *nothing* otherwise.
* **Store Sets** — a smaller (4 KiB-class) store-sets predictor supplying
  the MDP decision whenever IDist stays quiet.

The combination demonstrates the paper's motivating claim: split designs
pay twice in storage and still leave opportunities on the table compared
with a single structure accurate in both directions (MASCOT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..trace.uop import BypassClass, MicroOp
from .base import ActualOutcome, MDPredictor, Prediction, PredictionKind
from .store_sets import StoreSets
from .tables import TableBank, TableKey

__all__ = ["IDistStoreSets", "IDistEntry"]

#: IDist's published history lengths (bits of global branch history).
IDIST_HISTORY_LENGTHS: Tuple[int, ...] = (2, 5, 11, 27, 64)


@dataclass
class IDistEntry:
    """Tag + distance + 3-bit confidence + bypassable flag."""

    tag: int
    distance: int
    confidence: int  # 3-bit, saturates at 7
    bypassable: bool


class IDistStoreSets(MDPredictor):
    """IDist (SMB) layered over a small Store Sets predictor (MDP)."""

    name = "idist+store-sets"

    CONFIDENCE_BITS = 3
    DISTANCE_BITS = 7

    def __init__(
        self,
        history_lengths: Sequence[int] = IDIST_HISTORY_LENGTHS,
        entries_per_table: int = 512,
        tag_bits: int = 14,
        ways: int = 4,
        ssit_entries: int = 2048,
        lfst_entries: int = 1024,
    ):
        self.history_lengths = tuple(history_lengths)
        self.tag_bits = tag_bits
        self.bank = TableBank(
            history_lengths=self.history_lengths,
            table_entries=(entries_per_table,) * len(self.history_lengths),
            tag_bits=(tag_bits,) * len(self.history_lengths),
            ways=ways,
            path_bits=16,
        )
        # The companion MDP predictor ("a 4 KiB store-sets predictor").
        # Its footprint-pressure emulation (see StoreSets) is kept milder
        # than the full-size predictor's: at the default 192 the small SSIT
        # would collapse to ~10 effective entries and serialise everything,
        # which would caricature rather than model the split design.
        self.store_sets = StoreSets(
            ssit_entries=ssit_entries, lfst_entries=lfst_entries,
            footprint_scale=32,
        )
        self._confidence_max = (1 << self.CONFIDENCE_BITS) - 1
        self._distance_max = (1 << self.DISTANCE_BITS) - 1

    # ------------------------------------------------------------------ predict

    def _lookup(self, keys: Tuple[TableKey, ...]
                ) -> Tuple[Optional[int], Optional[IDistEntry]]:
        for t in range(len(self.bank) - 1, -1, -1):
            key = keys[t]
            for entry in self.bank[t].ways_at(key.index):
                if entry is not None and entry.tag == key.tag:
                    return t, entry
        return None, None

    def predict(self, uop: MicroOp) -> Prediction:
        keys = self.bank.keys(uop.pc)
        table, entry = self._lookup(keys)
        ss_prediction = self.store_sets.predict(uop)
        meta = {"keys": keys, "ss": ss_prediction}

        # IDist speaks only at full confidence and only for bypassable
        # geometry; everything else defers to Store Sets.
        if (
            entry is not None
            and entry.bypassable
            and entry.confidence >= self._confidence_max
        ):
            return Prediction(PredictionKind.SMB, distance=entry.distance,
                              source_table=table, meta=meta)
        if ss_prediction.predicts_dependence:
            return Prediction(
                PredictionKind.MDP,
                store_seq=ss_prediction.store_seq,
                meta=meta,
            )
        return Prediction(PredictionKind.NO_DEP, meta=meta)

    # -------------------------------------------------------------------- train

    def train(self, uop: MicroOp, prediction: Prediction,
              actual: ActualOutcome) -> None:
        # Train the Store Sets side with its own prediction (it must see
        # violations it would itself have caused).
        self.store_sets.train(uop, prediction.meta["ss"], actual)

        keys: Tuple[TableKey, ...] = prediction.meta["keys"]
        table, entry = self._lookup(keys)
        if actual.has_dependence:
            distance = min(actual.distance, self._distance_max)
            bypassable = actual.bypass in (BypassClass.DIRECT,
                                           BypassClass.NO_OFFSET)
            if entry is not None and entry.distance == distance:
                if bypassable == entry.bypassable:
                    entry.confidence = min(self._confidence_max,
                                           entry.confidence + 1)
                else:
                    entry.bypassable = bypassable
                    entry.confidence = 0
            else:
                if entry is not None:
                    entry.confidence = 0
                self._allocate(keys, table, distance, bypassable)
        elif entry is not None:
            # Dependence did not recur: restart confidence building.
            entry.confidence = 0

    def _allocate(self, keys: Tuple[TableKey, ...], source: Optional[int],
                  distance: int, bypassable: bool) -> None:
        start = 0 if source is None else min(source + 1, len(self.bank) - 1)
        for t in range(start, len(self.bank)):
            key = keys[t]
            ways = self.bank[t].ways_at(key.index)
            for w, entry in enumerate(ways):
                if entry is None or entry.confidence == 0:
                    self.bank[t].write(key.index, w, IDistEntry(
                        tag=key.tag, distance=distance, confidence=1,
                        bypassable=bypassable,
                    ))
                    return
            for entry in ways:
                if entry is not None:
                    entry.confidence = max(0, entry.confidence - 1)
            break  # age the first candidate set only, then give up

    # ------------------------------------------------------------------- events

    def on_branch(self, pc: int, taken: bool) -> None:
        self.bank.on_branch(pc, taken)
        self.store_sets.on_branch(pc, taken)

    def on_indirect(self, pc: int, target: int) -> None:
        self.bank.on_indirect(pc, target)
        self.store_sets.on_indirect(pc, target)

    def on_store(self, uop: MicroOp) -> Optional[int]:
        return self.store_sets.on_store(uop)

    # --------------------------------------------------------------------- misc

    @property
    def storage_bits(self) -> int:
        entry_bits = (self.tag_bits + self.DISTANCE_BITS
                      + self.CONFIDENCE_BITS + 1)
        idist = entry_bits * sum(t.num_entries for t in self.bank.tables)
        return idist + self.store_sets.storage_bits

    @property
    def supports_smb(self) -> bool:
        return True

    def reset(self) -> None:
        self.bank.clear()
        self.store_sets.reset()
