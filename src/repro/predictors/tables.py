"""Generic set-associative tagged tables for TAGE-like MDP predictors.

MASCOT and PHAST share the same storage organisation (Sec. IV-B / Table II):
an array of tables with increasing global-history lengths, each 4-way
set-associative, indexed and tagged by folds of the load PC, the global
branch/path history.  This module provides that machinery once; the
predictors differ only in entry contents and allocation/update policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generic, List, Optional, Sequence, Tuple, TypeVar

from ..common.bitops import mask
from ..common.hashing import table_index, table_tag
from ..common.history import GlobalHistory, PathHistory

__all__ = ["TableKey", "TaggedTable", "TableBank"]


@dataclass(frozen=True)
class TableKey:
    """Predict-time (set index, tag) pair for one table.

    Computed under the history in effect at prediction time and carried in
    the prediction's metadata so commit-time training addresses the same
    entries hardware would (the instruction payload carries the same bits).
    """

    index: int
    tag: int


E = TypeVar("E")


class TaggedTable(Generic[E]):
    """One history length's worth of storage: sets × ways of entries.

    The table does not interpret entries; predictors supply an entry factory
    and decide validity/replacement.  ``None`` marks an empty way.
    """

    def __init__(
        self,
        table_number: int,
        history_length: int,
        num_entries: int,
        ways: int,
        tag_bits: int,
        ghist: GlobalHistory,
        path: Optional[PathHistory] = None,
    ):
        if num_entries <= 0 or ways <= 0:
            raise ValueError("table geometry must be positive")
        if num_entries % ways:
            raise ValueError(
                f"table {table_number}: {num_entries} entries not divisible "
                f"by {ways} ways"
            )
        self.table_number = table_number
        self.history_length = history_length
        self.num_entries = num_entries
        self.ways = ways
        self.tag_bits = tag_bits
        self.num_sets = num_entries // ways
        # A single-set table has index width 0 (every lookup hits set 0).
        self.index_bits = (self.num_sets - 1).bit_length()
        if (1 << self.index_bits) != self.num_sets:
            raise ValueError(
                f"table {table_number}: {self.num_sets} sets is not a power of two"
            )
        self._path = path
        # History folds; length-0 tables have no history contribution and a
        # single-set table (index width 0) needs no index fold.
        if history_length > 0:
            self._index_fold = (
                ghist.attach_fold(history_length, self.index_bits)
                if self.index_bits > 0 else None
            )
            self._tag_fold = ghist.attach_fold(history_length, tag_bits)
            self._tag_fold2 = ghist.attach_fold(
                history_length, max(tag_bits - 1, 1)
            )
        else:
            self._index_fold = None
            self._tag_fold = None
            self._tag_fold2 = None
        self._sets: List[List[Optional[E]]] = [
            [None] * ways for _ in range(self.num_sets)
        ]

    # -- key computation -------------------------------------------------------

    def key(self, pc: int) -> TableKey:
        """Compute this table's (index, tag) for a PC under current history."""
        folded_index = self._index_fold.value if self._index_fold else 0
        folded_tag = self._tag_fold.value if self._tag_fold else 0
        folded_tag2 = self._tag_fold2.value if self._tag_fold2 else 0
        path_value = 0
        if self._path is not None and self.history_length > 0:
            path_value = self._path.value & mask(
                min(self.history_length, self._path.width)
            )
        index = table_index(
            pc, self.index_bits, folded_index,
            path_history=path_value, table_number=self.table_number,
        )
        tag = table_tag(pc, self.tag_bits, folded_tag, folded_tag2)
        return TableKey(index, tag)

    # -- storage access ----------------------------------------------------------

    def ways_at(self, index: int) -> List[Optional[E]]:
        """The (mutable) list of ways of one set."""
        return self._sets[index]

    def write(self, index: int, way: int, entry: Optional[E]) -> None:
        self._sets[index][way] = entry

    def entries(self):
        """Iterate ``(index, way, entry)`` over occupied slots."""
        for index, ways in enumerate(self._sets):
            for way, entry in enumerate(ways):
                if entry is not None:
                    yield index, way, entry

    def occupancy(self) -> int:
        return sum(1 for _ in self.entries())

    def clear(self) -> None:
        self._sets = [[None] * self.ways for _ in range(self.num_sets)]


class TableBank:
    """The full array of tagged tables plus the shared history registers.

    ``history_lengths`` must be non-decreasing with table number, with table
    0 traditionally using zero history (indexed by PC alone).
    """

    def __init__(
        self,
        history_lengths: Sequence[int],
        table_entries: Sequence[int],
        tag_bits: Sequence[int],
        ways: int = 4,
        path_bits: int = 16,
    ):
        if not history_lengths:
            raise ValueError("need at least one table")
        if not (len(history_lengths) == len(table_entries) == len(tag_bits)):
            raise ValueError("per-table parameter lists must align")
        if list(history_lengths) != sorted(history_lengths):
            raise ValueError("history lengths must be non-decreasing")
        self.history_lengths = tuple(history_lengths)
        self.ghist = GlobalHistory(max_bits=max(max(history_lengths), 1) + 8)
        self.path = PathHistory(width=path_bits)
        self.tables: List[TaggedTable] = [
            TaggedTable(
                table_number=t,
                history_length=history_lengths[t],
                num_entries=table_entries[t],
                ways=ways,
                tag_bits=tag_bits[t],
                ghist=self.ghist,
                path=self.path,
            )
            for t in range(len(history_lengths))
        ]

    def __len__(self) -> int:
        return len(self.tables)

    def __getitem__(self, table: int) -> TaggedTable:
        return self.tables[table]

    def keys(self, pc: int) -> Tuple[TableKey, ...]:
        """Predict-time keys for all tables (stored in prediction meta)."""
        return tuple(table.key(pc) for table in self.tables)

    # -- history updates -----------------------------------------------------

    def on_branch(self, pc: int, taken: bool) -> None:
        self.ghist.push_conditional(taken)
        self.path.push(pc)

    def on_indirect(self, pc: int, target: int) -> None:
        self.ghist.push_indirect(target)
        self.path.push(pc)

    def clear(self) -> None:
        for table in self.tables:
            table.clear()
        self.ghist.reset()
        self.path.reset()
