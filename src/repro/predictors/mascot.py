"""MASCOT: Memory-dependence And Short-Circuit Optimising TAGE (Sec. IV).

The paper's primary contribution.  A TAGE-like array of 4-way tagged tables
with increasing global-history lengths, where each entry predicts either

* a **dependence** on the store at a given store-queue distance (the 7-bit
  distance field, 1–127), optionally safe to **bypass** (SMB) when both the
  3-bit usefulness counter and the 2-bit bypass counter are saturated; or
* a **non-dependence** (distance field = 0), MASCOT's key innovation: when a
  false dependence is discovered at commit, a non-dependence entry is
  allocated in the next longer-history table so the surrounding branch
  context — already in the history by then — disambiguates the next
  occurrence (Fig. 3).

Update rules (Sec. IV-B):
  correct MDP prediction → usefulness++;
  correct bypass → bypass++;
  incorrect memory-dependence prediction → usefulness--;
  incorrect bypass prediction → bypass := 0.

Allocation rules (Sec. IV-C): dependence entries start with usefulness 6,
non-dependence entries with usefulness 2; allocation targets the table after
the mispredicting one and walks upward ("try-again") when every way of the
target set is protected (usefulness > 0); a failed first-target allocation
decrements all four ways of that set.  Only entries with usefulness 0 may be
evicted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..trace.uop import OFFSET_BYPASSABLE, SAME_ADDRESS_BYPASSABLE, BypassClass, MicroOp
from .base import ActualOutcome, MDPredictor, Prediction, PredictionKind
from .configs import MASCOT_DEFAULT, MascotConfig
from .tables import TableBank, TableKey

__all__ = ["Mascot", "MascotEntry"]


@dataclass
class MascotEntry:
    """One MASCOT entry (Fig. 6): tag, distance, usefulness, bypass.

    ``distance == 0`` encodes a non-dependence.  Counters are stored as
    plain ints (bounds enforced by the owning predictor's config) — entries
    are created and updated millions of times per run, so this is the one
    place where we trade the :class:`SaturatingCounter` convenience for
    speed; the bounds logic lives in :meth:`Mascot._bump`.
    """

    tag: int
    distance: int
    usefulness: int
    bypass: int

    # Optional F1 bookkeeping (Sec. IV-F tuning); see Mascot(track_f1=True).
    tp: int = 0
    fp: int = 0
    fn: int = 0

    @property
    def is_nondependence(self) -> bool:
        return self.distance == 0


class Mascot(MDPredictor):
    """The MASCOT predictor (default configuration: Sec. IV-B, 14 KiB)."""

    def __init__(self, config: MascotConfig = MASCOT_DEFAULT,
                 track_f1: bool = False):
        self.config = config
        self.name = config.name
        self.bank = TableBank(
            history_lengths=config.history_lengths,
            table_entries=config.table_entries,
            tag_bits=config.tag_bits,
            ways=config.ways,
            path_bits=config.path_bits,
        )
        self.track_f1 = track_f1
        self._useful_max = (1 << config.usefulness_bits) - 1
        self._bypass_max = (1 << config.bypass_bits) - 1
        self._distance_max = (1 << config.distance_bits) - 1
        self._loads_seen = 0
        # Fig. 13 statistics: predictions served per table (index == table
        # number; the extra last slot counts base-predictor defaults).
        self.predictions_per_table = [0] * (config.num_tables + 1)
        # Aggregate event counters (useful in tests and reports).
        self.allocations_dep = 0
        self.allocations_nondep = 0
        self.allocation_failures = 0

    # ------------------------------------------------------------------ utils

    def _bump(self, value: int, up: bool, maximum: int) -> int:
        if up:
            return min(maximum, value + 1)
        return max(0, value - 1)

    def _supported_bypass(self, bypass: BypassClass) -> bool:
        """Whether the microarchitecture could bypass this dependence.

        MASCOT's default hardware assumption (Sec. IV-E) is same-address
        bypassing: DIRECT and NO_OFFSET.  The ``offset_bypass`` extension
        adds a shift field enabling OFFSET-class bypassing too.
        """
        if bypass in (BypassClass.DIRECT, BypassClass.NO_OFFSET):
            return True
        return self.config.offset_bypass and bypass is BypassClass.OFFSET

    def _lookup(self, keys: Tuple[TableKey, ...]
                ) -> Tuple[Optional[int], Optional[int], Optional[MascotEntry]]:
        """Longest-history tag match: (table, way, entry) or Nones."""
        for t in range(len(self.bank) - 1, -1, -1):
            key = keys[t]
            ways = self.bank[t].ways_at(key.index)
            for w, entry in enumerate(ways):
                if entry is not None and entry.tag == key.tag:
                    return t, w, entry
        return None, None, None

    # ---------------------------------------------------------------- predict

    def predict(self, uop: MicroOp) -> Prediction:
        keys = self.bank.keys(uop.pc)
        table, way, entry = self._lookup(keys)
        meta = {"keys": keys, "way": way}
        sink = self.telemetry

        if entry is None:
            # Base prediction: no dependence (Sec. IV-B).
            self.predictions_per_table[len(self.bank)] += 1
            if sink is not None:
                sink.lookup(len(self.bank))
            return Prediction(PredictionKind.NO_DEP, meta=meta)

        self.predictions_per_table[table] += 1
        if sink is not None:
            sink.lookup(table)
        if entry.is_nondependence:
            return Prediction(
                PredictionKind.NO_DEP, source_table=table, meta=meta
            )

        # "Whenever the distance field is not zero, a memory dependence
        # prediction is made regardless of the value of the usefulness
        # field, whereas SMB is only predicted if both the usefulness and
        # bypassing counters are saturated."
        kind = PredictionKind.MDP
        if (
            self.config.smb_enabled
            and entry.usefulness == self._useful_max
            and entry.bypass == self._bypass_max
        ):
            kind = PredictionKind.SMB
        return Prediction(
            kind, distance=entry.distance, source_table=table, meta=meta
        )

    # ------------------------------------------------------------------ train

    def train(self, uop: MicroOp, prediction: Prediction,
              actual: ActualOutcome) -> None:
        keys: Tuple[TableKey, ...] = prediction.meta["keys"]
        source = prediction.source_table
        entry = self._reacquire(keys, source)
        sink = self.telemetry

        predicted_dep = prediction.predicts_dependence
        actual_dep = actual.has_dependence
        actual_distance = min(actual.distance, self._distance_max)

        if not predicted_dep and not actual_dep:
            # Correct non-dependence.  Strengthen an explicit non-dependence
            # entry; the base predictor has no state to reinforce.
            if entry is not None and entry.is_nondependence:
                entry.usefulness = self._bump(entry.usefulness, True,
                                              self._useful_max)
                if sink is not None:
                    sink.confidence(source, "up")
                if self.track_f1:
                    entry.tp += 1  # for ND entries, "positive" = non-dep
        elif not predicted_dep and actual_dep:
            # Missed dependence (false negative; MDP squash).  Allocate the
            # correct dependence with more context (base mispredict → N0).
            if entry is not None:
                entry.usefulness = self._bump(entry.usefulness, False,
                                              self._useful_max)
                if sink is not None:
                    sink.confidence(source, "down")
                if self.track_f1:
                    entry.fn += 1
            self._allocate(
                keys,
                start=0 if source is None else source + 1,
                distance=actual_distance,
                bypassable=self._supported_bypass(actual.bypass),
            )
        elif predicted_dep and not actual_dep:
            # False dependence (false positive).  For MDP this only cost
            # issue delay; for SMB the pipeline squashed.  Either way, the
            # context was inadequate: decay and allocate a NON-DEPENDENCE
            # entry in the next table — the core MASCOT mechanism.
            if entry is not None:
                entry.usefulness = self._bump(entry.usefulness, False,
                                              self._useful_max)
                if prediction.kind is PredictionKind.SMB:
                    entry.bypass = 0
                if sink is not None:
                    sink.confidence(source, "down")
                    if prediction.kind is PredictionKind.SMB:
                        sink.confidence(source, "bypass_reset")
                if self.track_f1:
                    entry.fp += 1
            if self.config.allocate_nondependencies:
                self._allocate(
                    keys,
                    start=0 if source is None else source + 1,
                    distance=0,
                    bypassable=False,
                )
        else:
            # Both predicted and actual dependence.
            if prediction.distance == actual_distance:
                if entry is not None:
                    entry.usefulness = self._bump(entry.usefulness, True,
                                                  self._useful_max)
                    if sink is not None:
                        sink.confidence(source, "up")
                    if actual.bypass.is_bypassable and self._supported_bypass(
                        actual.bypass
                    ):
                        entry.bypass = self._bump(entry.bypass, True,
                                                  self._bypass_max)
                        if sink is not None:
                            sink.confidence(source, "bypass_up")
                    else:
                        # An SMB prediction here was wrong (partial overlap
                        # or unsupported geometry): reset; and even without
                        # an SMB prediction, a non-bypassable instance
                        # restarts confidence building.
                        entry.bypass = 0
                        if sink is not None:
                            sink.confidence(source, "bypass_reset")
                    if self.track_f1:
                        entry.tp += 1
            else:
                # Conflict with a *different* store: squash; learn the
                # correct distance with more context.
                if entry is not None:
                    entry.usefulness = self._bump(entry.usefulness, False,
                                                  self._useful_max)
                    if prediction.kind is PredictionKind.SMB:
                        entry.bypass = 0
                    if sink is not None:
                        sink.confidence(source, "down")
                        if prediction.kind is PredictionKind.SMB:
                            sink.confidence(source, "bypass_reset")
                    if self.track_f1:
                        entry.fp += 1
                self._allocate(
                    keys,
                    start=0 if source is None else source + 1,
                    distance=actual_distance,
                    bypassable=self._supported_bypass(actual.bypass),
                )

        self._loads_seen += 1
        if (
            self.config.decay_period
            and self._loads_seen % self.config.decay_period == 0
        ):
            self._decay_all()

    # ------------------------------------------------------------- allocation

    def _reacquire(self, keys: Tuple[TableKey, ...], source: Optional[int]
                   ) -> Optional[MascotEntry]:
        """Re-find the predicting entry at commit time.

        Hardware re-indexes with the keys carried in the instruction; if the
        entry was replaced between prediction and commit the tag no longer
        matches and no update is applied to it.
        """
        if source is None:
            return None
        key = keys[source]
        for entry in self.bank[source].ways_at(key.index):
            if entry is not None and entry.tag == key.tag:
                return entry
        return None

    def _allocate(self, keys: Tuple[TableKey, ...], start: int,
                  distance: int, bypassable: bool) -> Optional[int]:
        """Try-again allocation (Sec. IV-C).

        Walks tables ``start, start+1, ...`` looking for a way with
        usefulness 0 (empty ways qualify).  If the *first* target set has no
        victim, all of its ways are decremented — "regardless of whether an
        allocation was made to a bigger table or not" — keeping stale
        entries short-lived.  Returns the table allocated into, or None.
        """
        start = min(start, len(self.bank) - 1)
        is_nondep = distance == 0
        allocated_table: Optional[int] = None
        sink = self.telemetry

        for t in range(start, len(self.bank)):
            key = keys[t]
            ways = self.bank[t].ways_at(key.index)
            victim = None
            for w, entry in enumerate(ways):
                if entry is None:
                    victim = w
                    break
                if entry.usefulness == 0:
                    victim = w
                    break
            if victim is not None:
                if sink is not None:
                    if ways[victim] is not None:
                        sink.eviction(t)
                    sink.allocation(t, distance)
                if is_nondep:
                    usefulness = self.config.alloc_usefulness_nondep
                    bypass = 0
                    self.allocations_nondep += 1
                else:
                    usefulness = self.config.alloc_usefulness_dep
                    # "The bypassing counter is initially set to 1 when a new
                    # conflict is allocated, provided it is a potential
                    # bypassing scenario; otherwise... 0." (Sec. IV-E)
                    bypass = 1 if bypassable else 0
                    self.allocations_dep += 1
                self.bank[t].write(
                    key.index, victim,
                    MascotEntry(tag=key.tag, distance=distance,
                                usefulness=usefulness, bypass=bypass),
                )
                allocated_table = t
                break
            if t == start:
                # First-target failure: age the whole set.
                self.allocation_failures += 1
                if sink is not None:
                    sink.event("allocation_failure")
                for entry in ways:
                    if entry is not None:
                        entry.usefulness = max(0, entry.usefulness - 1)
        return allocated_table

    def _decay_all(self) -> None:
        """Optional periodic usefulness decay (disabled by default)."""
        for table in self.bank.tables:
            for _, _, entry in table.entries():
                entry.usefulness = max(0, entry.usefulness - 1)

    # ----------------------------------------------------------------- events

    def on_branch(self, pc: int, taken: bool) -> None:
        self.bank.on_branch(pc, taken)

    def on_indirect(self, pc: int, target: int) -> None:
        self.bank.on_indirect(pc, target)

    # -------------------------------------------------------------------- misc

    @property
    def storage_bits(self) -> int:
        return self.config.storage_bits

    @property
    def supports_smb(self) -> bool:
        return self.config.smb_enabled

    @property
    def bypassable_classes(self) -> frozenset:
        if self.config.offset_bypass:
            return OFFSET_BYPASSABLE
        return SAME_ADDRESS_BYPASSABLE

    def reset(self) -> None:
        self.bank.clear()
        self._loads_seen = 0
        self.predictions_per_table = [0] * (self.config.num_tables + 1)
        self.allocations_dep = 0
        self.allocations_nondep = 0
        self.allocation_failures = 0

    def reset_f1_scores(self) -> None:
        """Zero all per-entry F1 counters (start of a new tuning period)."""
        for table in self.bank.tables:
            for _, _, entry in table.entries():
                entry.tp = entry.fp = entry.fn = 0

    def __repr__(self) -> str:
        return (
            f"Mascot(name={self.name!r}, tables={self.config.num_tables}, "
            f"size={self.storage_kib:.1f}KiB)"
        )
