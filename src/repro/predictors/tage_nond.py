"""The Sec. VI-B ablation: a TAGE-like MDP/SMB predictor *without*
non-dependence allocation.

Structurally identical to MASCOT, but "on a false dependency, it will simply
decrement the confidence of the predicting entry, similar to previous MDP
and SMB implementations using TAGE" (Fig. 11).  The paper shows this variant
accumulates more than 12× as many false dependencies, because un-learnable
false dependencies can only die by slow counter decay — and the decayed
entries then lose their SMB confidence too.

Implemented as a configuration of :class:`~repro.predictors.mascot.Mascot`
(``allocate_nondependencies=False``) so the comparison isolates exactly the
allocation-policy difference.
"""

from __future__ import annotations

from .configs import MASCOT_DEFAULT, MascotConfig
from .mascot import Mascot

__all__ = ["make_tage_no_nd", "TAGE_NO_ND_CONFIG"]

#: MASCOT's default geometry with non-dependence allocation disabled.
TAGE_NO_ND_CONFIG: MascotConfig = MASCOT_DEFAULT.with_(
    name="tage-no-nd", allocate_nondependencies=False
)


def make_tage_no_nd(smb_enabled: bool = True) -> Mascot:
    """Build the no-non-dependence ablation predictor.

    ``smb_enabled=False`` gives the MDP-only variant used in the left half
    of Fig. 11.
    """
    config = TAGE_NO_ND_CONFIG
    if not smb_enabled:
        config = config.with_(name="tage-no-nd-mdp", smb_enabled=False)
    return Mascot(config)
