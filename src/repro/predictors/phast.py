"""PHAST memory-dependence predictor (Kim & Ros, HPCA 2024).

The state-of-the-art MDP baseline the paper compares against.  PHAST
organises entries into TAGE-like tables of increasing context length and
looks all tables up in parallel, predicting from the longest-history match.
Its distinguishing feature is the allocation policy: instead of TAGE's
next-longer-table-after-the-mispredicting-one rule, PHAST chooses the
allocation table from the **number of branches between the conflicting
store and the load** — the context that must be captured for the pair to be
re-identified.  Entries carry a 7-bit distance, 16-bit tag, 4-bit
usefulness counter and 2-bit LRU field (Table II: 14.5 KB).

PHAST tracks only dependencies.  A false dependence merely decrements the
mispredicting entry's usefulness — exactly the behaviour MASCOT's
non-dependence allocation replaces.  PHAST performs MDP only (no SMB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..trace.uop import MicroOp
from .base import ActualOutcome, MDPredictor, Prediction, PredictionKind
from .tables import TableBank, TableKey

__all__ = ["Phast", "PhastEntry", "PHAST_HISTORY_LENGTHS"]

#: Table context lengths (branch counts).  The PHAST paper uses a geometric
#: series over 8 tables; we use the same series as MASCOT so the two
#: predictors differ only in policy, matching Table II's equal table count.
PHAST_HISTORY_LENGTHS: Tuple[int, ...] = (0, 2, 4, 8, 16, 32, 64, 128)


@dataclass
class PhastEntry:
    """One PHAST entry: tag, distance, 4-bit usefulness, 2-bit LRU."""

    tag: int
    distance: int
    usefulness: int
    lru: int = 0  # 0 = most recently used within the set


class Phast(MDPredictor):
    """The PHAST predictor with the Table II configuration (14.5 KB)."""

    name = "phast"

    USEFULNESS_BITS = 4
    LRU_BITS = 2
    DISTANCE_BITS = 7

    def __init__(
        self,
        history_lengths: Sequence[int] = PHAST_HISTORY_LENGTHS,
        entries_per_table: int = 512,
        tag_bits: int = 16,
        ways: int = 4,
        alloc_usefulness: int = 8,
    ):
        self.history_lengths = tuple(history_lengths)
        self.bank = TableBank(
            history_lengths=self.history_lengths,
            table_entries=(entries_per_table,) * len(self.history_lengths),
            tag_bits=(tag_bits,) * len(self.history_lengths),
            ways=ways,
        )
        self.tag_bits = tag_bits
        self.ways = ways
        self._useful_max = (1 << self.USEFULNESS_BITS) - 1
        self._lru_max = (1 << self.LRU_BITS) - 1
        self._distance_max = (1 << self.DISTANCE_BITS) - 1
        self.alloc_usefulness = min(alloc_usefulness, self._useful_max)
        self.predictions_per_table = [0] * (len(self.history_lengths) + 1)

    # ------------------------------------------------------------------ predict

    def _lookup(self, keys: Tuple[TableKey, ...]
                ) -> Tuple[Optional[int], Optional[PhastEntry]]:
        for t in range(len(self.bank) - 1, -1, -1):
            key = keys[t]
            for entry in self.bank[t].ways_at(key.index):
                if entry is not None and entry.tag == key.tag:
                    return t, entry
        return None, None

    def predict(self, uop: MicroOp) -> Prediction:
        keys = self.bank.keys(uop.pc)
        table, entry = self._lookup(keys)
        meta = {"keys": keys}
        sink = self.telemetry
        # PHAST predicts a dependence on any tag hit; the usefulness counter
        # only protects entries from eviction.  This is what makes false
        # dependencies PHAST's dominant error class (Fig. 8): a conditional
        # non-dependence can only be unlearned by slowly draining the
        # counter, not by recording the non-dependence context.
        if entry is None:
            self.predictions_per_table[len(self.bank)] += 1
            if sink is not None:
                sink.lookup(len(self.bank))
            return Prediction(PredictionKind.NO_DEP, meta=meta)
        self.predictions_per_table[table] += 1
        if sink is not None:
            sink.lookup(table)
        self._touch_lru(table, keys[table], entry)
        return Prediction(
            PredictionKind.MDP, distance=entry.distance,
            source_table=table, meta=meta,
        )

    def _touch_lru(self, table: int, key: TableKey, used: PhastEntry) -> None:
        for entry in self.bank[table].ways_at(key.index):
            if entry is None:
                continue
            if entry is used:
                entry.lru = 0
            elif entry.lru < self._lru_max:
                entry.lru += 1

    # -------------------------------------------------------------------- train

    def train(self, uop: MicroOp, prediction: Prediction,
              actual: ActualOutcome) -> None:
        keys: Tuple[TableKey, ...] = prediction.meta["keys"]
        source = prediction.source_table
        entry = self._reacquire(keys, source)
        sink = self.telemetry
        actual_distance = min(actual.distance, self._distance_max)

        predicted_dep = prediction.predicts_dependence
        if predicted_dep and actual.has_dependence:
            if prediction.distance == actual_distance:
                if entry is not None:
                    entry.usefulness = min(self._useful_max,
                                           entry.usefulness + 1)
                    if sink is not None:
                        sink.confidence(source, "up")
            else:
                if entry is not None:
                    entry.usefulness = max(0, entry.usefulness - 1)
                    if sink is not None:
                        sink.confidence(source, "down")
                self._allocate(keys, actual)
        elif predicted_dep and not actual.has_dependence:
            # False dependence: PHAST only decays (no non-dependence entry).
            if entry is not None:
                entry.usefulness = max(0, entry.usefulness - 1)
                if sink is not None:
                    sink.confidence(source, "down")
        elif not predicted_dep and actual.has_dependence:
            # Missed dependence: learn the pair in the branch-distance table.
            self._allocate(keys, actual)
        # Correct non-dependence: nothing to reinforce.

    def _reacquire(self, keys: Tuple[TableKey, ...], source: Optional[int]
                   ) -> Optional[PhastEntry]:
        if source is None:
            return None
        key = keys[source]
        for entry in self.bank[source].ways_at(key.index):
            if entry is not None and entry.tag == key.tag:
                return entry
        return None

    def _allocation_table(self, branches_between: int) -> int:
        """PHAST's signature policy: pick the table whose context length
        just covers the branch count between the store and the load."""
        for t, length in enumerate(self.history_lengths):
            if length >= branches_between:
                return t
        return len(self.history_lengths) - 1

    def _allocate(self, keys: Tuple[TableKey, ...],
                  actual: ActualOutcome) -> None:
        table = self._allocation_table(actual.branches_between)
        key = keys[table]
        ways = self.bank[table].ways_at(key.index)
        distance = min(actual.distance, self._distance_max)
        sink = self.telemetry

        # Victim selection: empty way, else LRU among drained (usefulness 0)
        # entries; if every way is still useful, age the LRU entry instead
        # of allocating (PHAST protects its established context entries).
        victim: Optional[int] = None
        for w, entry in enumerate(ways):
            if entry is None:
                victim = w
                break
        if victim is None:
            drained = [
                (entry.lru, w) for w, entry in enumerate(ways)
                if entry is not None and entry.usefulness == 0
            ]
            if drained:
                victim = max(drained)[1]
        if victim is None:
            oldest = max(
                (entry.lru, w) for w, entry in enumerate(ways)
                if entry is not None
            )[1]
            ways[oldest].usefulness = max(0, ways[oldest].usefulness - 1)
            if sink is not None:
                sink.event("allocation_deferred")
                sink.confidence(table, "down")
            return
        if sink is not None:
            if ways[victim] is not None:
                sink.eviction(table)
            sink.allocation(table, distance)
        self.bank[table].write(
            key.index, victim,
            PhastEntry(tag=key.tag, distance=distance,
                       usefulness=self.alloc_usefulness),
        )

    # ------------------------------------------------------------------- events

    def on_branch(self, pc: int, taken: bool) -> None:
        self.bank.on_branch(pc, taken)

    def on_indirect(self, pc: int, target: int) -> None:
        self.bank.on_indirect(pc, target)

    # --------------------------------------------------------------------- misc

    @property
    def storage_bits(self) -> int:
        entry_bits = (
            self.tag_bits + self.USEFULNESS_BITS + self.DISTANCE_BITS
            + self.LRU_BITS
        )
        total_entries = sum(t.num_entries for t in self.bank.tables)
        return entry_bits * total_entries

    def reset(self) -> None:
        self.bank.clear()
        self.predictions_per_table = [0] * (len(self.history_lengths) + 1)
