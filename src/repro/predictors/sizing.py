"""Storage accounting for Table II.

Recomputes the per-predictor storage budgets the paper reports:

=============  =======================================  =========
Predictor      Organisation                             Size
=============  =======================================  =========
Store Sets     8K-entry SSIT + 4K-entry LFST            18.5 KB
NoSQ           2 tables x 2K entries (4-way)            19 KB
PHAST          8 tables x 512 entries (4-way)           14.5 KB
MASCOT         8 tables x 512 entries (4-way)           14 KB
MASCOT-OPT     resized tables, widened tags             11.75 KiB
  (tags -4)                                             10.1 KiB
=============  =======================================  =========

All sizes count table payloads only ("discarding logic", Sec. IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .configs import MASCOT_DEFAULT, MASCOT_OPT, MascotConfig, mascot_opt_reduced_tags

__all__ = [
    "PredictorSizing",
    "store_sets_sizing",
    "nosq_sizing",
    "phast_sizing",
    "mascot_sizing",
    "table2_rows",
]


@dataclass(frozen=True)
class PredictorSizing:
    """One predictor's storage breakdown."""

    name: str
    tables: str
    total_entries: int
    fields_per_entry: Dict[str, int]  # field name -> bits
    extra_bits: int = 0               # non-per-entry state

    @property
    def entry_bits(self) -> int:
        return sum(self.fields_per_entry.values())

    @property
    def total_bits(self) -> int:
        return self.total_entries * self.entry_bits + self.extra_bits

    @property
    def kib(self) -> float:
        return self.total_bits / 8 / 1024

    @property
    def kb(self) -> float:
        """Kilobytes as the paper's Table II reports them (1 KB = 1024 B)."""
        return self.kib


def store_sets_sizing(ssit_entries: int = 8192, lfst_entries: int = 4096
                      ) -> List[PredictorSizing]:
    """Store Sets: two structures, reported as separate rows like Table II."""
    return [
        PredictorSizing(
            name="store-sets/SSIT",
            tables="SSIT (direct mapped)",
            total_entries=ssit_entries,
            fields_per_entry={"valid": 1, "ssid": 12},
        ),
        PredictorSizing(
            name="store-sets/LFST",
            tables="LFST (direct mapped)",
            total_entries=lfst_entries,
            fields_per_entry={"valid": 1, "store_id": 10},
        ),
    ]


def nosq_sizing(entries_per_table: int = 2048) -> PredictorSizing:
    """NoSQ's two 4-way tables (Table II: 19 KB)."""
    return PredictorSizing(
        name="nosq",
        tables="2 (4 way)",
        total_entries=2 * entries_per_table,
        fields_per_entry={"tag": 22, "counter": 7, "distance": 7, "lru": 2},
    )


def phast_sizing(entries_per_table: int = 512, num_tables: int = 8
                 ) -> PredictorSizing:
    """PHAST's eight 4-way tables (Table II: 14.5 KB)."""
    return PredictorSizing(
        name="phast",
        tables=f"{num_tables} (4 way)",
        total_entries=num_tables * entries_per_table,
        fields_per_entry={"tag": 16, "counter": 4, "distance": 7, "lru": 2},
    )


def mascot_sizing(config: MascotConfig = MASCOT_DEFAULT) -> PredictorSizing:
    """MASCOT under any config; per-table tag widths are averaged for the
    Table II-style field display while the total uses exact per-table bits."""
    uniform_tags = len(set(config.tag_bits)) == 1
    display_tag = config.tag_bits[0] if uniform_tags else round(
        sum(e * t for e, t in zip(config.table_entries, config.tag_bits))
        / config.total_entries
    )
    fields = {
        "tag": display_tag,
        "counter": config.usefulness_bits,
        "distance": config.distance_bits,
        "bypass": config.bypass_bits,
    }
    exact_total = config.storage_bits
    approx_total = config.total_entries * sum(fields.values())
    return PredictorSizing(
        name=config.name,
        tables=f"{config.num_tables} ({config.ways} way)",
        total_entries=config.total_entries,
        fields_per_entry=fields,
        extra_bits=exact_total - approx_total,
    )


def table2_rows() -> List[PredictorSizing]:
    """All rows of Table II plus the Fig. 15 MASCOT-OPT variants."""
    rows: List[PredictorSizing] = []
    rows.extend(store_sets_sizing())
    rows.append(nosq_sizing())
    rows.append(phast_sizing())
    rows.append(mascot_sizing(MASCOT_DEFAULT))
    rows.append(mascot_sizing(MASCOT_OPT))
    rows.append(mascot_sizing(mascot_opt_reduced_tags(4)))
    return rows
