"""Interfaces shared by every memory-dependence / bypass predictor.

The harness drives predictors through a narrow protocol:

* :meth:`MDPredictor.predict` is called for every dynamic load, in program
  order, at "decode time" — before the load's dependence is known.
* :meth:`MDPredictor.train` is called for the same load at "commit time"
  with the ground-truth :class:`ActualOutcome`.
* :meth:`MDPredictor.on_branch` / :meth:`MDPredictor.on_indirect` feed the
  architectural branch stream (the predictors own their global history).
* :meth:`MDPredictor.on_store` announces dispatched stores (Store Sets and
  NoSQ track last-fetched-store state; TAGE-likes ignore it).

Predictions name the conflicting store by *store distance* (1 = youngest
older store, matching MASCOT's store-queue-offset encoding) and/or by the
resolved dynamic sequence number when the predictor tracks stores directly
(Store Sets).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..trace.uop import SAME_ADDRESS_BYPASSABLE, BypassClass, MicroOp

__all__ = ["PredictionKind", "Prediction", "ActualOutcome", "MDPredictor",
           "TelemetrySink"]


class TelemetrySink:
    """Observation protocol for predictor-internal events.

    Predictors report to an attached sink from their hot paths; every
    call site is guarded by ``if sink is not None``, so an unattached
    predictor (the default) pays a single attribute read per event at
    most.  The concrete counting sink lives in
    :mod:`repro.obs.telemetry`; this base class doubles as the no-op
    implementation so partial sinks can override only what they need.

    Table numbering follows each predictor's own convention; TAGE-likes
    use ``len(tables)`` for the base (no-match) slot, mirroring their
    ``predictions_per_table`` counters.
    """

    def lookup(self, table: int) -> None:
        """A prediction was served by ``table`` (provider hit)."""

    def allocation(self, table: int, distance: int) -> None:
        """An entry was written into ``table``; ``distance == 0`` marks a
        MASCOT-style non-dependence entry."""

    def eviction(self, table: int) -> None:
        """An allocation displaced a live entry in ``table``."""

    def confidence(self, table: int, event: str) -> None:
        """A confidence/usefulness counter moved (``up``/``down``/
        ``reset``/``bypass_up``/``bypass_reset``)."""

    def event(self, name: str) -> None:
        """A named predictor-specific event (e.g. ``allocation_failure``,
        ``cyclic_clear``, ``set_merge``)."""


class PredictionKind(enum.Enum):
    """The three-way prediction of Fig. 5 (left-hand side)."""

    NO_DEP = "no_dep"  # load may issue as soon as its address is known
    MDP = "mdp"        # wait for the named prior store, then issue
    SMB = "smb"        # obtain the value from the named prior store directly


@dataclass
class Prediction:
    """One prediction for one dynamic load.

    ``distance``/``store_seq`` identify the predicted store (either may be
    unset depending on the predictor family).  ``source_table`` is the table
    index a TAGE-like predictor matched in (None = base predictor) — used by
    allocation policies and the Fig. 13 usage statistics.  ``meta`` carries
    predictor-private state from predict-time to train-time (e.g. the
    per-table index/tag keys computed under the prediction-time history).
    """

    kind: PredictionKind
    distance: int = 0
    store_seq: Optional[int] = None
    source_table: Optional[int] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind is PredictionKind.NO_DEP:
            if self.distance != 0:
                raise ValueError("NO_DEP prediction with non-zero distance")
        elif self.distance <= 0 and self.store_seq is None:
            raise ValueError(f"{self.kind} prediction names no store")

    @property
    def predicts_dependence(self) -> bool:
        return self.kind is not PredictionKind.NO_DEP


@dataclass(frozen=True)
class ActualOutcome:
    """Ground truth for a committed load, as recovered from the LQ/SB.

    ``branches_between`` counts dynamic branches between the conflicting
    store and the load (PHAST's allocation heuristic keys on it); it is 0
    when there is no dependence.
    """

    distance: int
    store_seq: Optional[int]
    bypass: BypassClass
    branches_between: int = 0
    #: PC of the conflicting store (Store Sets assigns SSIT entries by it).
    store_pc: Optional[int] = None

    def __post_init__(self) -> None:
        has_dep = self.distance > 0
        if has_dep != self.bypass.is_dependence:
            raise ValueError("distance and bypass class disagree")
        if has_dep and self.store_seq is None:
            raise ValueError("dependence without a store sequence number")

    @classmethod
    def from_uop(cls, uop: MicroOp, branches_between: int = 0,
                 store_pc: Optional[int] = None) -> "ActualOutcome":
        """Build the outcome from an annotated trace load."""
        if not uop.is_load:
            raise ValueError(f"uop {uop.seq} is not a load")
        return cls(
            distance=uop.store_distance,
            store_seq=uop.dep_store_seq,
            bypass=uop.bypass,
            branches_between=branches_between if uop.has_dependence else 0,
            store_pc=store_pc if uop.has_dependence else None,
        )

    @property
    def has_dependence(self) -> bool:
        return self.distance > 0


class MDPredictor(abc.ABC):
    """Abstract memory-dependence (and optionally SMB) predictor."""

    #: Human-readable name used in figures and reports.
    name: str = "predictor"

    #: Attached observation sink, or None (the default: zero overhead
    #: beyond the guard reads).  Set via :meth:`attach_telemetry`.
    telemetry: Optional[TelemetrySink] = None

    #: Whether this predictor is an oracle that may read the trace's
    #: ground-truth annotations at predict time.  ``repro lint``'s
    #: oracle-leak rule keys on this marker: any ``predict()`` path of a
    #: class without it that reads ``uop.bypass`` / ``uop.store_distance``
    #: / ``uop.dep_store_seq`` / ``uop.has_dependence`` fails CI.
    is_oracle: bool = False

    @abc.abstractmethod
    def predict(self, uop: MicroOp) -> Prediction:
        """Predict the given dynamic load.

        Implementations must only read ``uop.pc`` (and ``uop.seq`` for
        bookkeeping); the ground-truth annotation fields are reserved for
        the oracle predictors (``is_oracle = True``), and the
        ``repro lint`` static checker enforces this machine-checkably.
        """

    @abc.abstractmethod
    def train(self, uop: MicroOp, prediction: Prediction,
              actual: ActualOutcome) -> None:
        """Commit-time update with the resolved dependence information."""

    # -- event hooks (default: ignore) ---------------------------------------

    def on_branch(self, pc: int, taken: bool) -> None:
        """Architectural conditional-branch outcome (history update)."""

    def on_indirect(self, pc: int, target: int) -> None:
        """Architectural indirect-branch target (history update)."""

    def on_store(self, uop: MicroOp) -> Optional[int]:
        """A store was dispatched (Store Sets / NoSQ bookkeeping).

        May return the sequence number of an older store this one must
        issue behind: Store Sets serialises all stores within a store set
        through the LFST (Chrysos & Emer), which is exactly the
        over-serialisation cost the paper attributes to it on large
        windows.  ``None`` (the default) imposes no ordering.
        """
        return None

    # -- batched engine --------------------------------------------------------

    def batch_session(self):
        """Fused replay session for the batched engine.

        Dispatches through :func:`repro.predictors.batch.make_session`,
        which is type-exact: only the stock zoo classes get their fast
        transcribed sessions; subclasses (which may override ``predict``
        or ``train``) fall back to the generic session that drives the
        real protocol.
        """
        from .batch import make_session
        return make_session(self)

    # -- observability ---------------------------------------------------------

    def attach_telemetry(self, sink: TelemetrySink) -> TelemetrySink:
        """Attach an observation sink; returns it for chaining.

        Attaching is the opt-in: without it every hook site reduces to a
        ``None`` check.  Pass ``None``-able sinks through
        :attr:`telemetry` directly only in tests.
        """
        self.telemetry = sink
        return sink

    # -- introspection ---------------------------------------------------------

    @property
    def storage_bits(self) -> int:
        """Total predictor state in bits (Table II accounting)."""
        return 0

    @property
    def storage_kib(self) -> float:
        return self.storage_bits / 8 / 1024

    @property
    def supports_smb(self) -> bool:
        """Whether this predictor ever emits SMB predictions."""
        return False

    @property
    def bypassable_classes(self) -> frozenset:
        """Overlap classes this predictor's bypass datapath can deliver.

        The harness verifies SMB predictions against *this* set, so a
        predictor designed for shift-capable hardware (NoSQ's partial-word
        bypassing, MASCOT's offset extension) is judged against its own
        datapath, not the default same-address one.
        """
        return SAME_ADDRESS_BYPASSABLE

    def reset(self) -> None:
        """Drop all learned state (optional; default is a no-op)."""
