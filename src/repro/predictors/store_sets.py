"""Store Sets memory-dependence predictor (Chrysos & Emer, ISCA 1998).

The classic MDP baseline (Fig. 9, Table II: 18.5 KB).  Two structures:

* **SSIT** (Store Set ID Table): 8K direct-mapped entries indexed by a PC
  hash, each holding a valid bit and a 12-bit store-set ID (SSID).  Both
  loads and stores index it.
* **LFST** (Last Fetched Store Table): 4K entries indexed by SSID, each
  holding a valid bit and the identity of the most recently fetched store
  in that set.

A load whose SSIT entry maps to a valid LFST entry is predicted dependent on
that specific store.  Store sets are created and merged on memory-order
violations using the classic assignment rules; false dependencies are only
shed by periodic whole-table invalidation (cyclic clearing).  The paper
notes Store Sets scales poorly to large windows because it lacks
context-sensitivity — visible here as one SSID per static load regardless of
branch history.
"""

from __future__ import annotations

from typing import List, Optional

from ..common.bitops import mask
from ..common.hashing import mix64
from ..trace.uop import MicroOp
from .base import ActualOutcome, MDPredictor, Prediction, PredictionKind

__all__ = ["StoreSets"]


class StoreSets(MDPredictor):
    """Store Sets with the Table II configuration."""

    name = "store-sets"

    def __init__(
        self,
        ssit_entries: int = 8192,
        lfst_entries: int = 4096,
        clear_interval: int = 500_000,
        instr_window: int = 512,
        footprint_scale: int = 192,
    ):
        """``footprint_scale`` emulates SPEC-scale SSIT pressure.

        The synthetic workloads have a few hundred static memory
        instructions, whereas SPEC CPU2017 binaries have tens of thousands
        of them contending for the 8K-entry SSIT — the aliasing that drives
        Store Sets' spurious set merging (and hence the paper's Fig. 9
        result) simply cannot arise at our static-code scale.  Dividing the
        *effective* index space by ``footprint_scale`` reproduces the same
        collision rate per static memory op; the hardware budget reported
        by :attr:`storage_bits` is unchanged (Table II).  The default of
        192 is calibrated so the suite-level Store Sets IPC deficit matches
        the paper's Fig. 9 (~6 % behind MDP-only MASCOT); set it to 1 to
        model the SSIT literally.
        """
        if ssit_entries <= 0 or lfst_entries <= 0:
            raise ValueError("table sizes must be positive")
        if footprint_scale <= 0:
            raise ValueError("footprint_scale must be positive")
        self.ssit_entries = ssit_entries
        self.lfst_entries = lfst_entries
        self.clear_interval = clear_interval
        self.instr_window = instr_window
        self.footprint_scale = footprint_scale
        self._effective_ssit = max(ssit_entries // footprint_scale, 1)
        self.ssid_bits = max((lfst_entries - 1).bit_length(), 1)

        # SSIT: None = invalid, else SSID.
        self._ssit: List[Optional[int]] = [None] * ssit_entries
        # LFST: None = invalid, else the seq of the last fetched store.
        self._lfst: List[Optional[int]] = [None] * lfst_entries
        self._next_ssid = 0
        self._accesses = 0
        self.violations_trained = 0

    # ------------------------------------------------------------------ helpers

    def _ssit_index(self, pc: int) -> int:
        return mix64(pc) % self._effective_ssit

    def _new_ssid(self) -> int:
        ssid = self._next_ssid
        self._next_ssid = (self._next_ssid + 1) % self.lfst_entries
        return ssid

    def _maybe_clear(self) -> None:
        """Cyclic clearing: the only mechanism shedding stale dependencies."""
        self._accesses += 1
        if self.clear_interval and self._accesses % self.clear_interval == 0:
            self._ssit = [None] * self.ssit_entries
            self._lfst = [None] * self.lfst_entries
            sink = self.telemetry
            if sink is not None:
                sink.event("cyclic_clear")

    # ------------------------------------------------------------------- events

    def on_store(self, uop: MicroOp) -> Optional[int]:
        """A store is dispatched: it becomes its set's last fetched store.

        Returns the previous last-fetched store of the set (if still in
        flight): Chrysos & Emer serialise all stores of a set through the
        LFST, so this store must issue behind it.
        """
        self._maybe_clear()
        ssid = self._ssit[self._ssit_index(uop.pc)]
        if ssid is None:
            return None
        previous = self._lfst[ssid]
        self._lfst[ssid] = uop.seq
        if previous is not None and uop.seq - previous <= self.instr_window:
            return previous
        return None

    # ------------------------------------------------------------------ predict

    def predict(self, uop: MicroOp) -> Prediction:
        self._maybe_clear()
        sink = self.telemetry
        ssid = self._ssit[self._ssit_index(uop.pc)]
        if ssid is None:
            if sink is not None:
                sink.lookup(1)
            return Prediction(PredictionKind.NO_DEP)
        store_seq = self._lfst[ssid]
        if store_seq is None or uop.seq - store_seq > self.instr_window:
            # The last fetched store has long since drained: no constraint.
            if sink is not None:
                sink.lookup(1)
            return Prediction(PredictionKind.NO_DEP)
        if sink is not None:
            sink.lookup(0)
        return Prediction(PredictionKind.MDP, store_seq=store_seq,
                          meta={"ssid": ssid})

    # -------------------------------------------------------------------- train

    def train(self, uop: MicroOp, prediction: Prediction,
              actual: ActualOutcome) -> None:
        """Train only on memory-order violations, as the hardware does.

        A violation occurs when the load was not correctly held behind its
        conflicting store: it was predicted independent, or predicted
        dependent on the wrong (older-than-actual) store.
        """
        if not actual.has_dependence:
            return  # false dependencies decay only via cyclic clearing
        if (
            prediction.predicts_dependence
            and prediction.store_seq is not None
            and prediction.store_seq >= actual.store_seq
        ):
            # The load waited for the true store (or a younger one that
            # orders it behind the true store): no violation, no training.
            return
        self.violations_trained += 1
        sink = self.telemetry
        if sink is not None:
            sink.event("violation_trained")
        self._assign(self._ssit_index(uop.pc), actual)

    def _assign(self, load_index: int, actual: ActualOutcome) -> None:
        # Fall back to a seq-derived pseudo-PC if the harness did not supply
        # the store PC (keeps the predictor usable on minimal traces).
        store_pc = actual.store_pc if actual.store_pc is not None else actual.store_seq
        store_index = self._ssit_index(store_pc)
        load_ssid = self._ssit[load_index]
        store_ssid = self._ssit[store_index]
        sink = self.telemetry

        if load_ssid is None and store_ssid is None:
            ssid = self._new_ssid()
            self._ssit[load_index] = ssid
            self._ssit[store_index] = ssid
            if sink is not None:
                sink.allocation(0, actual.distance)
        elif load_ssid is not None and store_ssid is None:
            self._ssit[store_index] = load_ssid
            if sink is not None:
                sink.allocation(0, actual.distance)
        elif load_ssid is None and store_ssid is not None:
            self._ssit[load_index] = store_ssid
            if sink is not None:
                sink.allocation(0, actual.distance)
        else:
            # Both assigned: converge on the smaller SSID (declawed merge).
            winner = min(load_ssid, store_ssid)
            self._ssit[load_index] = winner
            self._ssit[store_index] = winner
            if sink is not None:
                sink.event("set_merge")

    # --------------------------------------------------------------------- misc

    @property
    def storage_bits(self) -> int:
        # Table II: SSIT = valid + 12-bit SSID; LFST = valid + 10-bit store ID.
        ssit_bits = self.ssit_entries * (1 + self.ssid_bits)
        lfst_bits = self.lfst_entries * (1 + 10)
        return ssit_bits + lfst_bits

    def reset(self) -> None:
        self._ssit = [None] * self.ssit_entries
        self._lfst = [None] * self.lfst_entries
        self._next_ssid = 0
        self._accesses = 0
        self.violations_trained = 0
