"""NoSQ-style combined MDP+SMB predictor (Sha, Martin & Roth, MICRO 2006).

The SMB baseline of Figs. 7/8 (Table II: 19 KB).  Following Sec. V's
description of the evaluated variant:

* two 4-way tables of 2K entries each — a **path-dependent** table indexed
  GShare-style (PC XOR folded global history) and a **path-independent**
  table indexed by PC alone;
* entries hold a 22-bit tag, 7-bit confidence counter, 7-bit store distance
  and 2-bit LRU;
* **high-confidence** hits in the path-dependent table perform SMB;
  low-confidence path-dependent hits only mark the load to wait for the
  predicted store (MDP); path-independent predictions are never allowed to
  perform SMB; on a complete miss the load executes speculatively (NO_DEP).

Confidence builds by +1 on a correct distance and resets to 0 on a wrong
one, making SMB appropriately hard to earn; the predictor has no notion of
negative (non-dependence) context, which is why its false-dependence rate
in Fig. 8 dwarfs MASCOT's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..common.bitops import mask
from ..common.history import GlobalHistory
from ..trace.uop import OFFSET_BYPASSABLE, BypassClass, MicroOp
from .base import ActualOutcome, MDPredictor, Prediction, PredictionKind

__all__ = ["NoSQ", "NoSQEntry"]


@dataclass
class NoSQEntry:
    """One NoSQ table entry."""

    tag: int
    distance: int
    confidence: int
    lru: int = 0


class NoSQ(MDPredictor):
    """The NoSQ-derived MDP+SMB baseline."""

    name = "nosq"

    TAG_BITS = 22
    CONFIDENCE_BITS = 7
    DISTANCE_BITS = 7
    LRU_BITS = 2

    def __init__(
        self,
        entries_per_table: int = 2048,
        ways: int = 4,
        history_bits: int = 8,
        smb_confidence: int = 16,
    ):
        if entries_per_table % ways:
            raise ValueError("entries must divide into ways")
        self.entries_per_table = entries_per_table
        self.ways = ways
        self.num_sets = entries_per_table // ways
        self.index_bits = max((self.num_sets - 1).bit_length(), 1)
        if (1 << self.index_bits) != self.num_sets:
            raise ValueError("sets must be a power of two")
        self.history_bits = history_bits
        self.smb_confidence = smb_confidence
        self._confidence_max = (1 << self.CONFIDENCE_BITS) - 1
        self._distance_max = (1 << self.DISTANCE_BITS) - 1
        self._lru_max = (1 << self.LRU_BITS) - 1

        self._ghist = GlobalHistory(max_bits=max(history_bits, 1) + 8)
        self._hist_fold = self._ghist.attach_fold(history_bits, self.index_bits)
        self._tag_fold = self._ghist.attach_fold(history_bits, self.TAG_BITS)

        # Table 0: path-dependent; table 1: path-independent.
        self._tables: List[List[List[Optional[NoSQEntry]]]] = [
            [[None] * ways for _ in range(self.num_sets)] for _ in range(2)
        ]

    # ------------------------------------------------------------------ indexing

    def _keys(self, pc: int) -> Tuple[Tuple[int, int], Tuple[int, int]]:
        """((index, tag) for path-dependent, (index, tag) path-independent)."""
        pc_part = pc >> 1
        dep_index = (pc_part ^ self._hist_fold.value) & mask(self.index_bits)
        dep_tag = (pc_part ^ self._tag_fold.value) & mask(self.TAG_BITS)
        ind_index = pc_part & mask(self.index_bits)
        ind_tag = (pc_part >> self.index_bits) & mask(self.TAG_BITS)
        return (dep_index, dep_tag), (ind_index, ind_tag)

    def _find(self, table: int, index: int, tag: int) -> Optional[NoSQEntry]:
        for entry in self._tables[table][index]:
            if entry is not None and entry.tag == tag:
                return entry
        return None

    # ------------------------------------------------------------------- predict

    def predict(self, uop: MicroOp) -> Prediction:
        dep_key, ind_key = self._keys(uop.pc)
        meta = {"dep_key": dep_key, "ind_key": ind_key}
        sink = self.telemetry

        entry = self._find(0, *dep_key)
        if entry is not None:
            self._touch(0, dep_key[0], entry)
            if sink is not None:
                sink.lookup(0)
            if entry.confidence >= self.smb_confidence:
                return Prediction(PredictionKind.SMB, distance=entry.distance,
                                  source_table=0, meta=meta)
            return Prediction(PredictionKind.MDP, distance=entry.distance,
                              source_table=0, meta=meta)

        entry = self._find(1, *ind_key)
        if entry is not None:
            # Path-independent predictions never perform SMB (Sec. V).
            self._touch(1, ind_key[0], entry)
            if sink is not None:
                sink.lookup(1)
            return Prediction(PredictionKind.MDP, distance=entry.distance,
                              source_table=1, meta=meta)

        if sink is not None:
            sink.lookup(2)
        return Prediction(PredictionKind.NO_DEP, meta=meta)

    def _touch(self, table: int, index: int, used: NoSQEntry) -> None:
        for entry in self._tables[table][index]:
            if entry is None:
                continue
            if entry is used:
                entry.lru = 0
            elif entry.lru < self._lru_max:
                entry.lru += 1

    # --------------------------------------------------------------------- train

    def train(self, uop: MicroOp, prediction: Prediction,
              actual: ActualOutcome) -> None:
        dep_key = prediction.meta["dep_key"]
        ind_key = prediction.meta["ind_key"]
        dep_entry = self._find(0, *dep_key)
        ind_entry = self._find(1, *ind_key)
        sink = self.telemetry

        if actual.has_dependence:
            distance = min(actual.distance, self._distance_max)
            # NoSQ's datapath shifts/truncates, so OFFSET-class
            # dependencies are bypassable too (Sec. II-B.2: "even covering
            # cases such as partial-word bypassing").
            bypassable = actual.bypass in OFFSET_BYPASSABLE
            for table, key, entry in ((0, dep_key, dep_entry),
                                      (1, ind_key, ind_entry)):
                if entry is not None and entry.distance == distance:
                    # Bypass confidence only accumulates on instances the
                    # hardware could actually have bypassed.
                    if bypassable or table == 1:
                        entry.confidence = min(self._confidence_max,
                                               entry.confidence + 1)
                        if sink is not None:
                            sink.confidence(table, "up")
                    else:
                        entry.confidence = 0
                        if sink is not None:
                            sink.confidence(table, "bypass_reset")
                else:
                    self._install(table, key, distance)
        else:
            # False dependence: reset confidence (no non-dependence memory).
            for table, entry in ((0, dep_entry), (1, ind_entry)):
                if entry is not None:
                    entry.confidence = 0
                    if sink is not None:
                        sink.confidence(table, "reset")

    def _install(self, table: int, key: Tuple[int, int], distance: int) -> None:
        index, tag = key
        ways = self._tables[table][index]
        sink = self.telemetry
        # Retrain in place when the tag is already resident (wrong-distance
        # case) so a stale duplicate cannot shadow the update.
        for entry in ways:
            if entry is not None and entry.tag == tag:
                entry.distance = distance
                entry.confidence = 1
                if sink is not None:
                    sink.confidence(table, "reset")
                return
        victim: Optional[int] = None
        for w, entry in enumerate(ways):
            if entry is None:
                victim = w
                break
        if victim is None:
            victim = max(
                (entry.lru, w) for w, entry in enumerate(ways)
            )[1]
        if sink is not None:
            if ways[victim] is not None:
                sink.eviction(table)
            sink.allocation(table, distance)
        ways[victim] = NoSQEntry(tag=tag, distance=distance, confidence=1)

    # -------------------------------------------------------------------- events

    def on_branch(self, pc: int, taken: bool) -> None:
        self._ghist.push_conditional(taken)

    def on_indirect(self, pc: int, target: int) -> None:
        self._ghist.push_indirect(target)

    # ---------------------------------------------------------------------- misc

    @property
    def storage_bits(self) -> int:
        entry_bits = (self.TAG_BITS + self.CONFIDENCE_BITS
                      + self.DISTANCE_BITS + self.LRU_BITS)
        return 2 * self.entries_per_table * entry_bits

    @property
    def supports_smb(self) -> bool:
        return True

    @property
    def bypassable_classes(self) -> frozenset:
        return OFFSET_BYPASSABLE

    def reset(self) -> None:
        self._tables = [
            [[None] * self.ways for _ in range(self.num_sets)]
            for _ in range(2)
        ]
        self._ghist.reset()
