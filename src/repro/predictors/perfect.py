"""Oracle predictors: perfect MDP and perfect MDP+SMB.

Every IPC figure in the paper is normalised to a **perfect MDP** predictor
that never bypasses; Fig. 12 additionally uses a **perfect MDP+SMB**
predictor as the performance ceiling.  These oracles read the trace's
ground-truth annotations — the one place in the package allowed to do so.

Perfect MDP is "inherently conservative" (Sec. VI-A): it stalls a dependent
load until the conflicting store has resolved and then releases it, costing
at least one cycle relative to an aggressive (and lucky) speculation.  The
timing model applies that +1-cycle serialisation to ``conservative``
predictions, which reproduces the paper's observation that real predictors
occasionally beat the oracle (gcc4, gcc5, mcf, nab).
"""

from __future__ import annotations

from ..trace.uop import OFFSET_BYPASSABLE, SAME_ADDRESS_BYPASSABLE, BypassClass, MicroOp
from .base import ActualOutcome, MDPredictor, Prediction, PredictionKind

__all__ = ["PerfectMDP", "PerfectMDPSMB"]


class PerfectMDP(MDPredictor):
    """Oracle memory-dependence predictor; never predicts SMB."""

    name = "perfect-mdp"

    #: Grants this class (and subclasses) the right to read ground-truth
    #: trace annotations at predict time; checked by ``repro lint``.
    is_oracle = True

    #: Marks predictions as oracle-conservative for the timing model.
    conservative = True

    def predict(self, uop: MicroOp) -> Prediction:
        if uop.has_dependence:
            return Prediction(
                PredictionKind.MDP,
                distance=uop.store_distance,
                store_seq=uop.dep_store_seq,
                meta={"conservative": self.conservative},
            )
        return Prediction(PredictionKind.NO_DEP,
                          meta={"conservative": self.conservative})

    def train(self, uop: MicroOp, prediction: Prediction,
              actual: ActualOutcome) -> None:
        """Oracles do not learn."""


class PerfectMDPSMB(PerfectMDP):
    """Oracle MDP plus bypassing of every hardware-bypassable dependence.

    ``offset_bypass`` mirrors the MASCOT extension: when True the oracle
    also bypasses OFFSET-class dependencies (shift-capable hardware).
    """

    name = "perfect-mdp-smb"

    def __init__(self, offset_bypass: bool = False):
        self.offset_bypass = offset_bypass

    def _bypassable(self, bypass: BypassClass) -> bool:
        if bypass in (BypassClass.DIRECT, BypassClass.NO_OFFSET):
            return True
        return self.offset_bypass and bypass is BypassClass.OFFSET

    def predict(self, uop: MicroOp) -> Prediction:
        if uop.has_dependence and self._bypassable(uop.bypass):
            return Prediction(
                PredictionKind.SMB,
                distance=uop.store_distance,
                store_seq=uop.dep_store_seq,
                meta={"conservative": self.conservative},
            )
        return super().predict(uop)

    @property
    def supports_smb(self) -> bool:
        return True

    @property
    def bypassable_classes(self) -> frozenset:
        if self.offset_bypass:
            return OFFSET_BYPASSABLE
        return SAME_ADDRESS_BYPASSABLE
