"""MASCOT configurations: the default, MASCOT-OPT and tag-reduced variants.

Sec. IV-B gives the default: 8 tables with history lengths
[0, 2, 4, 8, 16, 32, 64, 128], 512 entries each, 4-way associative, 16-bit
tags, a 3-bit usefulness counter and a 2-bit bypass counter per entry
(28 bits/entry, 14 KiB total).

Sec. VI-D derives MASCOT-OPT from the F1 tuning study: table sizes
[1024, 512, 512, 512, 256, 256, 256, 128] with tag sizes
[15, 16, 16, 16, 17, 17, 17, 18] (widened tags keep the per-table collision
likelihood constant as sets shrink), a 16 % size reduction; reducing all
tags by a further 4 bits costs 0.13 % IPC and reaches 10.1 KiB.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

__all__ = [
    "MascotConfig",
    "MASCOT_DEFAULT",
    "MASCOT_OPT",
    "mascot_opt_reduced_tags",
]


@dataclass(frozen=True)
class MascotConfig:
    """Full parameterisation of a MASCOT-style predictor."""

    name: str = "mascot"
    history_lengths: Tuple[int, ...] = (0, 2, 4, 8, 16, 32, 64, 128)
    table_entries: Tuple[int, ...] = (512,) * 8
    tag_bits: Tuple[int, ...] = (16,) * 8
    ways: int = 4
    distance_bits: int = 7
    usefulness_bits: int = 3
    bypass_bits: int = 2
    path_bits: int = 16

    #: Initial usefulness for newly allocated dependence entries (Sec. IV-C).
    alloc_usefulness_dep: int = 6
    #: Initial usefulness for newly allocated non-dependence entries.
    alloc_usefulness_nondep: int = 2

    #: When False the bypass counter is ignored and only MDP predictions are
    #: produced (the "MDP-only version of MASCOT" of Fig. 9).
    smb_enabled: bool = True
    #: The key MASCOT innovation; False gives the Sec. VI-B ablation (a
    #: TAGE-like predictor that only decays confidence on false dependencies).
    allocate_nondependencies: bool = True
    #: Extension (Sec. IV-E: "easily extended... by incorporating a shifting
    #: field"): also predict SMB for OFFSET-class dependencies.
    offset_bypass: bool = False
    #: Optional periodic usefulness decay (paper: tried, no meaningful
    #: change); 0 disables, otherwise the period in committed loads.
    decay_period: int = 0

    def __post_init__(self) -> None:
        n = len(self.history_lengths)
        if not (len(self.table_entries) == len(self.tag_bits) == n):
            raise ValueError("per-table tuples must have equal length")
        if n == 0:
            raise ValueError("need at least one table")
        if list(self.history_lengths) != sorted(self.history_lengths):
            raise ValueError("history lengths must be non-decreasing")
        if any(e <= 0 or e % self.ways for e in self.table_entries):
            raise ValueError("table entries must be positive multiples of ways")
        if any(t <= 0 for t in self.tag_bits):
            raise ValueError("tag widths must be positive")
        max_useful = (1 << self.usefulness_bits) - 1
        if not (0 < self.alloc_usefulness_dep <= max_useful):
            raise ValueError("alloc_usefulness_dep out of counter range")
        if not (0 < self.alloc_usefulness_nondep <= max_useful):
            raise ValueError("alloc_usefulness_nondep out of counter range")

    @property
    def num_tables(self) -> int:
        return len(self.history_lengths)

    @property
    def total_entries(self) -> int:
        return sum(self.table_entries)

    @property
    def entry_bits(self) -> Tuple[int, ...]:
        """Per-table entry width: tag + distance + usefulness + bypass."""
        return tuple(
            t + self.distance_bits + self.usefulness_bits + self.bypass_bits
            for t in self.tag_bits
        )

    @property
    def storage_bits(self) -> int:
        return sum(
            entries * bits
            for entries, bits in zip(self.table_entries, self.entry_bits)
        )

    @property
    def storage_kib(self) -> float:
        return self.storage_bits / 8 / 1024

    def with_(self, **kwargs) -> "MascotConfig":
        """Derive a modified copy (dataclasses.replace wrapper)."""
        return replace(self, **kwargs)


#: The paper's default MASCOT (Sec. IV-B): 14 KiB.
# repro-lint: budget(14.0 KiB)
MASCOT_DEFAULT = MascotConfig()

#: MASCOT-OPT (Sec. VI-D): resized tables and compensating tag widths.
#: (The paper rounds its 11.8125 KiB down to "11.75 KB" in Table II.)
# repro-lint: budget(11.8125 KiB)
MASCOT_OPT = MascotConfig(
    name="mascot-opt",
    table_entries=(1024, 512, 512, 512, 256, 256, 256, 128),
    tag_bits=(15, 16, 16, 16, 17, 17, 17, 18),
)


def mascot_opt_reduced_tags(reduction: int) -> MascotConfig:
    """MASCOT-OPT with every tag shrunk by ``reduction`` bits (Fig. 15).

    The paper evaluates reductions of 2, 4 and 6 bits; 4 bits reaches
    10.1 KiB for an IPC loss of 0.13 %.
    """
    if reduction < 0:
        raise ValueError("tag reduction must be non-negative")
    tags = tuple(t - reduction for t in MASCOT_OPT.tag_bits)
    if any(t <= 0 for t in tags):
        raise ValueError(f"tag reduction {reduction} leaves a non-positive width")
    return MASCOT_OPT.with_(
        name=f"mascot-opt-tag{reduction}", tag_bits=tags
    )
