"""Memory-dependence / SMB predictors: MASCOT, baselines and oracles."""

from .base import ActualOutcome, MDPredictor, Prediction, PredictionKind
from .configs import (
    MASCOT_DEFAULT,
    MASCOT_OPT,
    MascotConfig,
    mascot_opt_reduced_tags,
)
from .mascot import Mascot, MascotEntry
from .nosq import NoSQ, NoSQEntry
from .perfect import PerfectMDP, PerfectMDPSMB
from .phast import PHAST_HISTORY_LENGTHS, Phast, PhastEntry
from .sizing import (
    PredictorSizing,
    mascot_sizing,
    nosq_sizing,
    phast_sizing,
    store_sets_sizing,
    table2_rows,
)
from .idist import IDIST_HISTORY_LENGTHS, IDistEntry, IDistStoreSets
from .store_sets import StoreSets
from .tage_mdp import TageMdp, TageMdpEntry
from .tables import TableBank, TableKey, TaggedTable
from .tage_nond import TAGE_NO_ND_CONFIG, make_tage_no_nd

__all__ = [
    "ActualOutcome",
    "MDPredictor",
    "Prediction",
    "PredictionKind",
    "MASCOT_DEFAULT",
    "MASCOT_OPT",
    "MascotConfig",
    "mascot_opt_reduced_tags",
    "Mascot",
    "MascotEntry",
    "NoSQ",
    "NoSQEntry",
    "PerfectMDP",
    "PerfectMDPSMB",
    "PHAST_HISTORY_LENGTHS",
    "Phast",
    "PhastEntry",
    "PredictorSizing",
    "mascot_sizing",
    "nosq_sizing",
    "phast_sizing",
    "store_sets_sizing",
    "table2_rows",
    "StoreSets",
    "IDIST_HISTORY_LENGTHS",
    "IDistEntry",
    "IDistStoreSets",
    "TageMdp",
    "TageMdpEntry",
    "TableBank",
    "TableKey",
    "TaggedTable",
    "TAGE_NO_ND_CONFIG",
    "make_tage_no_nd",
]
