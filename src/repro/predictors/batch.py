"""Slotted batch lookup sessions for the predictor zoo.

The batched engine (:mod:`repro.core.batched`) exploits a structural fact of
the scalar pipeline: the predictor-visible event stream (``on_branch`` /
``on_indirect`` / ``on_store`` / ``predict`` / ``train``) is purely
trace-order driven — nothing predictor-visible happens between the
``predict`` and ``train`` of the same load, and no timing result ever feeds
back into a predictor.  A *session* therefore replays that stream in one
pass with a fused :meth:`predict_train` per load.

Each fast session operates on its predictor's **real storage** (the same
entry objects, tables and counters the scalar path mutates) so that
post-run predictor state — telemetry counters, ``predictions_per_table``,
table contents, history registers — is bit-identical to a scalar run.  The
speed comes from three sources, none of which changes any value:

* :class:`~repro.common.foldvec.FoldVector` mirrors the global history with
  O(1) evicted-bit reads (synced back at :meth:`finish`);
* :class:`FastBank` caches the PC-static components of every table's
  index/tag hash, so the per-load work is a handful of XOR/mask ops;
* predictions and outcomes travel as plain ints instead of
  :class:`Prediction`/:class:`Outcome` objects.

Every session honours the attached :class:`TelemetrySink` with exactly the
scalar call pattern.  Sessions are selected via
``MDPredictor.batch_session()``; subclasses of a zoo predictor fall back to
:class:`GenericMDSession` (which drives the real ``predict``/``train``)
unless they opt in themselves.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..analysis.accuracy import OutcomeKind, classify
from ..common.bitops import fold_bits, mask
from ..common.foldplan import BranchStream, FoldPlan, path_series
from ..common.foldvec import FoldVector
from ..common.hashing import mix64
from ..trace.columns import BYPASS_BY_CODE
from ..trace.uop import BypassClass, MicroOp
from .base import ActualOutcome, MDPredictor, PredictionKind
from .mascot import Mascot, MascotEntry
from .nosq import NoSQ, NoSQEntry
from .phast import Phast, PhastEntry
from .store_sets import StoreSets
from .tables import TableBank

__all__ = [
    "KIND_NO_DEP", "KIND_MDP", "KIND_SMB", "PRED_KIND_BY_CODE",
    "OUTCOME_BY_CODE", "OUTCOME_CODES", "classify_fast",
    "FastBank", "GenericMDSession", "MascotSession", "PhastSession",
    "NoSQSession", "StoreSetsSession", "make_session",
]

#: Integer prediction-kind codes used on the session wire format.
KIND_NO_DEP = 0
KIND_MDP = 1
KIND_SMB = 2
PRED_KIND_BY_CODE = (PredictionKind.NO_DEP, PredictionKind.MDP,
                     PredictionKind.SMB)
_KIND_CODE = {PredictionKind.NO_DEP: 0, PredictionKind.MDP: 1,
              PredictionKind.SMB: 2}

#: Integer outcome-kind codes used on the session wire format (sessions
#: return codes, not enum members, so the Phase A loop can count outcomes
#: with list indexing instead of enum hashing).
OUTCOME_BY_CODE = tuple(OutcomeKind)
OUTCOME_CODES = {kind: code for code, kind in enumerate(OUTCOME_BY_CODE)}

_OC_MISSED_DEP = OUTCOME_CODES[OutcomeKind.MISSED_DEP]
_OC_CORRECT_NODEP = OUTCOME_CODES[OutcomeKind.CORRECT_NODEP]
_OC_FALSE_DEP_SMB = OUTCOME_CODES[OutcomeKind.FALSE_DEP_SMB]
_OC_FALSE_DEP_MDP = OUTCOME_CODES[OutcomeKind.FALSE_DEP_MDP]
_OC_CORRECT_MDP = OUTCOME_CODES[OutcomeKind.CORRECT_MDP]
_OC_WRONG_STORE_MDP = OUTCOME_CODES[OutcomeKind.WRONG_STORE_MDP]
_OC_WRONG_STORE_SMB = OUTCOME_CODES[OutcomeKind.WRONG_STORE_SMB]
_OC_CORRECT_SMB = OUTCOME_CODES[OutcomeKind.CORRECT_SMB]
_OC_SMB_NOT_BYP = OUTCOME_CODES[OutcomeKind.SMB_NOT_BYPASSABLE]

#: classify()'s fixed store-distance comparison cap.
_DISTANCE_CAP = 127


def classify_fast(kind_code: int, p_dist: int, p_seq: Optional[int],
                  a_dist: int, a_seq: Optional[int],
                  a_bypassable: bool) -> int:
    """Int-based transcription of :func:`repro.analysis.accuracy.classify`.

    ``a_bypassable`` is the precomputed ``actual.bypass in bypassable``
    membership; the return value is an :data:`OUTCOME_BY_CODE` index.
    """
    if kind_code == KIND_NO_DEP:
        if a_dist > 0:
            return _OC_MISSED_DEP
        return _OC_CORRECT_NODEP
    if a_dist <= 0:
        return (_OC_FALSE_DEP_SMB if kind_code == KIND_SMB
                else _OC_FALSE_DEP_MDP)
    if p_seq is not None and a_seq is not None:
        match = p_seq == a_seq
    else:
        match = p_dist == (a_dist if a_dist < _DISTANCE_CAP else _DISTANCE_CAP)
    if kind_code == KIND_MDP:
        return _OC_CORRECT_MDP if match else _OC_WRONG_STORE_MDP
    if not match:
        return _OC_WRONG_STORE_SMB
    if a_bypassable:
        return _OC_CORRECT_SMB
    return _OC_SMB_NOT_BYP


class FastBank:
    """Per-PC-cached key computation over a live :class:`TableBank`.

    ``TaggedTable.key`` recomputes the PC-shift hash, the path fold and the
    per-table constants on every lookup; all of those are static per PC (or
    per masked path value).  This wrapper caches the static parts and
    combines them with the :class:`FoldVector` history values, producing
    indices and tags bit-identical to ``TableBank.keys`` (property-tested).

    Table storage is untouched — sessions read and write the bank's own
    ``_sets`` so entries stay shared with the scalar path.
    """

    __slots__ = ("bank", "fv", "idx", "tags", "_nt", "_static", "_hl",
                 "_index_bits", "_imask", "_tmask", "_idx_slot", "_tag_slot",
                 "_tag2_slot", "_pmask", "_pc_cache", "_path_memo",
                 "_path_value", "_path_bpb_mask", "_path_bpb", "_path_wmask",
                 "rows_idx", "rows_tag", "_plan", "_path_final")

    def __init__(self, bank: TableBank) -> None:
        self.bank = bank
        self.fv = FoldVector(bank.ghist)
        nt = len(bank)
        self._nt = nt
        self.idx = [0] * nt
        self.tags = [0] * nt
        self._static = [False] * nt
        self._hl = [0] * nt
        self._index_bits = [0] * nt
        self._imask = [0] * nt
        self._tmask = [0] * nt
        self._idx_slot = [0] * nt
        self._tag_slot = [0] * nt
        self._tag2_slot = [0] * nt
        self._pmask = [0] * nt
        for t, table in enumerate(bank.tables):
            hl = table.history_length
            self._hl[t] = hl
            self._static[t] = hl == 0
            self._index_bits[t] = table.index_bits
            self._imask[t] = mask(table.index_bits)
            self._tmask[t] = mask(table.tag_bits)
            if hl > 0:
                if table._index_fold is not None:
                    self._idx_slot[t] = self.fv.slot(hl, table.index_bits)
                else:
                    self._idx_slot[t] = -1
                self._tag_slot[t] = self.fv.slot(hl, table.tag_bits)
                self._tag2_slot[t] = self.fv.slot(hl, max(table.tag_bits - 1, 1))
                self._pmask[t] = mask(min(hl, bank.path.width))
        self._pc_cache: Dict[int, Tuple[List[int], List[int]]] = {}
        self._path_memo: Dict[Tuple[int, int], int] = {}
        self._path_value = bank.path.value
        self._path_bpb = bank.path._bits_per_branch
        self._path_bpb_mask = mask(self._path_bpb)
        self._path_wmask = mask(bank.path.width)
        self.rows_idx: Optional[List[Tuple[int, ...]]] = None
        self.rows_tag: Optional[List[Tuple[int, ...]]] = None
        self._plan: Optional[FoldPlan] = None
        self._path_final = 0

    # -- whole-run key precomputation ------------------------------------------

    def prime(self, stream: BranchStream, load_pc: np.ndarray,
              cond_before: np.ndarray, ind_before: np.ndarray) -> bool:
        """Precompute every load's per-table index/tag keys, vectorised.

        ``load_pc`` / ``cond_before`` / ``ind_before`` describe the trace's
        loads in order (PC and the number of conditional / indirect branch
        events preceding each).  After priming, :attr:`rows_idx` /
        :attr:`rows_tag` hold one key tuple per load and the per-event
        history updates become no-ops.  Returns False (leaving the
        incremental path active) if the fold invariant check fails.
        """
        bits, _ = stream.mixed()
        try:
            plan = FoldPlan(self.fv, bits)
        except RuntimeError:
            return False
        self._plan = plan
        series = plan.series

        # Path history: closed-form series over all branch events, read at
        # each load's position, folded per table exactly like fold_bits.
        chunks = (stream.pc >> 1) & self._path_bpb_mask
        path = path_series(self._path_value, self.bank.path.width,
                           self._path_bpb, chunks)
        self._path_final = int(path[-1])
        path_at_load = path[cond_before + ind_before]
        k_push = cond_before + 5 * ind_before

        pcv = load_pc >> 1
        n_loads = int(load_pc.shape[0])
        zeros = None
        icols: List[List[int]] = []
        tcols: List[List[int]] = []
        for t, table in enumerate(self.bank.tables):
            ib = self._index_bits[t]
            tb = table.tag_bits
            imask = self._imask[t]
            tmask = self._tmask[t]
            if ib > 0:
                base_i = ((pcv ^ (pcv >> ib) ^ (pcv >> (2 * ib)))
                          ^ (table.table_number * 0x9E37))
            else:
                if zeros is None:
                    zeros = np.zeros(n_loads, dtype=np.int64)
                base_i = zeros
            base_t = (pcv ^ (pcv >> tb)) if tb > 0 else (
                zeros if zeros is not None else np.zeros(n_loads,
                                                         dtype=np.int64))
            if self._static[t]:
                icols.append((base_i & imask).tolist())
                tcols.append((base_t & tmask).tolist())
                continue
            if ib > 0:
                p = path_at_load & self._pmask[t]
                pf = p & imask
                path_width = min(self._hl[t], self.bank.path.width)
                for c in range(1, -(-path_width // ib)):
                    pf = pf ^ ((p >> (c * ib)) & imask)
                vi = series[self._idx_slot[t]][k_push]
                ii = (base_i ^ vi ^ pf) & imask
            else:
                if zeros is None:
                    zeros = np.zeros(n_loads, dtype=np.int64)
                ii = zeros
            vt = series[self._tag_slot[t]][k_push]
            vt2 = series[self._tag2_slot[t]][k_push]
            tt = (base_t ^ vt ^ (vt2 << 1)) & tmask
            icols.append(ii.tolist())
            tcols.append(tt.tolist())
        self.rows_idx = list(zip(*icols))
        self.rows_tag = list(zip(*tcols))
        return True

    def _build_pc(self, pc: int) -> Tuple[List[int], List[int]]:
        pcv = pc >> 1
        nt = self._nt
        sidx = [0] * nt
        stag = [0] * nt
        for t, table in enumerate(self.bank.tables):
            ib = table.index_bits
            tb = table.tag_bits
            base_i = 0
            if ib > 0:
                base_i = ((pcv ^ (pcv >> ib) ^ (pcv >> (2 * ib)))
                          ^ (table.table_number * 0x9E37))
            base_t = (pcv ^ (pcv >> tb)) if tb > 0 else 0
            if self._static[t]:
                sidx[t] = base_i & self._imask[t]
                stag[t] = base_t & self._tmask[t]
            else:
                sidx[t] = base_i
                stag[t] = base_t
        return sidx, stag

    def compute_keys(self, pc: int) -> None:
        """Fill :attr:`idx`/:attr:`tags` with this PC's current keys."""
        cache = self._pc_cache.get(pc)
        if cache is None:
            cache = self._build_pc(pc)
            self._pc_cache[pc] = cache
        sidx, stag = cache
        values = self.fv.values
        idx = self.idx
        tags = self.tags
        pv = self._path_value
        memo = self._path_memo
        for t in range(self._nt):
            if self._static[t]:
                idx[t] = sidx[t]
                tags[t] = stag[t]
                continue
            ib = self._index_bits[t]
            if ib > 0:
                p = pv & self._pmask[t]
                key = (p, ib)
                pf = memo.get(key)
                if pf is None:
                    pf = fold_bits(p, max(p.bit_length(), 1), ib)
                    memo[key] = pf
                idx[t] = (sidx[t] ^ values[self._idx_slot[t]] ^ pf) \
                    & self._imask[t]
            else:
                idx[t] = 0
            tags[t] = (stag[t] ^ values[self._tag_slot[t]]
                       ^ (values[self._tag2_slot[t]] << 1)) & self._tmask[t]

    # -- history events --------------------------------------------------------

    def on_branch(self, pc: int, taken: bool) -> None:
        if self._plan is not None:
            return
        self.fv.push_bit(1 if taken else 0)
        self._path_value = (
            (self._path_value << self._path_bpb)
            | ((pc >> 1) & self._path_bpb_mask)
        ) & self._path_wmask

    def on_indirect(self, pc: int, target: int) -> None:
        if self._plan is not None:
            return
        self.fv.push_indirect(target)
        self._path_value = (
            (self._path_value << self._path_bpb)
            | ((pc >> 1) & self._path_bpb_mask)
        ) & self._path_wmask

    def finish(self) -> None:
        if self._plan is not None:
            self._plan.finalize()
            self.fv.sync_back()
            self.bank.path.value = self._path_final
        else:
            self.fv.sync_back()
            self.bank.path.value = self._path_value


class GenericMDSession:
    """Session driving the real ``predict``/``train`` protocol.

    Used for oracles and any predictor without a dedicated fast session;
    correctness by construction (it *is* the scalar call sequence, fused).
    """

    __slots__ = ("p", "_bypassable")

    def __init__(self, p: MDPredictor) -> None:
        self.p = p
        self._bypassable = p.bypassable_classes

    def on_branch(self, pc: int, taken: bool) -> None:
        self.p.on_branch(pc, taken)

    def on_indirect(self, pc: int, target: int) -> None:
        self.p.on_indirect(pc, target)

    def on_store(self, uop: MicroOp) -> Optional[int]:
        return self.p.on_store(uop)

    def predict_train(self, uop: MicroOp, branches_between: int,
                      store_pc: Optional[int], a_dist: int,
                      bypass_code: int):
        p = self.p
        prediction = p.predict(uop)
        actual = ActualOutcome.from_uop(uop, branches_between=branches_between,
                                        store_pc=store_pc)
        outcome = classify(prediction, actual, self._bypassable)
        p.train(uop, prediction, actual)
        return (_KIND_CODE[prediction.kind], prediction.store_seq,
                prediction.distance, bool(prediction.meta.get("conservative")),
                OUTCOME_CODES[outcome.kind])

    def finish(self) -> None:
        pass


class MascotSession:
    """Fast fused predict+train for :class:`Mascot` (exact transcription).

    The scalar ``train`` re-finds the predicting entry with the keys carried
    in prediction meta (``_reacquire``); since nothing predictor-visible
    happens between a load's predict and train, that re-scan returns the
    predict-time entry, so the session reuses it directly.
    """

    __slots__ = ("p", "fb", "_sets", "_nt", "_ppt", "_sink", "_useful_max",
                 "_bypass_max", "_distance_max", "_smb", "_alloc_nondeps",
                 "_alloc_u_dep", "_alloc_u_nondep", "_track_f1", "_decay",
                 "_sup_code", "_byp_code", "_j")

    def __init__(self, p: Mascot) -> None:
        self.p = p
        self.fb = FastBank(p.bank)
        self._sets = [table._sets for table in p.bank.tables]
        self._nt = len(p.bank)
        self._ppt = p.predictions_per_table
        self._sink = p.telemetry
        self._useful_max = p._useful_max
        self._bypass_max = p._bypass_max
        self._distance_max = p._distance_max
        self._smb = p.config.smb_enabled
        self._alloc_nondeps = p.config.allocate_nondependencies
        self._alloc_u_dep = p.config.alloc_usefulness_dep
        self._alloc_u_nondep = p.config.alloc_usefulness_nondep
        self._track_f1 = p.track_f1
        self._decay = p.config.decay_period
        supported = {BypassClass.DIRECT, BypassClass.NO_OFFSET}
        if p.config.offset_bypass:
            supported.add(BypassClass.OFFSET)
        # Per-bypass-code membership tables (no enum hashing on the hot path).
        self._sup_code = tuple(bc in supported for bc in BYPASS_BY_CODE)
        bypassable = p.bypassable_classes
        self._byp_code = tuple(bc in bypassable for bc in BYPASS_BY_CODE)
        self._j = 0

    def prime(self, stream: BranchStream, load_pc: np.ndarray,
              cond_before: np.ndarray, ind_before: np.ndarray) -> None:
        self.fb.prime(stream, load_pc, cond_before, ind_before)

    def on_branch(self, pc: int, taken: bool) -> None:
        self.fb.on_branch(pc, taken)

    def on_indirect(self, pc: int, target: int) -> None:
        self.fb.on_indirect(pc, target)

    def on_store(self, uop: MicroOp) -> Optional[int]:
        return None

    def predict_train(self, uop: MicroOp, branches_between: int,
                      store_pc: Optional[int], a_dist: int,
                      bypass_code: int):
        p = self.p
        fb = self.fb
        rows = fb.rows_idx
        if rows is not None:
            j = self._j
            self._j = j + 1
            idx = rows[j]
            tags = fb.rows_tag[j]
        else:
            fb.compute_keys(uop.pc)
            idx = fb.idx
            tags = fb.tags
        sets = self._sets
        sink = self._sink
        nt = self._nt

        # -- predict (longest-history tag match) --
        entry = None
        source = None
        for t in range(nt - 1, -1, -1):
            kt = tags[t]
            for e in sets[t][idx[t]]:
                if e is not None and e.tag == kt:
                    entry = e
                    source = t
                    break
            if entry is not None:
                break

        if entry is None:
            self._ppt[nt] += 1
            if sink is not None:
                sink.lookup(nt)
            kind = 0
            p_dist = 0
        elif entry.distance == 0:
            self._ppt[source] += 1
            if sink is not None:
                sink.lookup(source)
            kind = 0
            p_dist = 0
        else:
            self._ppt[source] += 1
            if sink is not None:
                sink.lookup(source)
            p_dist = entry.distance
            if (self._smb and entry.usefulness == self._useful_max
                    and entry.bypass == self._bypass_max):
                kind = 2
            else:
                kind = 1

        supported = self._sup_code[bypass_code]
        okind = classify_fast(kind, p_dist, None, a_dist, None,
                              self._byp_code[bypass_code])

        # -- train --
        umax = self._useful_max
        actual_distance = (a_dist if a_dist < self._distance_max
                           else self._distance_max)
        if kind == 0 and a_dist <= 0:
            if entry is not None and entry.distance == 0:
                entry.usefulness = (entry.usefulness + 1
                                    if entry.usefulness < umax else umax)
                if sink is not None:
                    sink.confidence(source, "up")
                if self._track_f1:
                    entry.tp += 1
        elif kind == 0:
            if entry is not None:
                entry.usefulness = (entry.usefulness - 1
                                    if entry.usefulness > 0 else 0)
                if sink is not None:
                    sink.confidence(source, "down")
                if self._track_f1:
                    entry.fn += 1
            self._allocate(0 if source is None else source + 1,
                           actual_distance, supported, idx, tags)
        elif a_dist <= 0:
            if entry is not None:
                entry.usefulness = (entry.usefulness - 1
                                    if entry.usefulness > 0 else 0)
                if kind == 2:
                    entry.bypass = 0
                if sink is not None:
                    sink.confidence(source, "down")
                    if kind == 2:
                        sink.confidence(source, "bypass_reset")
                if self._track_f1:
                    entry.fp += 1
            if self._alloc_nondeps:
                self._allocate(0 if source is None else source + 1, 0, False,
                               idx, tags)
        else:
            if p_dist == actual_distance:
                if entry is not None:
                    entry.usefulness = (entry.usefulness + 1
                                        if entry.usefulness < umax else umax)
                    if sink is not None:
                        sink.confidence(source, "up")
                    # supported bypass classes are a subset of is_bypassable,
                    # so the scalar's two-part test reduces to membership
                    if supported:
                        bmax = self._bypass_max
                        entry.bypass = (entry.bypass + 1
                                        if entry.bypass < bmax else bmax)
                        if sink is not None:
                            sink.confidence(source, "bypass_up")
                    else:
                        entry.bypass = 0
                        if sink is not None:
                            sink.confidence(source, "bypass_reset")
                    if self._track_f1:
                        entry.tp += 1
            else:
                if entry is not None:
                    entry.usefulness = (entry.usefulness - 1
                                        if entry.usefulness > 0 else 0)
                    if kind == 2:
                        entry.bypass = 0
                    if sink is not None:
                        sink.confidence(source, "down")
                        if kind == 2:
                            sink.confidence(source, "bypass_reset")
                    if self._track_f1:
                        entry.fp += 1
                self._allocate(0 if source is None else source + 1,
                               actual_distance, supported, idx, tags)

        p._loads_seen += 1
        if self._decay and p._loads_seen % self._decay == 0:
            p._decay_all()

        return kind, None, p_dist, False, okind

    def _allocate(self, start: int, distance: int, bypassable: bool,
                  idx, tags) -> None:
        p = self.p
        sink = self._sink
        nt = self._nt
        if start > nt - 1:
            start = nt - 1
        is_nondep = distance == 0
        for t in range(start, nt):
            ways = self._sets[t][idx[t]]
            victim = -1
            for w, e in enumerate(ways):
                if e is None or e.usefulness == 0:
                    victim = w
                    break
            if victim >= 0:
                if sink is not None:
                    if ways[victim] is not None:
                        sink.eviction(t)
                    sink.allocation(t, distance)
                if is_nondep:
                    usefulness = self._alloc_u_nondep
                    bypass = 0
                    p.allocations_nondep += 1
                else:
                    usefulness = self._alloc_u_dep
                    bypass = 1 if bypassable else 0
                    p.allocations_dep += 1
                ways[victim] = MascotEntry(tag=tags[t], distance=distance,
                                           usefulness=usefulness,
                                           bypass=bypass)
                return
            if t == start:
                p.allocation_failures += 1
                if sink is not None:
                    sink.event("allocation_failure")
                for e in ways:
                    if e is not None and e.usefulness > 0:
                        e.usefulness -= 1

    def finish(self) -> None:
        self.fb.finish()


class PhastSession:
    """Fast fused predict+train for :class:`Phast` (exact transcription)."""

    __slots__ = ("p", "fb", "_sets", "_nt", "_ppt", "_sink", "_useful_max",
                 "_lru_max", "_distance_max", "_alloc_usefulness",
                 "_hist_lengths", "_byp_code", "_j")

    def __init__(self, p: Phast) -> None:
        self.p = p
        self.fb = FastBank(p.bank)
        self._sets = [table._sets for table in p.bank.tables]
        self._nt = len(p.bank)
        self._ppt = p.predictions_per_table
        self._sink = p.telemetry
        self._useful_max = p._useful_max
        self._lru_max = p._lru_max
        self._distance_max = p._distance_max
        self._alloc_usefulness = p.alloc_usefulness
        self._hist_lengths = p.history_lengths
        bypassable = p.bypassable_classes
        self._byp_code = tuple(bc in bypassable for bc in BYPASS_BY_CODE)
        self._j = 0

    def prime(self, stream: BranchStream, load_pc: np.ndarray,
              cond_before: np.ndarray, ind_before: np.ndarray) -> None:
        self.fb.prime(stream, load_pc, cond_before, ind_before)

    def on_branch(self, pc: int, taken: bool) -> None:
        self.fb.on_branch(pc, taken)

    def on_indirect(self, pc: int, target: int) -> None:
        self.fb.on_indirect(pc, target)

    def on_store(self, uop: MicroOp) -> Optional[int]:
        return None

    def predict_train(self, uop: MicroOp, branches_between: int,
                      store_pc: Optional[int], a_dist: int,
                      bypass_code: int):
        fb = self.fb
        rows = fb.rows_idx
        if rows is not None:
            j = self._j
            self._j = j + 1
            idx = rows[j]
            tags = fb.rows_tag[j]
        else:
            fb.compute_keys(uop.pc)
            idx = fb.idx
            tags = fb.tags
        sets = self._sets
        sink = self._sink
        nt = self._nt

        entry = None
        source = None
        for t in range(nt - 1, -1, -1):
            kt = tags[t]
            for e in sets[t][idx[t]]:
                if e is not None and e.tag == kt:
                    entry = e
                    source = t
                    break
            if entry is not None:
                break

        if entry is None:
            self._ppt[nt] += 1
            if sink is not None:
                sink.lookup(nt)
            kind = 0
            p_dist = 0
        else:
            self._ppt[source] += 1
            if sink is not None:
                sink.lookup(source)
            lmax = self._lru_max
            for e in sets[source][idx[source]]:
                if e is None:
                    continue
                if e is entry:
                    e.lru = 0
                elif e.lru < lmax:
                    e.lru += 1
            kind = 1
            p_dist = entry.distance

        okind = classify_fast(kind, p_dist, None, a_dist, None,
                              self._byp_code[bypass_code])

        actual_distance = (a_dist if a_dist < self._distance_max
                           else self._distance_max)
        if kind != 0 and a_dist > 0:
            if p_dist == actual_distance:
                if entry.usefulness < self._useful_max:
                    entry.usefulness += 1
                if sink is not None:
                    sink.confidence(source, "up")
            else:
                if entry.usefulness > 0:
                    entry.usefulness -= 1
                if sink is not None:
                    sink.confidence(source, "down")
                self._allocate(branches_between, actual_distance, idx, tags)
        elif kind != 0:
            if entry.usefulness > 0:
                entry.usefulness -= 1
            if sink is not None:
                sink.confidence(source, "down")
        elif a_dist > 0:
            self._allocate(branches_between, actual_distance, idx, tags)
        return kind, None, p_dist, False, okind

    def _allocate(self, branches_between: int, distance: int,
                  idx, tags) -> None:
        table = self._nt - 1
        for t, length in enumerate(self._hist_lengths):
            if length >= branches_between:
                table = t
                break
        ways = self._sets[table][idx[table]]
        sink = self._sink
        victim = -1
        for w, e in enumerate(ways):
            if e is None:
                victim = w
                break
        if victim < 0:
            best = None
            for w, e in enumerate(ways):
                if e.usefulness == 0:
                    k = (e.lru, w)
                    if best is None or k > best:
                        best = k
                        victim = w
        if victim < 0:
            best = None
            oldest = -1
            for w, e in enumerate(ways):
                k = (e.lru, w)
                if best is None or k > best:
                    best = k
                    oldest = w
            e = ways[oldest]
            if e.usefulness > 0:
                e.usefulness -= 1
            if sink is not None:
                sink.event("allocation_deferred")
                sink.confidence(table, "down")
            return
        if sink is not None:
            if ways[victim] is not None:
                sink.eviction(table)
            sink.allocation(table, distance)
        ways[victim] = PhastEntry(tag=tags[table], distance=distance,
                                  usefulness=self._alloc_usefulness)

    def finish(self) -> None:
        self.fb.finish()


class NoSQSession:
    """Fast fused predict+train for :class:`NoSQ` (exact transcription)."""

    __slots__ = ("p", "fv", "_hist_slot", "_tag_slot", "_imask", "_tmask",
                 "_ibits", "_tables", "_sink", "_smb_conf", "_conf_max",
                 "_dist_max", "_lru_max", "_byp_code", "_pc_cache",
                 "_plan", "_keys", "_j")

    def __init__(self, p: NoSQ) -> None:
        self.p = p
        self.fv = FoldVector(p._ghist)
        self._hist_slot = self.fv.slot(p.history_bits, p.index_bits)
        self._tag_slot = self.fv.slot(p.history_bits, p.TAG_BITS)
        self._imask = mask(p.index_bits)
        self._tmask = mask(p.TAG_BITS)
        self._ibits = p.index_bits
        self._tables = p._tables
        self._sink = p.telemetry
        self._smb_conf = p.smb_confidence
        self._conf_max = p._confidence_max
        self._dist_max = p._distance_max
        self._lru_max = p._lru_max
        bypassable = p.bypassable_classes
        self._byp_code = tuple(bc in bypassable for bc in BYPASS_BY_CODE)
        self._pc_cache: Dict[int, Tuple[int, int, int]] = {}
        self._plan: Optional[FoldPlan] = None
        self._keys: Optional[List[Tuple[int, int, int, int]]] = None
        self._j = 0

    def prime(self, stream: BranchStream, load_pc: np.ndarray,
              cond_before: np.ndarray, ind_before: np.ndarray) -> None:
        bits, _ = stream.mixed()
        try:
            plan = FoldPlan(self.fv, bits)
        except RuntimeError:
            return
        self._plan = plan
        k_push = cond_before + 5 * ind_before
        pcv = load_pc >> 1
        vi = plan.series[self._hist_slot][k_push]
        vt = plan.series[self._tag_slot][k_push]
        self._keys = list(zip(
            ((pcv ^ vi) & self._imask).tolist(),
            ((pcv ^ vt) & self._tmask).tolist(),
            (pcv & self._imask).tolist(),
            ((pcv >> self._ibits) & self._tmask).tolist(),
        ))

    def on_branch(self, pc: int, taken: bool) -> None:
        if self._plan is None:
            self.fv.push_bit(1 if taken else 0)

    def on_indirect(self, pc: int, target: int) -> None:
        if self._plan is None:
            self.fv.push_indirect(target)

    def on_store(self, uop: MicroOp) -> Optional[int]:
        return None

    def predict_train(self, uop: MicroOp, branches_between: int,
                      store_pc: Optional[int], a_dist: int,
                      bypass_code: int):
        keys = self._keys
        if keys is not None:
            j = self._j
            self._j = j + 1
            dep_index, dep_tag, ind_index, ind_tag = keys[j]
        else:
            pc = uop.pc
            c = self._pc_cache.get(pc)
            if c is None:
                pc_part = pc >> 1
                c = (pc_part, pc_part & self._imask,
                     (pc_part >> self._ibits) & self._tmask)
                self._pc_cache[pc] = c
            pc_part, ind_index, ind_tag = c
            values = self.fv.values
            dep_index = (pc_part ^ values[self._hist_slot]) & self._imask
            dep_tag = (pc_part ^ values[self._tag_slot]) & self._tmask

        sink = self._sink
        tables = self._tables
        lmax = self._lru_max

        dep_entry = None
        for e in tables[0][dep_index]:
            if e is not None and e.tag == dep_tag:
                dep_entry = e
                break
        ind_entry = None
        for e in tables[1][ind_index]:
            if e is not None and e.tag == ind_tag:
                ind_entry = e
                break

        if dep_entry is not None:
            for e in tables[0][dep_index]:
                if e is None:
                    continue
                if e is dep_entry:
                    e.lru = 0
                elif e.lru < lmax:
                    e.lru += 1
            if sink is not None:
                sink.lookup(0)
            p_dist = dep_entry.distance
            kind = 2 if dep_entry.confidence >= self._smb_conf else 1
        elif ind_entry is not None:
            for e in tables[1][ind_index]:
                if e is None:
                    continue
                if e is ind_entry:
                    e.lru = 0
                elif e.lru < lmax:
                    e.lru += 1
            if sink is not None:
                sink.lookup(1)
            p_dist = ind_entry.distance
            kind = 1
        else:
            if sink is not None:
                sink.lookup(2)
            p_dist = 0
            kind = 0

        bypassable = self._byp_code[bypass_code]
        okind = classify_fast(kind, p_dist, None, a_dist, None, bypassable)

        if a_dist > 0:
            distance = a_dist if a_dist < self._dist_max else self._dist_max
            for table, index, tag, entry in (
                (0, dep_index, dep_tag, dep_entry),
                (1, ind_index, ind_tag, ind_entry),
            ):
                if entry is not None and entry.distance == distance:
                    if bypassable or table == 1:
                        if entry.confidence < self._conf_max:
                            entry.confidence += 1
                        if sink is not None:
                            sink.confidence(table, "up")
                    else:
                        entry.confidence = 0
                        if sink is not None:
                            sink.confidence(table, "bypass_reset")
                else:
                    self._install(table, index, tag, distance)
        else:
            for table, entry in ((0, dep_entry), (1, ind_entry)):
                if entry is not None:
                    entry.confidence = 0
                    if sink is not None:
                        sink.confidence(table, "reset")
        return kind, None, p_dist, False, okind

    def _install(self, table: int, index: int, tag: int,
                 distance: int) -> None:
        ways = self._tables[table][index]
        sink = self._sink
        for entry in ways:
            if entry is not None and entry.tag == tag:
                entry.distance = distance
                entry.confidence = 1
                if sink is not None:
                    sink.confidence(table, "reset")
                return
        victim = -1
        for w, entry in enumerate(ways):
            if entry is None:
                victim = w
                break
        if victim < 0:
            best = None
            for w, entry in enumerate(ways):
                k = (entry.lru, w)
                if best is None or k > best:
                    best = k
                    victim = w
        if sink is not None:
            if ways[victim] is not None:
                sink.eviction(table)
            sink.allocation(table, distance)
        ways[victim] = NoSQEntry(tag=tag, distance=distance, confidence=1)

    def finish(self) -> None:
        if self._plan is not None:
            self._plan.finalize()
        self.fv.sync_back()


class StoreSetsSession:
    """Fast fused predict+train for :class:`StoreSets`.

    Store Sets has no folded history, so the only speedups are the cached
    ``mix64(pc) % effective_ssit`` index and the fused call.  The clear
    logic rebinds the predictor's own lists (as the scalar path does), so
    table references are always read through the predictor.
    """

    __slots__ = ("p", "_sink", "_interval", "_window", "_byp_code",
                 "_idx_cache")

    def __init__(self, p: StoreSets) -> None:
        self.p = p
        self._sink = p.telemetry
        self._interval = p.clear_interval
        self._window = p.instr_window
        bypassable = p.bypassable_classes
        self._byp_code = tuple(bc in bypassable for bc in BYPASS_BY_CODE)
        self._idx_cache: Dict[int, int] = {}

    def on_branch(self, pc: int, taken: bool) -> None:
        pass

    def on_indirect(self, pc: int, target: int) -> None:
        pass

    def _idx(self, pc: int) -> int:
        i = self._idx_cache.get(pc)
        if i is None:
            i = mix64(pc) % self.p._effective_ssit
            self._idx_cache[pc] = i
        return i

    def _maybe_clear(self) -> None:
        p = self.p
        p._accesses += 1
        if self._interval and p._accesses % self._interval == 0:
            p._ssit = [None] * p.ssit_entries
            p._lfst = [None] * p.lfst_entries
            if self._sink is not None:
                self._sink.event("cyclic_clear")

    def on_store(self, uop: MicroOp) -> Optional[int]:
        p = self.p
        self._maybe_clear()
        ssid = p._ssit[self._idx(uop.pc)]
        if ssid is None:
            return None
        lfst = p._lfst
        previous = lfst[ssid]
        lfst[ssid] = uop.seq
        if previous is not None and uop.seq - previous <= self._window:
            return previous
        return None

    def predict_train(self, uop: MicroOp, branches_between: int,
                      store_pc: Optional[int], a_dist: int,
                      bypass_code: int):
        p = self.p
        self._maybe_clear()
        sink = self._sink
        ssid = p._ssit[self._idx(uop.pc)]
        kind = 0
        p_seq = None
        if ssid is None:
            if sink is not None:
                sink.lookup(1)
        else:
            store_seq = p._lfst[ssid]
            if store_seq is None or uop.seq - store_seq > self._window:
                if sink is not None:
                    sink.lookup(1)
            else:
                if sink is not None:
                    sink.lookup(0)
                kind = 1
                p_seq = store_seq

        a_seq = uop.dep_store_seq
        okind = classify_fast(kind, 0, p_seq, a_dist, a_seq,
                              self._byp_code[bypass_code])

        if a_dist > 0 and not (kind != 0 and p_seq is not None
                               and p_seq >= a_seq):
            p.violations_trained += 1
            if sink is not None:
                sink.event("violation_trained")
            self._assign(self._idx(uop.pc), a_seq, a_dist, store_pc)
        return kind, p_seq, 0, False, okind

    def _assign(self, load_index: int, a_seq: int, a_dist: int,
                store_pc: Optional[int]) -> None:
        p = self.p
        spc = store_pc if store_pc is not None else a_seq
        store_index = self._idx(spc)
        ssit = p._ssit
        load_ssid = ssit[load_index]
        store_ssid = ssit[store_index]
        sink = self._sink
        if load_ssid is None and store_ssid is None:
            ssid = p._new_ssid()
            ssit[load_index] = ssid
            ssit[store_index] = ssid
            if sink is not None:
                sink.allocation(0, a_dist)
        elif load_ssid is not None and store_ssid is None:
            ssit[store_index] = load_ssid
            if sink is not None:
                sink.allocation(0, a_dist)
        elif load_ssid is None:
            ssit[load_index] = store_ssid
            if sink is not None:
                sink.allocation(0, a_dist)
        else:
            winner = load_ssid if load_ssid < store_ssid else store_ssid
            ssit[load_index] = winner
            ssit[store_index] = winner
            if sink is not None:
                sink.event("set_merge")

    def finish(self) -> None:
        pass


def make_session(predictor: MDPredictor):
    """Session for ``predictor`` — fast when the exact type has one.

    Type-exact checks keep subclasses (which may override ``predict`` or
    ``train``) on the generic, by-construction-correct path.
    """
    tp = type(predictor)
    if tp is Mascot:
        return MascotSession(predictor)
    if tp is Phast:
        return PhastSession(predictor)
    if tp is NoSQ:
        return NoSQSession(predictor)
    if tp is StoreSets:
        return StoreSetsSession(predictor)
    return GenericMDSession(predictor)
