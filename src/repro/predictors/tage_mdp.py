"""TAGE-MDP: the original TAGE-based memory-dependence predictor.

Sec. II-A: "TAGE-MDP, first mentioned in a paper by Perais et al., and most
thoroughly explained by Kim and Ros, modifies the TAGE branch predictor to
also predict memory dependencies.  It is a relatively simple augmentation
of TAGE, repurposing the 3-bit saturating counter to predict the store
distance, and adding a single bit u to encode usefulness.  If u is not 0,
the entry can be used for predicting a memory dependence."

This is the direct ancestor both PHAST and MASCOT improve on, included as
an additional historical baseline.  Differences from MASCOT:

* the distance field is only 3 bits (distances 1–7; longer dependencies
  cannot be expressed and default to no-prediction);
* a single usefulness bit — one false dependence silences the entry, one
  correct prediction revives it (fast to silence, but no notion of *why*);
* classic TAGE allocation (next longer table after the provider) with no
  non-dependence entries;
* MDP only, no SMB.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..trace.uop import MicroOp
from .base import ActualOutcome, MDPredictor, Prediction, PredictionKind
from .tables import TableBank, TableKey

__all__ = ["TageMdp", "TageMdpEntry"]


@dataclass
class TageMdpEntry:
    """Tag + 3-bit distance + single usefulness bit."""

    tag: int
    distance: int  # 1..7
    useful: bool


class TageMdp(MDPredictor):
    """The Perais et al. TAGE-MDP baseline (Sec. II-A)."""

    name = "tage-mdp"

    DISTANCE_BITS = 3

    def __init__(
        self,
        history_lengths: Sequence[int] = (0, 2, 4, 8, 16, 32, 64, 128),
        entries_per_table: int = 512,
        tag_bits: int = 16,
        ways: int = 4,
    ):
        self.history_lengths = tuple(history_lengths)
        self.tag_bits = tag_bits
        self.bank = TableBank(
            history_lengths=self.history_lengths,
            table_entries=(entries_per_table,) * len(self.history_lengths),
            tag_bits=(tag_bits,) * len(self.history_lengths),
            ways=ways,
        )
        self._distance_max = (1 << self.DISTANCE_BITS) - 1

    # ------------------------------------------------------------------ lookup

    def _lookup(self, keys: Tuple[TableKey, ...]
                ) -> Tuple[Optional[int], Optional[TageMdpEntry]]:
        for t in range(len(self.bank) - 1, -1, -1):
            key = keys[t]
            for entry in self.bank[t].ways_at(key.index):
                if entry is not None and entry.tag == key.tag:
                    return t, entry
        return None, None

    def predict(self, uop: MicroOp) -> Prediction:
        keys = self.bank.keys(uop.pc)
        table, entry = self._lookup(keys)
        meta = {"keys": keys}
        # "If u is not 0, the entry can be used for predicting a memory
        # dependence" — a cleared u bit silences the entry.
        if entry is None or not entry.useful:
            return Prediction(PredictionKind.NO_DEP, meta=meta)
        return Prediction(PredictionKind.MDP, distance=entry.distance,
                          source_table=table, meta=meta)

    # ------------------------------------------------------------------- train

    def train(self, uop: MicroOp, prediction: Prediction,
              actual: ActualOutcome) -> None:
        keys: Tuple[TableKey, ...] = prediction.meta["keys"]
        source = prediction.source_table
        entry = self._reacquire(keys, source)

        # Distances beyond the 3-bit field cannot be represented; the
        # predictor simply cannot learn such pairs.
        representable = 0 < actual.distance <= self._distance_max

        if prediction.predicts_dependence:
            if actual.distance == prediction.distance:
                if entry is not None:
                    entry.useful = True
            else:
                if entry is not None:
                    entry.useful = False  # single-bit: one strike silences
                if representable:
                    self._allocate(keys, source, actual.distance)
        else:
            if representable:
                self._allocate(keys, source, actual.distance)

    def _reacquire(self, keys: Tuple[TableKey, ...], source: Optional[int]
                   ) -> Optional[TageMdpEntry]:
        if source is None:
            return None
        key = keys[source]
        for entry in self.bank[source].ways_at(key.index):
            if entry is not None and entry.tag == key.tag:
                return entry
        return None

    def _allocate(self, keys: Tuple[TableKey, ...], source: Optional[int],
                  distance: int) -> None:
        """Classic TAGE allocation: next longer table, not-useful victims."""
        start = 0 if source is None else min(source + 1, len(self.bank) - 1)
        for t in range(start, len(self.bank)):
            key = keys[t]
            ways = self.bank[t].ways_at(key.index)
            for w, entry in enumerate(ways):
                if entry is None or not entry.useful:
                    self.bank[t].write(key.index, w, TageMdpEntry(
                        tag=key.tag, distance=distance, useful=True,
                    ))
                    return
        # Everything useful: clear the u bits of the first candidate set so
        # a future allocation can proceed (TAGE's aging, single-bit form).
        key = keys[start]
        for entry in self.bank[start].ways_at(key.index):
            if entry is not None:
                entry.useful = False

    # ------------------------------------------------------------------- events

    def on_branch(self, pc: int, taken: bool) -> None:
        self.bank.on_branch(pc, taken)

    def on_indirect(self, pc: int, target: int) -> None:
        self.bank.on_indirect(pc, target)

    # --------------------------------------------------------------------- misc

    @property
    def storage_bits(self) -> int:
        entry_bits = self.tag_bits + self.DISTANCE_BITS + 1
        total = sum(t.num_entries for t in self.bank.tables)
        return entry_bits * total

    def reset(self) -> None:
        self.bank.clear()
