"""Command-line interface: ``python -m repro <command>``.

Commands mirror the library's main entry points so the paper's experiments
can be reproduced without writing Python:

* ``simulate``  — run one (benchmark, predictor) pair through the timing
  model and print the statistics.
* ``compare``   — sweep predictors over benchmarks and print normalised IPC
  (the Figs. 7/9 harness).
* ``accuracy``  — prediction-only sweep with the Fig. 8 error taxonomy.
* ``figure``    — regenerate a specific paper table/figure by name.
* ``sizes``     — print Table II.
* ``gen-trace`` — generate and serialise a trace for external use.
* ``validate``  — check a serialised trace against every consumer
  invariant (see :mod:`repro.trace.validate`).
* ``profile``   — cycle-accounting + predictor-telemetry report for one
  cell; exits non-zero if the stall breakdown does not sum exactly to
  the measured cycle count (see :mod:`repro.obs`).
* ``lint``      — static simulator-correctness checks (oracle isolation,
  determinism/cache safety, hardware realizability; see
  :mod:`repro.lint`).
* ``doctor``    — environment health checks (cache/journal writability,
  cache-lock discipline, worker spawn, ``--workers`` endpoint preflight,
  lint baseline; see :mod:`repro.doctor`).
* ``worker``    — serve suite cells to a coordinator over TCP (the
  ``--backend workers`` substrate; see
  :mod:`repro.experiments.worker`).
* ``cache-serve`` — serve one result-cache directory to many
  coordinators over TCP; sweeps attach with ``--cache-url
  tcp://host:port`` or ``$REPRO_CACHE_URL`` (see
  :mod:`repro.experiments.cache_service` and docs/cache-service.md).
* ``serve``     — async HTTP coordinator: POST JSON grid submissions to
  ``/submit`` and stream per-cell results back as NDJSON while multiple
  tenants share one worker fleet (see :mod:`repro.experiments.serve`).
* ``bench-baseline`` — measure scalar vs batched engine throughput and
  write (or, with ``--check``, compare against) the committed
  ``benchmarks/BENCH_throughput.json`` (see docs/performance.md).

``simulate`` and ``compare`` accept ``--engine {scalar,batched}``; the
batched engine produces bit-identical statistics (pinned by the golden
equivalence test tier) at several times the throughput.

``simulate``, ``compare``, ``accuracy``, ``profile`` and the figure
commands ``fig7``/``fig8``/``fig9`` accept ``--sampling`` (with
``--interval-length``, ``--max-k``, ``--warmup-intervals``): only
SimPoint-style representative regions are simulated and the printed
statistics are full-run reconstructions carrying confidence intervals
(see docs/sampling.md).

Fault tolerance: the sweep commands accept ``--cell-timeout``,
``--retries``, ``--keep-going`` and ``--resume RUN_ID`` (see
docs/resilience.md); runs are journaled by default for crash recovery
(``--no-journal`` disables).  ``--backend workers --workers
host:port,...`` shards cells across ``repro worker`` processes on this
or other hosts, with per-cell leases and heartbeats surviving any single
worker or coordinator crash (docs/resilience.md, "Distributed
execution").
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

from .core.config import GOLDEN_COVE, LION_COVE
from .experiments import figures
from .lint import cli as lint_cli
from .experiments.bench_baseline import BASELINE_PATH
from .experiments.reporting import render_table
from .experiments.resilience import CellFailure, ResiliencePolicy
from .experiments.runner import TIMING_ENGINES, default_cache, run_timing
from .experiments.suite import (
    PREDICTOR_FACTORIES,
    make_predictor,
    run_accuracy_suite,
    run_ipc_suite,
)
from .trace import generate_trace, suite_names
from .trace.stream import read_trace, write_trace
from .trace.validate import validate_trace

__all__ = ["main"]

_CORES = {"golden-cove": GOLDEN_COVE, "lion-cove": LION_COVE}

def _cache_arg(args):
    """Map --no-cache / --cache-url / --cache-dir onto the cache parameter.

    The CLI defaults to caching on (under $REPRO_CACHE_DIR or
    ~/.cache/repro-mascot) so repeated figure regenerations only pay for
    cells whose parameters or code actually changed.  --cache-url points
    at a shared ``repro cache-serve`` instead (bare host:port is
    normalised to tcp://); $REPRO_CACHE_URL does the same for the
    default-on path.
    """
    if args.no_cache:
        return False
    url = getattr(args, "cache_url", None)
    if url is not None:
        return url if "://" in url else f"tcp://{url}"
    if args.cache_dir is not None:
        return args.cache_dir
    return True


def _journal_arg(args):
    """Map --no-journal / --journal-dir onto the journal parameter.

    Journaling defaults to on: a crashed or interrupted sweep can always
    be resumed from its run id (printed on stderr at the end of the run).
    """
    if args.no_journal:
        return None
    if args.journal_dir is not None:
        return args.journal_dir
    return True


def _resume_arg(args):
    """Map --resume onto the resume parameter, honouring --journal-dir.

    With journaling on, the run ids are passed through and loaded from the
    journal directory the run resolves.  With --no-journal the journal
    parameter carries no directory, so the state is loaded here — from
    --journal-dir (or the default) — and passed pre-resolved.
    """
    if args.resume is None or not args.no_journal:
        return args.resume
    from .experiments.journal import RunJournal
    return RunJournal(args.journal_dir).load_many(args.resume)


def _policy_arg(args):
    """Build the ResiliencePolicy from --cell-timeout/--retries/--keep-going.

    Returns None (the historical fail-fast default) when no fault-tolerance
    flag was given, so default CLI behaviour is unchanged.
    """
    if (args.cell_timeout is None and args.retries == 0
            and not args.keep_going):
        return None
    return ResiliencePolicy(
        cell_timeout=args.cell_timeout,
        retries=args.retries,
        fail_fast=not args.keep_going,
    )


def _backend_arg(args):
    """Map --backend/--workers onto execute_cells' backend parameter.

    ``--backend local`` (the default) returns None — the historical
    in-process pool.  ``--backend workers`` requires ``--workers`` and
    passes its ``host:port,...`` list through; giving ``--workers`` alone
    implies ``--backend workers``.
    """
    if args.backend == "workers" or args.workers is not None:
        if args.workers is None:
            raise SystemExit(
                "repro: error: --backend workers requires --workers "
                "HOST:PORT[,HOST:PORT...]")
        return args.workers
    return None


def _suite_kwargs(args):
    return {
        "jobs": args.jobs,
        "cache": _cache_arg(args),
        "policy": _policy_arg(args),
        "journal": _journal_arg(args),
        "resume": _resume_arg(args),
        "metrics": args.metrics,
        "backend": _backend_arg(args),
    }


def _add_sampling_args(parser: argparse.ArgumentParser) -> None:
    """Sampled-simulation flags shared by simulate/compare/figure/profile."""
    parser.add_argument(
        "--sampling", action="store_true",
        help="simulate only representative regions (SimPoint-style "
             "selection) and reconstruct full-run statistics with a "
             "confidence interval (see docs/sampling.md)",
    )
    parser.add_argument(
        "--interval-length", type=_positive_int, default=10_000,
        metavar="UOPS",
        help="region length for --sampling (default: %(default)s)",
    )
    parser.add_argument(
        "--max-k", type=_positive_int, default=6, metavar="K",
        help="upper bound on representative regions for --sampling; the "
             "actual count is BIC-selected (default: %(default)s)",
    )
    parser.add_argument(
        "--warmup-intervals", type=_non_negative_int, default=4,
        metavar="N",
        help="warmup-prefix length for --sampling, in intervals "
             "(default: %(default)s)",
    )


def _sampling_arg(args):
    """Build the SamplingPolicy from the --sampling flag family."""
    if not getattr(args, "sampling", False):
        return None
    from .sampling import SamplingPolicy
    return SamplingPolicy(
        interval_length=args.interval_length,
        max_k=args.max_k,
        warmup_intervals=args.warmup_intervals,
    )


def _render_sampling_summary(meta: dict) -> str:
    lo, hi = meta["ci"]
    return (
        f"sampled: {meta['metric']} {meta['estimate']:.4f} in "
        f"[{lo:.4f}, {hi:.4f}] ({meta['confidence']:.0%} CI), "
        f"k={meta['k']} of {meta['n_intervals']} intervals, "
        f"coverage {meta['coverage']:.1%}, "
        f"{meta['simulated_uops']} uops simulated"
    )


_FIGURES = {
    "fig2": lambda args: figures.fig2_smb_opportunities(args.benchmarks, args.uops),
    "fig7": lambda args: figures.fig7_ipc_full(args.benchmarks, args.uops,
                                               sampling=_sampling_arg(args),
                                               **_suite_kwargs(args)),
    "fig8": lambda args: figures.fig8_mispredictions(args.benchmarks, args.uops,
                                                     sampling=_sampling_arg(args),
                                                     **_suite_kwargs(args)),
    "fig9": lambda args: figures.fig9_ipc_mdp_only(args.benchmarks, args.uops,
                                                   sampling=_sampling_arg(args),
                                                   **_suite_kwargs(args)),
    "fig10": lambda args: figures.fig10_prediction_mix(args.benchmarks, args.uops,
                                                       **_suite_kwargs(args)),
    "fig11": lambda args: figures.fig11_ablation(args.benchmarks, args.uops,
                                                 **_suite_kwargs(args)),
    "fig12": lambda args: figures.fig12_future_architectures(
        args.benchmarks, args.uops, **_suite_kwargs(args)),
    "fig13": lambda args: figures.fig13_table_usage(args.benchmarks, args.uops,
                                                    **_suite_kwargs(args)),
    "fig14": lambda args: figures.fig14_f1_ranking(args.benchmarks, args.uops,
                                                   **_suite_kwargs(args)),
    "fig15": lambda args: figures.fig15_mascot_opt(args.benchmarks, args.uops,
                                                   **_suite_kwargs(args)),
    "table1": lambda args: figures.table1_configuration(),
    "table2": lambda args: figures.table2_sizes(),
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be a positive integer")
    return value


def _non_negative_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be positive")
    return value


def _cache_directory(text: str) -> str:
    if os.path.exists(text) and not os.path.isdir(text):
        raise argparse.ArgumentTypeError(f"{text!r} exists and is not a "
                                         "directory")
    return text


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--benchmarks", nargs="*", default=None, metavar="NAME",
        help="benchmarks to run (default: the full suite)",
    )
    parser.add_argument(
        "--uops", type=int, default=40_000,
        help="dynamic micro-ops per benchmark (default: 40000)",
    )
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for suite cells (default: 1 = serial; "
             "results are identical for any value)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    parser.add_argument(
        "--cache-dir", type=_cache_directory, default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro-mascot)",
    )
    parser.add_argument(
        "--cache-url", default=None, metavar="URL",
        help="tcp://host:port of a shared 'repro cache-serve' result "
             "cache (default: $REPRO_CACHE_URL when set; takes "
             "precedence over --cache-dir)",
    )
    parser.add_argument(
        "--cell-timeout", type=_positive_float, default=None,
        metavar="SECONDS",
        help="per-cell wall-clock timeout (default: none)",
    )
    parser.add_argument(
        "--retries", type=_non_negative_int, default=0, metavar="N",
        help="extra attempts per failed cell, with exponential backoff "
             "(default: 0)",
    )
    fail_mode = parser.add_mutually_exclusive_group()
    fail_mode.add_argument(
        "--fail-fast", dest="keep_going", action="store_false",
        help="abort the sweep on the first exhausted cell (default)",
    )
    fail_mode.add_argument(
        "--keep-going", dest="keep_going", action="store_true",
        help="mark exhausted cells as failed and complete the rest of "
             "the grid",
    )
    parser.set_defaults(keep_going=False)
    parser.add_argument(
        "--resume", action="append", default=None, metavar="RUN_ID",
        help="restore completed cells from this journaled run and "
             "re-dispatch only the rest (repeatable; later runs win)",
    )
    parser.add_argument(
        "--no-journal", action="store_true",
        help="disable the append-only run journal",
    )
    parser.add_argument(
        "--journal-dir", type=_cache_directory, default=None, metavar="DIR",
        help="run-journal directory (default: $REPRO_JOURNAL_DIR or "
             "<cache-dir>/journals)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="append per-cell execution records (wall time, cache "
             "hit/miss, retries) to this JSONL file",
    )
    parser.add_argument(
        "--backend", choices=("local", "workers"), default="local",
        help="execution substrate: 'local' = in-process pool (default), "
             "'workers' = remote 'repro worker' processes (--workers)",
    )
    parser.add_argument(
        "--workers", default=None, metavar="HOST:PORT[,HOST:PORT...]",
        help="worker endpoints for --backend workers (implies it); "
             "start each with 'repro worker --port PORT'",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MASCOT (HPCA 2025) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="one benchmark, one predictor")
    simulate.add_argument("benchmark", choices=suite_names())
    simulate.add_argument("predictor", choices=sorted(PREDICTOR_FACTORIES))
    simulate.add_argument("--uops", type=int, default=60_000)
    simulate.add_argument("--core", choices=sorted(_CORES),
                          default="golden-cove")
    simulate.add_argument(
        "--engine", choices=TIMING_ENGINES, default="scalar",
        help="timing engine; 'batched' is bit-identical and faster",
    )
    _add_sampling_args(simulate)

    compare = sub.add_parser("compare", help="normalised-IPC sweep")
    compare.add_argument(
        "predictors", nargs="+", choices=sorted(PREDICTOR_FACTORIES),
    )
    _add_common(compare)
    compare.add_argument("--core", choices=sorted(_CORES),
                         default="golden-cove")
    compare.add_argument(
        "--engine", choices=TIMING_ENGINES, default="scalar",
        help="timing engine; 'batched' is bit-identical and faster",
    )
    _add_sampling_args(compare)

    accuracy = sub.add_parser("accuracy", help="prediction-only error sweep")
    accuracy.add_argument(
        "predictors", nargs="+", choices=sorted(PREDICTOR_FACTORIES),
    )
    _add_common(accuracy)
    _add_sampling_args(accuracy)

    figure = sub.add_parser("figure", help="regenerate a paper table/figure")
    figure.add_argument("name", choices=sorted(_FIGURES))
    _add_common(figure)
    _add_sampling_args(figure)

    sub.add_parser("sizes", help="print Table II")

    gen = sub.add_parser("gen-trace", help="generate and serialise a trace")
    gen.add_argument("benchmark", choices=suite_names())
    gen.add_argument("output", help="destination file")
    gen.add_argument("--uops", type=int, default=100_000)
    gen.add_argument("--program-seed", type=int, default=0)
    gen.add_argument("--trace-seed", type=int, default=1)

    check = sub.add_parser("validate", help="validate a serialised trace")
    check.add_argument("trace_file")
    check.add_argument("--store-window", type=int, default=114)
    check.add_argument("--instr-window", type=int, default=512)

    profile = sub.add_parser(
        "profile",
        help="cycle-accounting + predictor-telemetry report for one cell "
             "(validates that the stall breakdown sums to the cycle count)",
    )
    profile.add_argument("benchmark", nargs="?", choices=suite_names())
    profile.add_argument("predictor", nargs="?",
                         choices=sorted(PREDICTOR_FACTORIES))
    profile.add_argument(
        "--metrics-file", default=None, metavar="FILE",
        help="also summarise a sweep's --metrics JSONL (cells, leases, "
             "requeues); with no benchmark/predictor, print only that",
    )
    profile.add_argument("--uops", type=_positive_int, default=40_000)
    profile.add_argument("--core", choices=sorted(_CORES),
                         default="golden-cove")
    profile.add_argument(
        "--measure-from", type=_non_negative_int, default=None,
        metavar="UOP",
        help="first measured uop (default: a quarter of the trace)",
    )
    profile.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of tables",
    )
    _add_sampling_args(profile)

    lint = sub.add_parser(
        "lint",
        help="static simulator-correctness checks (oracle isolation, "
             "determinism, hardware realizability, engine equivalence, "
             "salt coverage, worker safety)",
    )
    lint_cli.add_arguments(lint)

    bench = sub.add_parser(
        "bench-baseline",
        help="measure scalar vs batched engine throughput; write or check "
             "the committed benchmarks/BENCH_throughput.json",
    )
    bench.add_argument(
        "--output", default=str(BASELINE_PATH), metavar="FILE",
        help="baseline JSON path (default: %(default)s)",
    )
    bench.add_argument(
        "--check", action="store_true",
        help="re-measure and compare against the committed baseline "
             "instead of overwriting it (exit 1 on regression)",
    )
    bench.add_argument(
        "--repeats", type=_positive_int, default=3,
        help="best-of-N repeats per engine per cell (default: %(default)s)",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed relative speedup regression under --check "
             "(default: %(default)s)",
    )
    bench.add_argument(
        "--skip-sampled", action="store_true",
        help="skip the sampled long-trace cell (minutes of full-trace "
             "simulation); engine cells only",
    )

    budget = sub.add_parser(
        "error-budget",
        help="run a benchmark grid sampled and full; fail when the "
             "geomean IPC reconstruction error exceeds the budget or a "
             "CI misses the full-run value (see docs/sampling.md)",
    )
    from .experiments.error_budget import ERROR_BUDGET_BENCHMARKS
    budget.add_argument(
        "--benchmarks", nargs="+", choices=suite_names(),
        default=list(ERROR_BUDGET_BENCHMARKS), metavar="BENCH",
        help="benchmarks to grid (default: the validated tier-1 subset)",
    )
    budget.add_argument(
        "--uops", type=_positive_int, default=2_000_000,
        help="trace length per cell (default: %(default)s)",
    )
    budget.add_argument("--predictor", default="mascot",
                        choices=sorted(PREDICTOR_FACTORIES))
    budget.add_argument("--engine", choices=TIMING_ENGINES,
                        default="batched",
                        help="timing engine for both sides "
                             "(default: %(default)s)")
    budget.add_argument(
        "--interval-length", type=_positive_int, default=None,
        help="override the sampling policy's region length",
    )
    budget.add_argument(
        "--max-k", type=_positive_int, default=6,
        help="cluster bound when --interval-length is given "
             "(default: %(default)s)",
    )
    budget.add_argument(
        "--warmup-intervals", type=_non_negative_int, default=4,
        help="warmup intervals when --interval-length is given "
             "(default: %(default)s)",
    )
    budget.add_argument("--json", action="store_true",
                        help="emit the report as JSON")

    doctor = sub.add_parser(
        "doctor",
        help="check the environment (cache/journal writability, worker "
             "spawn, lint baseline)",
    )
    doctor.add_argument("--cache-dir", type=_cache_directory, default=None,
                        metavar="DIR")
    doctor.add_argument("--journal-dir", type=_cache_directory, default=None,
                        metavar="DIR")
    doctor.add_argument(
        "--workers", default=None, metavar="HOST:PORT[,HOST:PORT...]",
        help="also preflight these 'repro worker' endpoints (handshake "
             "+ protocol version; unreachable workers fail the check)",
    )
    doctor.add_argument(
        "--cache-url", default=None, metavar="URL",
        help="also preflight this 'repro cache-serve' endpoint "
             "(handshake + stats; an unreachable server fails the check)",
    )

    worker = sub.add_parser(
        "worker",
        help="serve suite cells to a coordinator over TCP "
             "(--backend workers)",
    )
    worker.add_argument("--host", default="127.0.0.1",
                        help="address to bind (default: %(default)s)")
    worker.add_argument("--port", type=int, default=0,
                        help="TCP port (default: 0 = ephemeral)")
    worker.add_argument("--ready-file", default=None, metavar="FILE",
                        help="write host:port here once listening")
    worker.add_argument("--max-sessions", type=int, default=None,
                        metavar="N",
                        help="exit after N coordinator sessions")
    worker.add_argument("--sessions", type=_positive_int, default=1,
                        metavar="N",
                        help="concurrent coordinator sessions; >1 lets "
                             "'repro serve' tenants multiplex this worker "
                             "(default: %(default)s)")

    cache_serve = sub.add_parser(
        "cache-serve",
        help="serve a shared result cache over TCP (point sweeps at it "
             "with --cache-url)",
    )
    cache_serve.add_argument("--host", default="127.0.0.1",
                             help="address to bind (default: %(default)s)")
    cache_serve.add_argument("--port", type=int, default=0,
                             help="TCP port (default: 0 = ephemeral)")
    cache_serve.add_argument("--cache-dir", type=_cache_directory,
                             default=None, metavar="DIR",
                             help="cache directory to serve (default: "
                                  "$REPRO_CACHE_DIR or "
                                  "~/.cache/repro-mascot)")
    cache_serve.add_argument("--ready-file", default=None, metavar="FILE",
                             help="write host:port here once listening")
    cache_serve.add_argument("--max-sessions", type=int, default=None,
                             metavar="N",
                             help="exit after N client sessions")

    serve_http_p = sub.add_parser(
        "serve",
        help="async HTTP coordinator: POST grid submissions, stream "
             "per-cell results as NDJSON",
    )
    serve_http_p.add_argument("--host", default="127.0.0.1",
                              help="address to bind "
                                   "(default: %(default)s)")
    serve_http_p.add_argument("--port", type=int, default=0,
                              help="TCP port (default: 0 = ephemeral)")
    serve_http_p.add_argument("--ready-file", default=None, metavar="FILE",
                              help="write host:port here once listening")
    serve_http_p.add_argument("--workers", default=None,
                              metavar="HOST:PORT[,HOST:PORT...]",
                              help="repro worker endpoints every "
                                   "submission dispatches to (default: "
                                   "compute locally)")
    serve_http_p.add_argument("--jobs", type=_positive_int, default=1,
                              metavar="N",
                              help="local process count when no "
                                   "--workers (default: %(default)s)")
    serve_cache_args = serve_http_p.add_mutually_exclusive_group()
    serve_cache_args.add_argument("--cache-url", default=None,
                                  metavar="URL",
                                  help="tcp://host:port of a "
                                       "'repro cache-serve'")
    serve_cache_args.add_argument("--cache-dir", type=_cache_directory,
                                  default=None, metavar="DIR",
                                  help="local cache directory")
    serve_cache_args.add_argument("--no-cache", action="store_true",
                                  help="disable the result cache")

    return parser


def _cmd_simulate(args) -> int:
    trace = default_cache().get(args.benchmark, args.uops)
    policy = _sampling_arg(args)
    if policy is not None:
        stats = run_timing(
            trace, None, config=_CORES[args.core], engine=args.engine,
            sampling=policy,
            predictor_factory=lambda: make_predictor(args.predictor),
        )
    else:
        stats = run_timing(trace, make_predictor(args.predictor),
                           config=_CORES[args.core], engine=args.engine)
    rows = sorted(stats.as_dict().items())
    print(render_table(["metric", "value"], rows,
                       title=f"{args.benchmark} / {args.predictor} "
                             f"on {args.core}"))
    if getattr(stats, "sampling", None) is not None:
        print(_render_sampling_summary(stats.sampling))
    return 0


def _cmd_compare(args) -> int:
    policy = _sampling_arg(args)
    suite = run_ipc_suite(args.predictors, args.benchmarks, args.uops,
                          config=_CORES[args.core], engine=args.engine,
                          sampling=policy, **_suite_kwargs(args))
    benches = suite.benchmarks or list(next(iter(suite.ipc.values())))
    normalised = {p: suite.normalised(p) for p in args.predictors}

    def relative_ci(predictor, bench):
        meta = getattr(suite.stats.get(predictor, {}).get(bench), "sampling",
                       None)
        if meta is None or float(meta.get("estimate") or 0.0) <= 0.0:
            return None
        lo, hi = meta["ci"]
        return (float(hi) - float(lo)) / 2.0 / float(meta["estimate"])

    def cell(predictor, bench):
        if bench not in normalised[predictor]:
            return "FAIL"
        value = normalised[predictor][bench]
        rel = relative_ci(predictor, bench)
        rel_base = relative_ci(suite.baseline, bench)
        if rel is None or rel_base is None:
            return f"{value:.4f}"
        # First-order CI of a ratio: relative half-widths add.
        return f"{value:.4f}+-{value * (rel + rel_base):.4f}"

    rows = []
    for bench in benches:
        rows.append([bench]
                    + [cell(p, bench) for p in args.predictors])
    rows.append(["geomean"] + [
        f"{suite.geomean(p):.4f}" for p in args.predictors
    ])
    print(render_table(["benchmark", *args.predictors], rows,
                       title="IPC normalised to perfect MDP"))
    if policy is not None:
        sampled = next(
            (meta for p in args.predictors for bench in benches
             if (meta := getattr(suite.stats.get(p, {}).get(bench),
                                 "sampling", None)) is not None),
            None)
        if sampled is not None:
            print(f"sampled cells: interval_length="
                  f"{sampled['policy']['interval_length']}, "
                  f"max_k={sampled['policy']['max_k']}, "
                  f"{sampled['confidence']:.0%} CIs; values are "
                  f"reconstructions (docs/sampling.md)")
    if suite.failures:
        for name, per_bench in sorted(suite.failures.items()):
            for failure in per_bench.values():
                print(f"FAILED {failure.describe()}", file=sys.stderr)
        return 1
    return 0


def _cmd_accuracy(args) -> int:
    results = run_accuracy_suite(args.predictors, args.benchmarks, args.uops,
                                 sampling=_sampling_arg(args),
                                 **_suite_kwargs(args))
    rows = []
    failures = []
    for name, per_bench in results.items():
        runs = []
        for run in per_bench.values():
            if isinstance(run, CellFailure):
                failures.append(run)
            else:
                runs.append(run)
        total_fd = sum(r.accuracy.false_dependencies for r in runs)
        total_se = sum(r.accuracy.speculative_errors for r in runs)
        total = sum(r.accuracy.mispredictions for r in runs)
        rows.append([name, total, total_fd, total_se])
    print(render_table(
        ["predictor", "mispredictions", "false dependencies",
         "speculative errors"],
        rows, title="Prediction-accuracy sweep (Fig. 8 taxonomy)",
    ))
    if failures:
        for failure in failures:
            print(f"FAILED {failure.describe()}", file=sys.stderr)
        return 1
    return 0


_SAMPLED_FIGURES = frozenset({"fig7", "fig8", "fig9"})


def _cmd_figure(args) -> int:
    if args.sampling and args.name not in _SAMPLED_FIGURES:
        print(f"repro figure: --sampling is only supported for "
              f"{', '.join(sorted(_SAMPLED_FIGURES))} (got {args.name})",
              file=sys.stderr)
        return 2
    result = _FIGURES[args.name](args)
    print(result.render())
    failures = list(getattr(result, "failures", None) or [])
    if failures:
        for failure in failures:
            print(f"FAILED {failure.describe()}", file=sys.stderr)
        return 1
    return 0


def _cmd_profile(args) -> int:
    from .obs import CycleAccountingError
    from .obs.profile import profile_cell

    if args.benchmark is None or args.predictor is None:
        if args.metrics_file is None:
            print("repro profile: benchmark and predictor are required "
                  "unless --metrics-file is given", file=sys.stderr)
            return 2
        return _print_metrics_summary(args.metrics_file)

    policy = _sampling_arg(args)
    if policy is not None and args.measure_from is not None:
        print("repro profile: --measure-from and --sampling are mutually "
              "exclusive (sampled warmup is per-region)", file=sys.stderr)
        return 2
    report = profile_cell(args.benchmark, args.predictor, args.uops,
                          config=_CORES[args.core],
                          measure_from=args.measure_from,
                          sampling=policy)
    try:
        report.validate()
    except CycleAccountingError as error:
        print(f"cycle-accounting invariant violated: {error}",
              file=sys.stderr)
        return 1
    if args.json:
        import json
        print(json.dumps(report.to_dict(), sort_keys=True))
    else:
        print(report.render())
    if args.metrics_file is not None:
        return _print_metrics_summary(args.metrics_file)
    return 0


def _print_metrics_summary(path: str) -> int:
    from .obs import render_metrics_summary, summarize_metrics

    summary = summarize_metrics(path)
    print(f"[metrics] {render_metrics_summary(summary)}")
    return 0


def _cmd_bench_baseline(args) -> int:
    from .experiments.bench_baseline import (
        DEFAULT_SAMPLED_CELLS,
        check_against_baseline,
        load_baseline,
        run_baseline,
        write_baseline,
    )

    sampled_cells = () if args.skip_sampled else DEFAULT_SAMPLED_CELLS
    print(f"measuring engine throughput (best of {args.repeats}):")
    current = run_baseline(repeats=args.repeats, verbose=True,
                           sampled_cells=sampled_cells)
    if not args.check:
        if args.skip_sampled:
            print("repro bench-baseline: refusing to write a baseline "
                  "without the sampled cell (--skip-sampled is for "
                  "--check runs)", file=sys.stderr)
            return 2
        path = write_baseline(current, Path(args.output))
        print(f"wrote {path}")
        return 0
    try:
        committed = load_baseline(Path(args.output))
    except (OSError, ValueError) as error:
        print(f"cannot load baseline {args.output}: {error}",
              file=sys.stderr)
        return 1
    violations = check_against_baseline(current, committed,
                                        tolerance=args.tolerance)
    for violation in violations:
        print(f"REGRESSION {violation}", file=sys.stderr)
    if violations:
        return 1
    print(f"all cells within {args.tolerance:.0%} of the committed speedups")
    return 0


def _cmd_error_budget(args) -> int:
    from .experiments.error_budget import (
        check_error_budget,
        render_error_budget,
        run_error_budget,
    )

    policy = None
    if args.interval_length is not None:
        from .sampling import SamplingPolicy
        policy = SamplingPolicy(interval_length=args.interval_length,
                                max_k=args.max_k,
                                warmup_intervals=args.warmup_intervals)
    if not args.json:
        print(f"measuring sampled reconstruction error "
              f"({args.uops:,} uops per cell):", flush=True)
    report = run_error_budget(
        benchmarks=tuple(args.benchmarks), num_uops=args.uops,
        predictor=args.predictor, policy=policy, engine=args.engine,
        verbose=not args.json)
    if args.json:
        import json
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_error_budget(report))
    violations = check_error_budget(report)
    for violation in violations:
        print(f"BUDGET {violation}", file=sys.stderr)
    return 1 if violations else 0


def _cmd_gen_trace(args) -> int:
    trace = generate_trace(args.benchmark, args.uops,
                           program_seed=args.program_seed,
                           trace_seed=args.trace_seed)
    write_trace(trace, args.output, benchmark=args.benchmark)
    print(f"wrote {len(trace):,} micro-ops to {args.output}")
    return 0


def _cmd_validate(args) -> int:
    trace = read_trace(args.trace_file)
    report = validate_trace(
        trace, store_window=args.store_window,
        instr_window=args.instr_window, strict=False,
    )
    print(f"{args.trace_file}: {report.uops:,} micro-ops, "
          f"{report.loads:,} loads ({report.dependent_loads:,} dependent), "
          f"{report.stores:,} stores")
    if report.ok:
        print("all invariants hold")
        return 0
    for error in report.errors:
        print(f"  ERROR {error}")
    return 1


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``python -m repro``; returns the exit status."""
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "accuracy":
        return _cmd_accuracy(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "sizes":
        print(figures.table2_sizes().render())
        return 0
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "bench-baseline":
        return _cmd_bench_baseline(args)
    if args.command == "error-budget":
        return _cmd_error_budget(args)
    if args.command == "gen-trace":
        return _cmd_gen_trace(args)
    if args.command == "validate":
        return _cmd_validate(args)
    if args.command == "lint":
        return lint_cli.run(args)
    if args.command == "doctor":
        from .doctor import run_doctor
        return run_doctor(cache_dir=args.cache_dir,
                          journal_dir=args.journal_dir,
                          workers=args.workers,
                          cache_url=args.cache_url)
    if args.command == "worker":
        from .experiments.worker import serve
        serve(host=args.host, port=args.port, ready_file=args.ready_file,
              max_sessions=args.max_sessions, sessions=args.sessions)
        return 0
    if args.command == "cache-serve":
        from .experiments.cache_service import serve_cache
        serve_cache(host=args.host, port=args.port,
                    directory=args.cache_dir, ready_file=args.ready_file,
                    max_sessions=args.max_sessions)
        return 0
    if args.command == "serve":
        from .experiments.serve import serve_http
        serve_http(host=args.host, port=args.port, workers=args.workers,
                   jobs=args.jobs, cache=_cache_arg(args),
                   ready_file=args.ready_file)
        return 0
    raise AssertionError(f"unhandled command {args.command}")


if __name__ == "__main__":
    sys.exit(main())
