"""Append-only JSONL run journal enabling crash recovery and resume.

Every journaled :func:`~repro.experiments.parallel.execute_cells` run
writes one ``<run-id>.jsonl`` file under the journal directory
(``$REPRO_JOURNAL_DIR`` or ``<result-cache-dir>/journals``), recording one
JSON object per line:

* ``run-start``  — schema version, run id, cell count and every cell key.
* ``dispatch``   — a cell attempt was handed to a worker (or run inline).
* ``lease``      — distributed backends only: a per-cell lease was granted,
  renewed (heartbeat) or expired; lets a restarted coordinator see which
  cells were in flight on which worker when it died.
* ``ok``         — a cell completed; carries the **encoded result payload**
  (the same encoding as the result cache), so a journal is a self-contained
  recovery store: ``--resume <run-id>`` restores completed cells
  bit-identically even with the result cache disabled.
* ``fail``       — a cell exhausted its retries; carries the failure kind.
* ``run-end``    — summary counts (absent if the supervisor was killed).

The file is append-only and flushed per record, so a run killed at any
instant leaves at worst one torn final line, which the loader skips.  A
resumed run writes a *new* journal (fresh run id) re-recording carried
results, so resumes chain indefinitely.

Run ids derive from the sorted cell keys (``run-<digest12>``), suffixed
``-2``, ``-3``… when the same grid is journaled repeatedly — deterministic,
content-addressed, and free of clock or entropy reads (det-* clean).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..common.hashing import stable_digest
from .result_cache import decode_result, default_cache_dir, encode_result

__all__ = [
    "JOURNAL_DIR_ENV",
    "JOURNAL_SCHEMA_VERSION",
    "JournalRun",
    "JournalState",
    "RunJournal",
    "default_journal_dir",
    "derive_run_id",
]

#: Environment variable overriding the default journal directory.
JOURNAL_DIR_ENV = "REPRO_JOURNAL_DIR"

#: Bump when the record grammar changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1


def default_journal_dir() -> Path:
    """``$REPRO_JOURNAL_DIR`` or ``<default result-cache dir>/journals``."""
    override = os.environ.get(JOURNAL_DIR_ENV)
    if override:
        return Path(override)
    return default_cache_dir() / "journals"


def derive_run_id(keys: Sequence[str]) -> str:
    """Content-addressed run id over the (sorted) cell keys."""
    return "run-" + stable_digest(sorted(keys))[:12]


@dataclass
class JournalState:
    """Replayable view of one (or several merged) journal files."""

    run_id: str
    #: key -> decoded result object for every cell that completed.
    completed: Dict[str, object] = field(default_factory=dict)
    #: key -> final failure record for cells that never completed.
    failed: Dict[str, dict] = field(default_factory=dict)
    #: key -> last lease record for cells in flight when the journal ends
    #: (granted/renewed but never settled): the cells a crashed
    #: coordinator had leased out.  Resume recomputes them like any other
    #: incomplete cell — the map is for observability and tests.
    leased: Dict[str, dict] = field(default_factory=dict)


class JournalRun:
    """An open, append-only journal file for one execute_cells run."""

    def __init__(self, path: Path, run_id: str):
        self.path = path
        self.run_id = run_id
        self.ok = 0
        self.failed = 0
        self._file = open(path, "a", encoding="utf-8")

    def _write(self, record: dict) -> None:
        if self._file is None:
            return
        self._file.write(json.dumps(record, sort_keys=True) + "\n")
        self._file.flush()

    def record_start(self, keys: Sequence[str]) -> None:
        self._write({"event": "run-start", "v": JOURNAL_SCHEMA_VERSION,
                     "run_id": self.run_id, "cells": len(keys),
                     "keys": list(keys)})

    def record_dispatch(self, key: str, attempt: int) -> None:
        self._write({"event": "dispatch", "key": key, "attempt": attempt})

    def record_ok(self, key: str, attempts: int, duration: float,
                  source: str, result: object) -> None:
        """``source`` is ``computed``, ``cache`` or ``journal`` (resume)."""
        self.ok += 1
        self._write({"event": "ok", "key": key, "attempts": attempts,
                     "duration": round(duration, 6), "source": source,
                     "result": encode_result(result)})

    def record_lease(self, action: str, key: str, lease: Optional[str],
                     worker: str) -> None:
        """``action`` is ``grant``, ``renew`` or ``expire``."""
        self._write({"event": "lease", "action": action, "key": key,
                     "lease": lease, "worker": worker})

    def record_fail(self, key: str, attempts: int, kind: str,
                    message: str) -> None:
        self.failed += 1
        self._write({"event": "fail", "key": key, "attempts": attempts,
                     "kind": kind, "message": message})

    def finish(self) -> None:
        """Write the run-end summary and close the file (idempotent)."""
        if self._file is None:
            return
        self._write({"event": "run-end", "ok": self.ok,
                     "failed": self.failed})
        self._file.close()
        self._file = None


class RunJournal:
    """Factory/loader for run journals under one directory."""

    def __init__(self, directory: Union[str, Path, None] = None):
        self.directory = (Path(directory) if directory
                          else default_journal_dir())
        #: Run id of the most recent :meth:`begin` on this instance; lets
        #: callers (CLI, tests) name the run they just produced.
        self.last_run_id: Optional[str] = None

    def path_for(self, run_id: str) -> Path:
        return self.directory / f"{run_id}.jsonl"

    def probe_writable(self) -> Optional[str]:
        """None when the directory is writable, else the failure reason."""
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            probe = self.directory / f".probe-{os.getpid()}"
            probe.write_text("ok")
            probe.unlink()
        except OSError as error:
            return str(error)
        return None

    def begin(self, keys: Sequence[str]) -> JournalRun:
        """Open a new journal for a run over cells with these keys."""
        self.directory.mkdir(parents=True, exist_ok=True)
        base = derive_run_id(keys)
        run_id, counter = base, 1
        while self.path_for(run_id).exists():
            counter += 1
            run_id = f"{base}-{counter}"
        run = JournalRun(self.path_for(run_id), run_id)
        run.record_start(keys)
        self.last_run_id = run_id
        return run

    def load(self, run_id: str) -> JournalState:
        """Replay a journal file into a :class:`JournalState`.

        Undecodable lines (a torn tail from a killed run) and records for
        unknown events are skipped; an ``ok`` record supersedes any earlier
        ``fail`` for the same key.
        """
        path = self.path_for(run_id)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            raise FileNotFoundError(
                f"no journal {run_id!r} under {self.directory} "
                f"({error})") from None
        state = JournalState(run_id=run_id)
        for line in text.splitlines():
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn tail of a killed run
            if not isinstance(record, dict):
                continue
            event = record.get("event")
            try:
                if event == "ok":
                    state.completed[record["key"]] = decode_result(
                        record["result"])
                    state.failed.pop(record["key"], None)
                    state.leased.pop(record["key"], None)
                elif event == "fail":
                    if record["key"] not in state.completed:
                        state.failed[record["key"]] = record
                    state.leased.pop(record["key"], None)
                elif event == "lease":
                    if record.get("action") in ("grant", "renew"):
                        if record["key"] not in state.completed:
                            state.leased[record["key"]] = record
                    else:  # expire: the cell is back in the queue
                        state.leased.pop(record["key"], None)
            except (KeyError, TypeError, ValueError):
                continue  # malformed record: skip, never abort a resume
        return state

    def load_many(self, run_ids: Sequence[str]) -> JournalState:
        """Union of several runs' states; later runs win on conflicts."""
        merged = JournalState(run_id="+".join(run_ids))
        for run_id in run_ids:
            state = self.load(run_id)
            merged.completed.update(state.completed)
            merged.failed.update(state.failed)
            merged.leased.update(state.leased)
        for key in merged.completed:
            merged.failed.pop(key, None)
            merged.leased.pop(key, None)
        return merged
