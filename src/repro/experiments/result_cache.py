"""Content-addressed on-disk cache of suite cell results.

A *cell* is the atomic unit of suite work — one ``(benchmark, predictor,
core config)`` simulation (see :mod:`repro.experiments.parallel`).  Cells
are pure functions of their parameters plus the simulator's code, so their
results can be memoised on disk: a full-suite sweep re-run after editing
one predictor only recomputes that predictor's cells.

Keying
------
Each cell's key is :func:`repro.common.hashing.stable_digest` over:

* every trace-generation parameter (benchmark, length, seeds, windows),
* the run parameters (mode, warmup, F1 period),
* a **predictor fingerprint** — the registry name, the defining class, a
  dump of its config dataclass when it has one, and a hash of the source
  of its defining module plus the shared predictor machinery
  (``predictors/base|configs|tables.py``),
* the core configuration (timing mode), and
* a **code-version salt** — a hash of every source file of the shared
  simulation substrate (``trace``, ``core``, ``memory``, ``branch``,
  ``analysis``, ``common`` and the runner itself).

Editing shared machinery therefore invalidates everything; editing one
predictor module invalidates only cells naming a predictor defined there.
Changes that the fingerprint cannot see (e.g. constructor arguments passed
by a factory registered in ``suite.py`` for a predictor without a config
dataclass) are not detected — bump :data:`CACHE_SCHEMA_VERSION` or use
``--no-cache`` when in doubt.

Storage
-------
One JSON file per cell under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro-mascot/``), named ``<key>.json`` and carrying the key
again in its body plus a digest of the result payload, so truncated,
bit-flipped or misnamed files verifiably fail decode.  Entries are
written atomically (temp file + ``os.replace``), so a worker killed
mid-store can never leave a torn entry.  On read, a *corrupt* file
(unparsable, wrong key, digest mismatch, undecodable result) is moved to
a ``corrupt/`` quarantine subdirectory and treated as a miss — never an
error, and never rescanned; a *stale* file (older schema version) is a
plain miss that the recomputed result overwrites.  All cached payloads
are integers (or exact-round-trip floats for F1 profiles), so a cache
hit is bit-identical to recomputation.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import sys
import time
from dataclasses import asdict, is_dataclass
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..common.hashing import stable_digest
from ..core.stats import PipelineStats
from .runner import PredictionRunResult

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "CacheLock",
    "ResultCache",
    "cell_key",
    "decode_result",
    "default_cache_dir",
    "encode_result",
    "predictor_fingerprint",
    "shared_code_salt",
]

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every existing cache entry (e.g. when the meaning of
#: a keyed field changes without its value changing).  v2 added the stored
#: result digest verified on every read.
CACHE_SCHEMA_VERSION = 2

#: Root of the installed ``repro`` package (``.../src/repro``).
_PACKAGE_ROOT = Path(__file__).resolve().parent.parent

#: Source trees/files every cell result depends on, relative to the
#: package root.  ``predictors/`` is deliberately absent: predictor code is
#: salted per predictor by :func:`predictor_fingerprint` so editing one
#: predictor module leaves other predictors' cells valid.
_SHARED_SOURCES = (
    "trace", "core", "memory", "branch", "analysis", "common", "sampling",
    "experiments/runner.py",
    # Telemetry counters flow into cached PredictionRunResults, so their
    # semantics are part of the result; the rest of repro.obs (cycle
    # accounting, profile rendering, metrics emission) never touches
    # cacheable payloads and deliberately stays out of the salt.
    "obs/telemetry.py",
)

#: Predictor machinery shared by every predictor implementation.
_PREDICTOR_COMMON_SOURCES = (
    "predictors/base.py", "predictors/configs.py", "predictors/tables.py",
)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-mascot``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-mascot"


@lru_cache(maxsize=None)
def _source_digest(relative_parts: tuple) -> str:
    """Hash the named source files/trees under the package root.

    A missing or typo'd entry is a hard error: ``rglob`` on a nonexistent
    directory yields nothing, so before this check a bad entry silently
    contributed *zero bytes* to the salt — exactly the failure mode
    (stale cache hits after edits) the salt exists to prevent.
    """
    digest = hashlib.sha256()
    for rel in relative_parts:
        path = _PACKAGE_ROOT / rel
        if path.is_file():
            files = [path]
        elif path.is_dir():
            files = sorted(path.rglob("*.py"))
        else:
            raise ValueError(
                f"cache-salt source entry {rel!r} does not exist under "
                f"{_PACKAGE_ROOT}; fix the entry (it would otherwise "
                "contribute nothing to the code-version salt)"
            )
        if not files:
            raise ValueError(
                f"cache-salt source entry {rel!r} matches no Python files "
                f"under {_PACKAGE_ROOT}; it contributes nothing to the "
                "code-version salt"
            )
        for source in files:
            digest.update(str(source.relative_to(_PACKAGE_ROOT)).encode())
            digest.update(source.read_bytes())
    return digest.hexdigest()


def shared_code_salt() -> str:
    """Code-version salt over the shared simulation substrate."""
    return _source_digest(_SHARED_SOURCES)


@lru_cache(maxsize=None)
def predictor_fingerprint(name: str) -> Dict[str, object]:
    """Identity of a registered predictor for cache keying.

    Builds the predictor once (cheap — table allocation only) to observe
    the class the registry actually constructs and the config it was
    given, then hashes the class's defining module together with the
    shared predictor machinery.
    """
    from .suite import make_predictor  # local import: suite imports us

    predictor = make_predictor(name)
    cls = type(predictor)
    module = sys.modules[cls.__module__]
    module_file = Path(getattr(module, "__file__", ""))
    try:
        sources = (str(module_file.resolve().relative_to(_PACKAGE_ROOT)),)
    except ValueError:  # defined outside the package; name alone must do
        sources = ()
    config = getattr(predictor, "config", None)
    return {
        "name": name,
        "class": f"{cls.__module__}.{cls.__qualname__}",
        "config": asdict(config) if is_dataclass(config) else None,
        "code": _source_digest(sources + _PREDICTOR_COMMON_SOURCES),
    }


def encode_result(result: Union[PipelineStats, PredictionRunResult]) -> Dict:
    """JSON-serialisable envelope for a cell result (cache and journal)."""
    if isinstance(result, PipelineStats):
        return {"kind": "timing", "data": result.to_dict()}
    if isinstance(result, PredictionRunResult):
        return {"kind": "accuracy", "data": result.to_dict()}
    raise TypeError(f"uncacheable result type {type(result).__name__}")


def decode_result(payload: Dict) -> Union[PipelineStats, PredictionRunResult]:
    """Inverse of :func:`encode_result`."""
    kind = payload["kind"]
    if kind == "timing":
        return PipelineStats.from_dict(payload["data"])
    if kind == "accuracy":
        return PredictionRunResult.from_dict(payload["data"])
    raise ValueError(f"unknown cached result kind {kind!r}")


class CacheLock:
    """Advisory cross-process lock file for shared cache directories.

    ``os.replace`` already makes each local store atomic, but a
    multi-host sweep (``WorkerBackend`` coordinators on several machines
    pointed at one NFS-mounted cache) can race two writers on the same
    key: rename atomicity across NFS clients is weaker, and concurrent
    quarantine moves can collide.  The lock is an ``O_CREAT | O_EXCL``
    file next to the entry — the one creation primitive that is atomic on
    NFS — holding a per-acquire ownership token (``pid:nonce``).

    Ownership discipline: every unlink is conditional on the lock file
    still holding the token the unlinker observed.  ``release`` only
    removes the file when it still carries *this* acquire's token (a
    stale-breaker may have removed our lock and a third party re-acquired
    it — unconditional unlink would steal theirs), and a stale-break only
    removes the file when it still carries the token whose age was judged
    stale (the holder may have released and someone else re-acquired
    between ``stat`` and ``unlink``).

    Deliberately *best-effort*: if the lock cannot be acquired within
    ``timeout`` seconds the caller proceeds unlocked (counted by the
    owner, surfaced in doctor/metrics) rather than stalling a sweep —
    losing the race costs at worst one redundant store of bit-identical
    bytes.  A lock file older than ``stale_after`` seconds is broken: its
    holder died between acquire and release, and no store ever takes
    anywhere near that long.

    This lock-file discipline is the *filesystem-only legacy path* for
    sharing a cache directory across hosts; the network cache service
    (:mod:`repro.experiments.cache_service`) serialises writers in one
    process and needs none of it.
    """

    #: Per-process nonce source making each acquire's token unique even
    #: when one process re-acquires the same lock path (deterministic —
    #: no entropy reaches any result payload).
    _NONCES = itertools.count()

    def __init__(self, path: Union[str, Path], timeout: float = 2.0,
                 stale_after: float = 30.0):
        self.path = Path(path)
        self.timeout = float(timeout)
        self.stale_after = float(stale_after)
        self.acquired = False
        self.token: Optional[str] = None

    def acquire(self) -> bool:
        """Try to take the lock; False means *proceed unlocked*."""
        deadline = time.monotonic() + self.timeout
        token = f"{os.getpid()}:{next(self._NONCES)}"
        while True:
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                self._break_if_stale()
                if time.monotonic() >= deadline:
                    return False
                time.sleep(0.05)
                continue
            except OSError:
                return False  # unwritable directory: proceed unlocked
            try:
                os.write(fd, token.encode())
            finally:
                os.close(fd)
            self.acquired = True
            self.token = token
            return True

    def _read_state(self) -> Optional[Tuple[str, float]]:
        """Current ``(token, age_seconds)`` of the lock file, or None."""
        try:
            token = self.path.read_text()
            # Wall-clock age of the lock file vs its mtime: gates crash
            # cleanup only, never results.
            # repro-lint: allow(det-time) -- lock-file age for stale-break
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return None  # raced another breaker, or the holder released
        return token, age

    def _unlink_if_token(self, token: str) -> bool:
        """Remove the lock file iff it still holds ``token``.

        The token check closes the ownership races: a lock that changed
        hands between our last observation and now presents a different
        token and is left alone.  (A raced re-acquire *between* the check
        and the unlink remains theoretically possible with plain POSIX
        primitives, but requires a full release+re-acquire cycle inside
        that microsecond window — compared to the seconds-wide stat/unlink
        window this replaces.)
        """
        try:
            if self.path.read_text() != token:
                return False
            self.path.unlink()
            return True
        except OSError:
            return False

    def _break_if_stale(self) -> None:
        """Remove a lock whose holder evidently died; best-effort."""
        observed = self._read_state()
        if observed is None:
            return
        token, age = observed
        if age > self.stale_after:
            self._unlink_if_token(token)

    def release(self) -> None:
        if not self.acquired:
            return
        self.acquired = False
        token, self.token = self.token, None
        if token is not None:
            self._unlink_if_token(token)

    def __enter__(self) -> "CacheLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class ResultCache:
    """One JSON file per cell key under a cache directory.

    ``hits`` / ``misses`` / ``stores`` / ``quarantined`` counters
    instrument test assertions ("a warm sweep performs zero re-runs",
    "corruption never propagates") and ``verbose`` suite output.

    ``read_only`` degrades the cache to load-only: hits are still served
    (a warm shared or CI-mounted cache keeps performing zero simulations)
    while :meth:`store` and quarantine moves become no-ops.  Set by
    :func:`~repro.experiments.parallel.resolve_cache` when the directory
    is not writable.
    """

    def __init__(self, directory: Union[str, Path, None] = None,
                 read_only: bool = False):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.read_only = read_only
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0
        #: Stores/quarantines that proceeded unlocked after losing the
        #: lock race past its timeout (harmless locally; a signal that a
        #: shared cache directory is congested or its FS is slow).
        self.lock_timeouts = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    @property
    def quarantine_dir(self) -> Path:
        """Where corrupt entries are moved; never consulted on load."""
        return self.directory / "corrupt"

    def probe_writable(self) -> Optional[str]:
        """None when the directory is writable, else the failure reason.

        Used by :func:`~repro.experiments.parallel.resolve_cache` to
        degrade to read-only mode *before* a sweep starts rather than
        failing on the first ``store`` hours in, and by ``repro doctor``.
        """
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            probe = self.directory / f".probe-{os.getpid()}"
            probe.write_text("ok")
            probe.unlink()
        except OSError as error:
            return str(error)
        return None

    def probe_lock(self) -> Optional[str]:
        """None when a lock file can be taken and released, else the reason.

        ``repro doctor`` preflight for shared cache directories: some
        network filesystems advertise writability yet break ``O_EXCL``
        creation semantics, which would silently disable the concurrent
        -writer discipline below.
        """
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as error:
            return str(error)
        lock = CacheLock(self.directory / f".probe-{os.getpid()}.lock",
                         timeout=0.5)
        if not lock.acquire():
            return "could not create an O_EXCL lock file"
        if lock.acquire():  # a second grab must fail while held
            lock.release()
            return "lock file was not exclusive (O_EXCL not honoured)"
        lock.release()
        return None

    def _lock_for(self, path: Path) -> CacheLock:
        return CacheLock(path.with_name(path.name + ".lock"))

    def contains(self, key: str) -> bool:
        """Whether an entry file exists for ``key`` (no verification).

        Cheap presence probe used to skip redundant stores; a corrupt
        entry that would fail :meth:`load` still counts as present (the
        next load quarantines it).
        """
        return self.path_for(key).exists()

    def load_encoded(self, key: str) -> Optional[Dict]:
        """Verified *encoded* payload for ``key``, or None.

        The shared verification half of :meth:`load` — also the server
        side of the network cache service, which ships encoded payloads
        over the wire without decoding them.  A missing file or an entry
        from an older schema version is a plain miss (the recomputed
        result overwrites it).  A *corrupt* file — unparsable, wrong
        embedded key, digest mismatch, undecodable result — is
        quarantined to ``corrupt/`` so it is never rescanned and remains
        available for post-mortems.  Counts the hit/miss either way.
        """
        path = self.path_for(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
            if payload.get("v") != CACHE_SCHEMA_VERSION:
                self.misses += 1  # stale schema: plain miss, no quarantine
                return None
            if payload.get("key") != key:
                raise ValueError("embedded key does not match filename")
            encoded = payload["result"]
            if payload.get("digest") != stable_digest(encoded):
                raise ValueError("result digest mismatch")
            decode_result(encoded)  # undecodable results are corrupt too
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return encoded

    def load(self, key: str) -> Optional[object]:
        """Decoded result for ``key``, or None on miss/staleness/corruption."""
        encoded = self.load_encoded(key)
        if encoded is None:
            return None
        return decode_result(encoded)

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside; best-effort, never raises."""
        if self.read_only:
            return  # the entry simply stays a miss
        try:
            lock = self._lock_for(path)
            if not lock.acquire():
                self.lock_timeouts += 1
            try:
                qdir = self.quarantine_dir
                qdir.mkdir(parents=True, exist_ok=True)
                target = qdir / path.name
                counter = 0
                while target.exists():
                    counter += 1
                    target = qdir / f"{path.name}.{counter}"
                os.replace(path, target)
                self.quarantined += 1
            finally:
                lock.release()
        except OSError:
            pass  # read-only cache: the entry simply stays a miss

    def store_encoded(self, key: str, encoded: Dict) -> None:
        """Atomically persist an already-encoded payload under ``key``.

        The writing half of :meth:`store` — also the server side of the
        network cache service.  The temp-file + ``os.replace`` dance
        guarantees a reader (or a worker killed mid-write) can never
        observe a torn entry, and a per-entry :class:`CacheLock`
        serialises concurrent writers of the same key on shared
        filesystems (several coordinators warming one NFS cache).  Losing
        the lock race past its timeout downgrades to the unlocked store —
        still atomic locally — and bumps ``lock_timeouts``.  A read-only
        cache skips the store silently (the warning was issued once, at
        resolve time).  A write that fails partway (disk full, killed
        writer) removes its temp file on the way out instead of stranding
        ``<key>.json.tmp<pid>`` forever.
        """
        if self.read_only:
            return
        payload = {
            "v": CACHE_SCHEMA_VERSION,
            "key": key,
            "digest": stable_digest(encoded),
            "result": encoded,
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        lock = self._lock_for(path)
        if not lock.acquire():
            self.lock_timeouts += 1
        try:
            tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
            try:
                tmp.write_text(json.dumps(payload))
                os.replace(tmp, path)
            finally:
                try:
                    tmp.unlink()  # no-op after a successful os.replace
                except OSError:
                    pass
            self.stores += 1
        finally:
            lock.release()

    def store(self, key: str, result: object) -> None:
        """Atomically persist ``result`` under ``key`` (see store_encoded)."""
        if self.read_only:
            return
        self.store_encoded(key, encode_result(result))

    @property
    def counters(self) -> Dict[str, int]:
        """Counter snapshot for metrics sweep records and doctor output."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "lock_timeouts": self.lock_timeouts,
        }

    def orphan_tmp_files(self) -> List[Path]:
        """Stranded ``<key>.json.tmp<pid>`` files in the cache directory.

        Pre-fix writers (and writers killed between ``write_text`` and
        ``os.replace``, which no ``finally`` can save) leave temp files
        that are never looked at again.  ``repro doctor`` counts and
        sweeps them.
        """
        try:
            return sorted(p for p in self.directory.glob("*.json.tmp*")
                          if p.is_file())
        except OSError:
            return []

    def sweep_orphan_tmp(self, min_age: float = 60.0) -> int:
        """Unlink orphaned temp files older than ``min_age`` seconds.

        The age guard avoids racing a live writer mid-store (stores
        complete in milliseconds; a minute-old temp file has no owner).
        Returns the number removed.
        """
        removed = 0
        for path in self.orphan_tmp_files():
            try:
                # repro-lint: allow(det-time) -- temp-file age gates cleanup only
                age = time.time() - path.stat().st_mtime
                if age >= min_age:
                    path.unlink()
                    removed += 1
            except OSError:
                continue
        return removed


def cell_key(spec) -> str:
    """Content-address of one :class:`~repro.experiments.parallel.CellSpec`.

    Any single-field change — trace seed, window, warmup, predictor
    config, core config, simulator source — yields a different key.
    """
    core = spec.config
    return stable_digest({
        "v": CACHE_SCHEMA_VERSION,
        "mode": spec.mode,
        "trace": {
            "benchmark": spec.benchmark,
            "num_uops": spec.num_uops,
            "program_seed": spec.program_seed,
            "trace_seed": spec.trace_seed,
            "store_window": spec.store_window,
            "instr_window": spec.instr_window,
        },
        "run": {
            "warmup": spec.warmup,
            "f1_period": spec.f1_period,
            "track_f1": spec.track_f1,
            "telemetry": spec.telemetry,
            "engine": getattr(spec, "engine", "scalar"),
            # Sampled cells are keyed by the full policy: any knob change
            # (interval length, k bound, warmup, seed, CI parameters)
            # selects different regions or reconstructs differently, so it
            # must be a different cell.  The *outcome* digest of the
            # selection lives in the result's sampling metadata — the
            # coordinator keying a cell may not have generated the trace.
            "sampling": (spec.sampling.to_dict()
                         if getattr(spec, "sampling", None) is not None
                         else None),
        },
        "predictor": predictor_fingerprint(spec.predictor),
        "core": asdict(core) if core is not None else None,
        "code": shared_code_salt(),
    })
