"""Content-addressed on-disk cache of suite cell results.

A *cell* is the atomic unit of suite work — one ``(benchmark, predictor,
core config)`` simulation (see :mod:`repro.experiments.parallel`).  Cells
are pure functions of their parameters plus the simulator's code, so their
results can be memoised on disk: a full-suite sweep re-run after editing
one predictor only recomputes that predictor's cells.

Keying
------
Each cell's key is :func:`repro.common.hashing.stable_digest` over:

* every trace-generation parameter (benchmark, length, seeds, windows),
* the run parameters (mode, warmup, F1 period),
* a **predictor fingerprint** — the registry name, the defining class, a
  dump of its config dataclass when it has one, and a hash of the source
  of its defining module plus the shared predictor machinery
  (``predictors/base|configs|tables.py``),
* the core configuration (timing mode), and
* a **code-version salt** — a hash of every source file of the shared
  simulation substrate (``trace``, ``core``, ``memory``, ``branch``,
  ``analysis``, ``common`` and the runner itself).

Editing shared machinery therefore invalidates everything; editing one
predictor module invalidates only cells naming a predictor defined there.
Changes that the fingerprint cannot see (e.g. constructor arguments passed
by a factory registered in ``suite.py`` for a predictor without a config
dataclass) are not detected — bump :data:`CACHE_SCHEMA_VERSION` or use
``--no-cache`` when in doubt.

Storage
-------
One JSON file per cell under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro-mascot/``), named ``<key>.json`` and carrying the key
again in its body so truncated or corrupt files verifiably fail decode.
Any unreadable/undecodable file is treated as a miss, never an error.
All cached payloads are integers (or exact-round-trip floats for F1
profiles), so a cache hit is bit-identical to recomputation.
"""

from __future__ import annotations

import hashlib
import json
import os
import sys
from dataclasses import asdict, is_dataclass
from functools import lru_cache
from pathlib import Path
from typing import Dict, Optional, Union

from ..common.hashing import stable_digest
from ..core.stats import PipelineStats
from .runner import PredictionRunResult

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "ResultCache",
    "cell_key",
    "default_cache_dir",
    "predictor_fingerprint",
    "shared_code_salt",
]

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Bump to invalidate every existing cache entry (e.g. when the meaning of
#: a keyed field changes without its value changing).
CACHE_SCHEMA_VERSION = 1

#: Root of the installed ``repro`` package (``.../src/repro``).
_PACKAGE_ROOT = Path(__file__).resolve().parent.parent

#: Source trees/files every cell result depends on, relative to the
#: package root.  ``predictors/`` is deliberately absent: predictor code is
#: salted per predictor by :func:`predictor_fingerprint` so editing one
#: predictor module leaves other predictors' cells valid.
_SHARED_SOURCES = (
    "trace", "core", "memory", "branch", "analysis", "common",
    "experiments/runner.py",
)

#: Predictor machinery shared by every predictor implementation.
_PREDICTOR_COMMON_SOURCES = (
    "predictors/base.py", "predictors/configs.py", "predictors/tables.py",
)


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR`` or ``~/.cache/repro-mascot``."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return Path(override)
    return Path.home() / ".cache" / "repro-mascot"


@lru_cache(maxsize=None)
def _source_digest(relative_parts: tuple) -> str:
    """Hash the named source files/trees under the package root."""
    digest = hashlib.sha256()
    for rel in relative_parts:
        path = _PACKAGE_ROOT / rel
        files = [path] if path.is_file() else sorted(path.rglob("*.py"))
        for source in files:
            digest.update(str(source.relative_to(_PACKAGE_ROOT)).encode())
            digest.update(source.read_bytes())
    return digest.hexdigest()


def shared_code_salt() -> str:
    """Code-version salt over the shared simulation substrate."""
    return _source_digest(_SHARED_SOURCES)


@lru_cache(maxsize=None)
def predictor_fingerprint(name: str) -> Dict[str, object]:
    """Identity of a registered predictor for cache keying.

    Builds the predictor once (cheap — table allocation only) to observe
    the class the registry actually constructs and the config it was
    given, then hashes the class's defining module together with the
    shared predictor machinery.
    """
    from .suite import make_predictor  # local import: suite imports us

    predictor = make_predictor(name)
    cls = type(predictor)
    module = sys.modules[cls.__module__]
    module_file = Path(getattr(module, "__file__", ""))
    try:
        sources = (str(module_file.resolve().relative_to(_PACKAGE_ROOT)),)
    except ValueError:  # defined outside the package; name alone must do
        sources = ()
    config = getattr(predictor, "config", None)
    return {
        "name": name,
        "class": f"{cls.__module__}.{cls.__qualname__}",
        "config": asdict(config) if is_dataclass(config) else None,
        "code": _source_digest(sources + _PREDICTOR_COMMON_SOURCES),
    }


def _encode_result(result: Union[PipelineStats, PredictionRunResult]) -> Dict:
    if isinstance(result, PipelineStats):
        return {"kind": "timing", "data": result.to_dict()}
    if isinstance(result, PredictionRunResult):
        return {"kind": "accuracy", "data": result.to_dict()}
    raise TypeError(f"uncacheable result type {type(result).__name__}")


def _decode_result(payload: Dict) -> Union[PipelineStats, PredictionRunResult]:
    kind = payload["kind"]
    if kind == "timing":
        return PipelineStats.from_dict(payload["data"])
    if kind == "accuracy":
        return PredictionRunResult.from_dict(payload["data"])
    raise ValueError(f"unknown cached result kind {kind!r}")


class ResultCache:
    """One JSON file per cell key under a cache directory.

    ``hits`` / ``misses`` / ``stores`` counters instrument test assertions
    ("a warm sweep performs zero re-runs") and ``verbose`` suite output.
    """

    def __init__(self, directory: Union[str, Path, None] = None):
        self.directory = Path(directory) if directory else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[object]:
        """Decoded result for ``key``, or None on miss/corruption."""
        try:
            payload = json.loads(self.path_for(key).read_text())
            if payload["key"] != key or payload["v"] != CACHE_SCHEMA_VERSION:
                raise ValueError("stale or corrupt cache entry")
            result = _decode_result(payload["result"])
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, truncated, corrupt or schema-mismatched entries are
            # all plain misses; the recomputed result overwrites them.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: object) -> None:
        """Atomically persist ``result`` under ``key``."""
        payload = {
            "v": CACHE_SCHEMA_VERSION,
            "key": key,
            "result": _encode_result(result),
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        tmp = path.with_name(f"{path.name}.tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload))
        os.replace(tmp, path)
        self.stores += 1


def cell_key(spec) -> str:
    """Content-address of one :class:`~repro.experiments.parallel.CellSpec`.

    Any single-field change — trace seed, window, warmup, predictor
    config, core config, simulator source — yields a different key.
    """
    core = spec.config
    return stable_digest({
        "v": CACHE_SCHEMA_VERSION,
        "mode": spec.mode,
        "trace": {
            "benchmark": spec.benchmark,
            "num_uops": spec.num_uops,
            "program_seed": spec.program_seed,
            "trace_seed": spec.trace_seed,
            "store_window": spec.store_window,
            "instr_window": spec.instr_window,
        },
        "run": {
            "warmup": spec.warmup,
            "f1_period": spec.f1_period,
            "track_f1": spec.track_f1,
        },
        "predictor": predictor_fingerprint(spec.predictor),
        "core": asdict(core) if core is not None else None,
        "code": shared_code_salt(),
    })
