"""Regeneration of every table and figure in the paper's evaluation.

Each ``figN`` / ``tableN`` function runs the required simulations and
returns a small result object with the figure's data plus a ``render()``
method printing the same rows/series the paper reports.  The per-experiment
index in DESIGN.md maps each function to its bench target.

All functions accept ``benchmarks`` and ``num_uops`` so tests and benches
can run reduced versions; defaults reproduce the full suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..analysis.accuracy import AccuracyStats
from ..analysis.f1 import RankedF1Profile, merge_profiles
from ..common.statistics import Histogram, geometric_mean
from ..core.config import GOLDEN_COVE, LION_COVE, CoreConfig
from ..predictors.configs import MASCOT_DEFAULT, MASCOT_OPT, mascot_opt_reduced_tags
from ..predictors.sizing import PredictorSizing, table2_rows
from ..sampling.policy import SamplingPolicy
from ..trace.profiles import suite_names
from ..trace.uop import BypassClass
from .parallel import (
    BackendSpec,
    CacheSpec,
    CellSpec,
    JournalSpec,
    MetricsSpec,
    ResumeSpec,
    execute_cells,
)
from .reporting import format_percent, render_table
from .resilience import CellFailure, ResiliencePolicy
from .runner import DEFAULT_TRACE_LENGTH, default_cache
from .suite import IpcSuiteResult, run_accuracy_suite, run_ipc_suite

__all__ = [
    "fig2_smb_opportunities",
    "table1_configuration",
    "table2_sizes",
    "fig7_ipc_full",
    "fig8_mispredictions",
    "fig9_ipc_mdp_only",
    "fig10_prediction_mix",
    "fig11_ablation",
    "fig12_future_architectures",
    "fig13_table_usage",
    "fig14_f1_ranking",
    "fig15_mascot_opt",
]

def _suite_failures(suite: IpcSuiteResult) -> List[CellFailure]:
    """Flatten an IPC suite's failures[predictor][benchmark] grid."""
    return [failure for per_bench in suite.failures.values()
            for failure in per_bench.values()]


def _accuracy_failures(results: Dict) -> List[CellFailure]:
    """CellFailure placeholders in an accuracy grid (either nesting depth)."""
    failures: List[CellFailure] = []
    for value in results.values():
        if isinstance(value, CellFailure):
            failures.append(value)
        elif isinstance(value, dict):
            failures.extend(_accuracy_failures(value))
    return failures


def _failure_note(failures: Sequence[CellFailure]) -> str:
    """Footer appended by render() when cells were excluded from totals.

    Under ``--keep-going`` an aggregate figure silently computed over a
    partial grid would misreport the paper's numbers; the IPC tables mark
    FAIL cells inline, and this is the equivalent for figures that only
    publish totals or mixes.
    """
    if not failures:
        return ""
    lines = [f"WARNING: {len(failures)} failed cell(s) excluded from "
             "the aggregates above:"]
    lines += [f"  FAILED {failure.describe()}" for failure in failures]
    return "\n".join(lines) + "\n"


def _sampling_note(meta: Dict) -> str:
    """Footer describing how a sampled figure's values were produced."""
    policy = meta.get("policy", {})
    return (
        f"sampled simulation: interval={policy.get('interval_length')} "
        f"uops, k<={policy.get('max_k')}, "
        f"warmup={policy.get('warmup_intervals')} interval(s); values are "
        f"reconstructions; +- denotes the "
        f"{100 * float(meta.get('confidence', 0)):.0f}% confidence "
        "half-width\n"
    )


_SMB_BUCKETS = ("DirectBypass", "NoOffset", "Offset", "MDP Only")
_CLASS_TO_BUCKET = {
    BypassClass.DIRECT: "DirectBypass",
    BypassClass.NO_OFFSET: "NoOffset",
    BypassClass.OFFSET: "Offset",
    BypassClass.MDP_ONLY: "MDP Only",
}


# --------------------------------------------------------------------- Fig. 2

@dataclass
class Fig2Result:
    """Per-benchmark SMB-opportunity histograms as % of executed loads."""

    percentages: Dict[str, Dict[str, float]]  # bench -> bucket -> %

    def render(self) -> str:
        rows = [
            [bench] + [f"{per[b]:.1f}" for b in _SMB_BUCKETS]
            + [f"{sum(per.values()):.1f}"]
            for bench, per in self.percentages.items()
        ]
        return render_table(
            ["benchmark", *_SMB_BUCKETS, "total"], rows,
            title="Fig. 2 — loads with a prior-store dependence, "
                  "by bypass class (% of loads)",
        )


def fig2_smb_opportunities(
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
) -> Fig2Result:
    """Scan traces and histogram dependence classes (no predictor needed)."""
    benchmarks = list(benchmarks) if benchmarks is not None else suite_names()
    cache = default_cache()
    percentages: Dict[str, Dict[str, float]] = {}
    for bench in benchmarks:
        trace = cache.get(bench, num_uops)
        histogram = Histogram(_SMB_BUCKETS)
        loads = 0
        for uop in trace:
            if not uop.is_load:
                continue
            loads += 1
            if uop.has_dependence:
                histogram.add(_CLASS_TO_BUCKET[uop.bypass])
        percentages[bench] = histogram.percentages(denominator=loads)
    return Fig2Result(percentages=percentages)


# -------------------------------------------------------------------- Table I

@dataclass
class Table1Result:
    rows: Dict[str, str]
    config_name: str

    def render(self) -> str:
        return render_table(
            ["parameter", "value"],
            list(self.rows.items()),
            title=f"Table I — system configuration ({self.config_name})",
        )


def table1_configuration(config: CoreConfig = GOLDEN_COVE) -> Table1Result:
    """Render the modelled core's Table I parameter rows."""
    return Table1Result(rows=config.summary(), config_name=config.name)


# ------------------------------------------------------------------- Table II

@dataclass
class Table2Result:
    rows: List[PredictorSizing]

    def render(self) -> str:
        table_rows = []
        for sizing in self.rows:
            fields = ", ".join(
                f"{bits}b {name}" for name, bits in
                sizing.fields_per_entry.items()
            )
            table_rows.append([
                sizing.name, sizing.tables, sizing.total_entries,
                fields, f"{sizing.kib:.2f}",
            ])
        return render_table(
            ["predictor", "tables", "entries", "fields per entry", "KiB"],
            table_rows,
            title="Table II — configuration and storage of the evaluated "
                  "predictors",
        )


def table2_sizes() -> Table2Result:
    """Recompute Table II's storage budgets for every predictor."""
    return Table2Result(rows=table2_rows())


# --------------------------------------------------------- IPC figures (7, 9)

@dataclass
class IpcFigureResult:
    """Normalised-IPC comparison across predictors (Figs. 7, 9, 11, 15)."""

    title: str
    suite: IpcSuiteResult
    predictors: List[str]

    @property
    def failures(self) -> List[CellFailure]:
        """Cells that never completed (rendered FAIL in the table)."""
        return _suite_failures(self.suite)

    def normalised(self, predictor: str) -> Dict[str, float]:
        return self.suite.normalised(predictor)

    def geomean(self, predictor: str) -> float:
        return self.suite.geomean(predictor)

    def sampling_metadata(self, predictor: str, bench: str) -> Optional[Dict]:
        """Reconstruction metadata of one cell; None for full-trace runs."""
        stats = self.suite.stats.get(predictor, {}).get(bench)
        return getattr(stats, "sampling", None)

    def _relative_ci(self, predictor: str, bench: str) -> Optional[float]:
        """Relative CI half-width of one cell's reconstructed IPC."""
        meta = self.sampling_metadata(predictor, bench)
        if meta is None:
            return None
        lo, hi = meta["ci"]
        estimate = float(meta.get("estimate") or 0.0)
        if estimate <= 0.0:
            return None
        return (float(hi) - float(lo)) / 2.0 / estimate

    def render(self) -> str:
        # Prefer the requested benchmark order (present even when cells
        # failed); fall back to the grid keys for pre-resilience results.
        benches = self.suite.benchmarks or list(
            next(iter(self.suite.ipc.values())).keys())
        normalised = {p: self.suite.normalised(p) for p in self.predictors}
        sampled_meta: Optional[Dict] = None
        rows = []
        for bench in benches:
            row = [bench]
            for predictor in self.predictors:
                value = normalised[predictor].get(bench)
                if value is None:
                    row.append("FAIL")
                    continue
                # Normalised cells divide two reconstructed IPCs; their
                # relative half-widths add (first-order, conservative).
                rel = self._relative_ci(predictor, bench)
                rel_base = self._relative_ci(self.suite.baseline, bench)
                if rel is None or rel_base is None:
                    row.append(f"{value:.4f}")
                else:
                    sampled_meta = self.sampling_metadata(predictor, bench)
                    row.append(f"{value:.4f}+-{value * (rel + rel_base):.4f}")
            rows.append(row)
        geo = ["geomean"] + [
            f"{self.suite.geomean(p):.4f}" for p in self.predictors
        ]
        rows.append(geo)
        table = render_table(
            ["benchmark", *self.predictors], rows, title=self.title,
        )
        if sampled_meta is not None:
            table += _sampling_note(sampled_meta)
        return table


def fig7_ipc_full(
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
    jobs: int = 1,
    cache: CacheSpec = None,
    policy: Optional[ResiliencePolicy] = None,
    journal: JournalSpec = None,
    resume: ResumeSpec = None,
    metrics: MetricsSpec = None,
    backend: BackendSpec = None,
    engine: str = "scalar",
    sampling: Optional[SamplingPolicy] = None,
) -> IpcFigureResult:
    """NoSQ vs PHAST vs MASCOT (MDP+SMB), normalised to perfect MDP.

    ``sampling`` runs every cell sampled; the rendered table then carries
    per-cell confidence half-widths and a methodology footer (the values
    are reconstructions, not full replays).
    """
    predictors = ["nosq", "phast", "mascot"]
    suite = run_ipc_suite(predictors, benchmarks, num_uops,
                          jobs=jobs, cache=cache, policy=policy,
                          journal=journal, resume=resume,
                          metrics=metrics, backend=backend,
                          engine=engine, sampling=sampling)
    return IpcFigureResult(
        title="Fig. 7 — IPC normalised to perfect MDP (no SMB)",
        suite=suite, predictors=predictors,
    )


def fig9_ipc_mdp_only(
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
    jobs: int = 1,
    cache: CacheSpec = None,
    policy: Optional[ResiliencePolicy] = None,
    journal: JournalSpec = None,
    resume: ResumeSpec = None,
    metrics: MetricsSpec = None,
    backend: BackendSpec = None,
    engine: str = "scalar",
    sampling: Optional[SamplingPolicy] = None,
) -> IpcFigureResult:
    """Store Sets vs PHAST vs MDP-only MASCOT, normalised to perfect MDP."""
    predictors = ["store-sets", "phast", "mascot-mdp"]
    suite = run_ipc_suite(predictors, benchmarks, num_uops,
                          jobs=jobs, cache=cache, policy=policy,
                          journal=journal, resume=resume,
                          metrics=metrics, backend=backend,
                          engine=engine, sampling=sampling)
    return IpcFigureResult(
        title="Fig. 9 — MDP-only IPC normalised to perfect MDP",
        suite=suite, predictors=predictors,
    )


# --------------------------------------------------------------------- Fig. 8

@dataclass
class Fig8Result:
    """Total mispredictions and their false-dep / speculative split."""

    totals: Dict[str, int]
    false_dependencies: Dict[str, int]
    speculative_errors: Dict[str, int]
    #: Cells excluded from the totals (--keep-going partial grids).
    failures: List[CellFailure] = field(default_factory=list)
    #: Reconstruction metadata of one sampled cell (None for full runs);
    #: its presence means every count above is a scaled estimate.
    sampling: Optional[Dict] = None

    def reduction_vs(self, predictor: str, other: str) -> float:
        """Percent reduction in total mispredictions of predictor vs other."""
        if self.totals[other] == 0:
            return 0.0
        return 100.0 * (1.0 - self.totals[predictor] / self.totals[other])

    def render(self) -> str:
        rows = [
            [name, self.totals[name], self.false_dependencies[name],
             self.speculative_errors[name]]
            for name in self.totals
        ]
        table = render_table(
            ["predictor", "total mispredictions", "false dependencies",
             "speculative errors"],
            rows,
            title="Fig. 8 — mispredictions across all benchmarks",
        ) + _failure_note(self.failures)
        if self.sampling is not None:
            table += _sampling_note(self.sampling)
        return table


def fig8_mispredictions(
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
    predictors: Sequence[str] = ("nosq", "phast", "mascot"),
    jobs: int = 1,
    cache: CacheSpec = None,
    policy: Optional[ResiliencePolicy] = None,
    journal: JournalSpec = None,
    resume: ResumeSpec = None,
    metrics: MetricsSpec = None,
    backend: BackendSpec = None,
    sampling: Optional[SamplingPolicy] = None,
) -> Fig8Result:
    """Total mispredictions and the false-dep/speculative split (Fig. 8)."""
    results = run_accuracy_suite(list(predictors), benchmarks, num_uops,
                                 jobs=jobs, cache=cache, policy=policy,
                                 journal=journal, resume=resume,
                                 metrics=metrics, backend=backend,
                                 sampling=sampling)
    totals: Dict[str, int] = {}
    false_deps: Dict[str, int] = {}
    spec_errors: Dict[str, int] = {}
    sampled_meta: Optional[Dict] = None
    for name, per_bench in results.items():
        merged = AccuracyStats()
        for run in per_bench.values():
            if isinstance(run, CellFailure):
                continue
            merged.merge(run.accuracy)
            if run.sampling is not None:
                sampled_meta = run.sampling
        totals[name] = merged.mispredictions
        false_deps[name] = merged.false_dependencies
        spec_errors[name] = merged.speculative_errors
    return Fig8Result(totals=totals, false_dependencies=false_deps,
                      speculative_errors=spec_errors,
                      failures=_accuracy_failures(results),
                      sampling=sampled_meta)


# -------------------------------------------------------------------- Fig. 10

@dataclass
class Fig10Result:
    """Per-benchmark prediction-type and misprediction-type mixes."""

    prediction_mix: Dict[str, Dict[str, float]]     # bench -> kind -> %
    misprediction_mix: Dict[str, Dict[str, float]]  # bench -> kind -> %
    #: Cells excluded from the mixes (--keep-going partial grids).
    failures: List[CellFailure] = field(default_factory=list)

    def render(self) -> str:
        kinds = ["no_dep", "mdp", "smb"]
        rows = []
        for bench in self.prediction_mix:
            pred = self.prediction_mix[bench]
            mis = self.misprediction_mix[bench]
            rows.append(
                [bench]
                + [f"{pred[k]:.1f}" for k in kinds]
                + [f"{mis[k]:.1f}" for k in kinds]
            )
        return render_table(
            ["benchmark", "pred:no_dep%", "pred:mdp%", "pred:smb%",
             "mis:no_dep%", "mis:mdp%", "mis:smb%"],
            rows,
            title="Fig. 10 — MASCOT prediction and misprediction type "
                  "distributions",
        ) + _failure_note(self.failures)


def fig10_prediction_mix(
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
    jobs: int = 1,
    cache: CacheSpec = None,
    policy: Optional[ResiliencePolicy] = None,
    journal: JournalSpec = None,
    resume: ResumeSpec = None,
    metrics: MetricsSpec = None,
    backend: BackendSpec = None,
) -> Fig10Result:
    """MASCOT's prediction and misprediction type mixes (Fig. 10)."""
    results = run_accuracy_suite(["mascot"], benchmarks, num_uops,
                                 jobs=jobs, cache=cache, policy=policy,
                                 journal=journal, resume=resume,
                                 metrics=metrics, backend=backend)["mascot"]
    prediction_mix: Dict[str, Dict[str, float]] = {}
    misprediction_mix: Dict[str, Dict[str, float]] = {}
    for bench, run in results.items():
        if isinstance(run, CellFailure):
            continue
        acc = run.accuracy
        total = max(acc.loads, 1)
        prediction_mix[bench] = {
            kind.value: 100.0 * count / total
            for kind, count in acc.prediction_counts.items()
        }
        mix = acc.misprediction_mix()
        mis_total = max(sum(mix.values()), 1)
        misprediction_mix[bench] = {
            kind.value: 100.0 * count / mis_total
            for kind, count in mix.items()
        }
    return Fig10Result(prediction_mix=prediction_mix,
                       misprediction_mix=misprediction_mix,
                       failures=_accuracy_failures(results))


# -------------------------------------------------------------------- Fig. 11

@dataclass
class Fig11Result:
    """MASCOT vs the TAGE-like predictor without non-dependence entries."""

    ipc: IpcSuiteResult
    false_dependencies: Dict[str, int]
    #: Cells excluded from the IPC grid or the false-dependency totals.
    failures: List[CellFailure] = field(default_factory=list)

    @property
    def false_dep_ratio(self) -> float:
        """How many times more false dependencies the ablation has."""
        mascot = max(self.false_dependencies.get("mascot", 0), 1)
        return self.false_dependencies.get("tage-no-nd", 0) / mascot

    def render(self) -> str:
        lines = [
            "Fig. 11 — MASCOT vs TAGE-like without non-dependence "
            "allocation",
        ]
        for name in ("mascot", "mascot-mdp", "tage-no-nd", "tage-no-nd-mdp"):
            lines.append(
                f"  {name:16s} geomean IPC vs perfect MDP: "
                f"{format_percent(self.ipc.geomean(name))}"
            )
        lines.append(
            f"  false dependencies: mascot="
            f"{self.false_dependencies.get('mascot', 0)}, "
            f"tage-no-nd={self.false_dependencies.get('tage-no-nd', 0)} "
            f"({self.false_dep_ratio:.1f}x)"
        )
        return "\n".join(lines) + "\n" + _failure_note(self.failures)


def fig11_ablation(
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
    jobs: int = 1,
    cache: CacheSpec = None,
    policy: Optional[ResiliencePolicy] = None,
    journal: JournalSpec = None,
    resume: ResumeSpec = None,
    metrics: MetricsSpec = None,
    backend: BackendSpec = None,
) -> Fig11Result:
    """MASCOT vs the no-non-dependence TAGE ablation (Fig. 11)."""
    predictors = ["mascot", "mascot-mdp", "tage-no-nd", "tage-no-nd-mdp"]
    ipc = run_ipc_suite(predictors, benchmarks, num_uops,
                        jobs=jobs, cache=cache, policy=policy,
                        journal=journal, resume=resume, metrics=metrics,
                        backend=backend)
    accuracy = run_accuracy_suite(["mascot", "tage-no-nd"], benchmarks,
                                  num_uops, jobs=jobs, cache=cache,
                                  policy=policy, journal=journal,
                                  resume=resume, metrics=metrics,
                                  backend=backend)
    false_deps: Dict[str, int] = {}
    for name, per_bench in accuracy.items():
        false_deps[name] = sum(
            run.accuracy.false_dependencies for run in per_bench.values()
            if not isinstance(run, CellFailure)
        )
    return Fig11Result(ipc=ipc, false_dependencies=false_deps,
                       failures=(_suite_failures(ipc)
                                 + _accuracy_failures(accuracy)))


# -------------------------------------------------------------------- Fig. 12

@dataclass
class Fig12Result:
    """Golden Cove vs Lion Cove: MASCOT and the perfect MDP+SMB ceiling."""

    #: geomean IPC over perfect MDP, keyed [core][predictor].
    geomeans: Dict[str, Dict[str, float]]
    #: Cells excluded from the geomeans (--keep-going partial grids).
    failures: List[CellFailure] = field(default_factory=list)

    def render(self) -> str:
        rows = []
        for core, values in self.geomeans.items():
            for predictor, value in values.items():
                rows.append([core, predictor, format_percent(value)])
        return render_table(
            ["core", "predictor", "IPC vs perfect MDP"],
            rows,
            title="Fig. 12 — MASCOT and the perfect MDP+SMB ceiling on "
                  "larger cores",
        ) + _failure_note(self.failures)


def fig12_future_architectures(
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
    cores: Sequence[CoreConfig] = (GOLDEN_COVE, LION_COVE),
    jobs: int = 1,
    cache: CacheSpec = None,
    policy: Optional[ResiliencePolicy] = None,
    journal: JournalSpec = None,
    resume: ResumeSpec = None,
    metrics: MetricsSpec = None,
    backend: BackendSpec = None,
) -> Fig12Result:
    """MASCOT and the SMB ceiling on larger cores (Fig. 12)."""
    predictors = ["perfect-mdp-smb", "mascot"]
    geomeans: Dict[str, Dict[str, float]] = {}
    failures: List[CellFailure] = []
    for core in cores:
        suite = run_ipc_suite(predictors, benchmarks, num_uops, config=core,
                              jobs=jobs, cache=cache, policy=policy,
                              journal=journal, resume=resume,
                              metrics=metrics, backend=backend)
        geomeans[core.name] = {p: suite.geomean(p) for p in predictors}
        failures.extend(_suite_failures(suite))
    return Fig12Result(geomeans=geomeans, failures=failures)


# -------------------------------------------------------------------- Fig. 13

@dataclass
class Fig13Result:
    """Share of predictions served by each MASCOT table (plus base)."""

    #: per_table[t] = % of all predictions; the final element is the base.
    shares: List[float]
    labels: List[str]
    #: Cells excluded from the shares (--keep-going partial grids).
    failures: List[CellFailure] = field(default_factory=list)

    def render(self) -> str:
        rows = [
            [label, f"{share:.2f}"]
            for label, share in zip(self.labels, self.shares)
        ]
        return render_table(
            ["source", "% of predictions"], rows,
            title="Fig. 13 — distribution of predictions per MASCOT table",
        ) + _failure_note(self.failures)


def fig13_table_usage(
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
    jobs: int = 1,
    cache: CacheSpec = None,
    policy: Optional[ResiliencePolicy] = None,
    journal: JournalSpec = None,
    resume: ResumeSpec = None,
    metrics: MetricsSpec = None,
    backend: BackendSpec = None,
) -> Fig13Result:
    """Share of predictions served by each MASCOT table (Fig. 13)."""
    # warmup=0: every prediction of the run counts, as the figure's
    # per-table shares are a property of the whole replay.  telemetry=True:
    # the shares come from the observability layer's provider-hit counters
    # (which a consistency test pins to the predictor's own
    # predictions_per_table), not from ad-hoc figure bookkeeping.
    results = run_accuracy_suite(["mascot"], benchmarks, num_uops,
                                 warmup=0, jobs=jobs, cache=cache,
                                 policy=policy, journal=journal,
                                 resume=resume, metrics=metrics,
                                 backend=backend,
                                 telemetry=True)["mascot"]
    totals: List[int] = []
    for run in results.values():
        if isinstance(run, CellFailure):
            continue
        if run.telemetry is not None:
            counts = [int(c) for c in run.telemetry["provider_hits"]]
        else:  # pre-telemetry cached result
            counts = list(run.predictions_per_table)
        # Telemetry slots grow lazily, so per-benchmark lists may differ
        # in length; pad before summing (zip would silently truncate).
        if len(counts) > len(totals):
            totals.extend([0] * (len(counts) - len(totals)))
        for t, count in enumerate(counts):
            totals[t] += count
    assert totals
    grand = max(sum(totals), 1)
    shares = [100.0 * c / grand for c in totals]
    labels = [f"table {t + 1}" for t in range(len(totals) - 1)] + ["base"]
    return Fig13Result(shares=shares, labels=labels,
                       failures=_accuracy_failures(results))


# -------------------------------------------------------------------- Fig. 14

@dataclass
class Fig14Result:
    """Rank-ordered mean F1 per table, averaged across benchmarks."""

    profile: RankedF1Profile
    #: Cells excluded from the merged profile (--keep-going partial grids).
    failures: List[CellFailure] = field(default_factory=list)

    #: Log-spaced ranks sampled by render(): the useful-entry mass sits in
    #: the first few dozen ranks, so linear sampling would show only zeros.
    RENDER_RANKS = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256)

    def render(self) -> str:
        rows = []
        for t, scores in enumerate(self.profile.ranked):
            sampled = [
                f"{scores[r]:.3f}" for r in self.RENDER_RANKS
                if r < len(scores)
            ]
            rows.append([f"table {t + 1}", len(scores), " ".join(sampled)])
        ranks = " ".join(str(r) for r in self.RENDER_RANKS)
        return render_table(
            ["table", "entries", f"mean F1 at ranks [{ranks}]"],
            rows,
            title="Fig. 14 — F1 scores of entries ranked within each table",
        ) + _failure_note(self.failures)


def fig14_f1_ranking(
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
    period_loads: int = 20_000,
    jobs: int = 1,
    cache: CacheSpec = None,
    policy: Optional[ResiliencePolicy] = None,
    journal: JournalSpec = None,
    resume: ResumeSpec = None,
    metrics: MetricsSpec = None,
    backend: BackendSpec = None,
) -> Fig14Result:
    """Rank-ordered per-entry F1 scores, averaged over benchmarks (Fig. 14)."""
    benchmarks = list(benchmarks) if benchmarks is not None else suite_names()
    cells = [
        CellSpec(mode="accuracy", benchmark=bench, num_uops=num_uops,
                 predictor="mascot", f1_period=period_loads, track_f1=True)
        for bench in benchmarks
    ]
    profiles: List[RankedF1Profile] = []
    failures: List[CellFailure] = []
    for result in execute_cells(cells, jobs=jobs, cache=cache,
                                policy=policy, journal=journal,
                                resume=resume, metrics=metrics,
                                backend=backend):
        if isinstance(result, CellFailure):
            failures.append(result)
            continue
        assert result.f1_profile is not None
        profiles.append(result.f1_profile)
    return Fig14Result(profile=merge_profiles(profiles), failures=failures)


# -------------------------------------------------------------------- Fig. 15

@dataclass
class Fig15Result:
    """MASCOT-OPT and tag-reduced variants: IPC delta vs size."""

    #: predictor -> (geomean IPC vs default MASCOT, size KiB)
    points: Dict[str, tuple]
    #: Cells excluded from the geomeans (--keep-going partial grids).
    failures: List[CellFailure] = field(default_factory=list)

    def render(self) -> str:
        rows = [
            [name, format_percent(ratio), f"{kib:.2f}"]
            for name, (ratio, kib) in self.points.items()
        ]
        return render_table(
            ["predictor", "IPC vs MASCOT", "size (KiB)"], rows,
            title="Fig. 15 — area-optimised MASCOT variants",
        ) + _failure_note(self.failures)


def fig15_mascot_opt(
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
    jobs: int = 1,
    cache: CacheSpec = None,
    policy: Optional[ResiliencePolicy] = None,
    journal: JournalSpec = None,
    resume: ResumeSpec = None,
    metrics: MetricsSpec = None,
    backend: BackendSpec = None,
) -> Fig15Result:
    """Area-optimised MASCOT variants: IPC delta vs storage (Fig. 15)."""
    predictors = ["mascot", "mascot-opt", "mascot-opt-tag2",
                  "mascot-opt-tag4", "mascot-opt-tag6"]
    suite = run_ipc_suite(predictors, benchmarks, num_uops,
                          baseline="mascot", jobs=jobs, cache=cache,
                          policy=policy, journal=journal, resume=resume,
                          metrics=metrics, backend=backend)
    sizes = {
        "mascot": MASCOT_DEFAULT.storage_kib,
        "mascot-opt": MASCOT_OPT.storage_kib,
        "mascot-opt-tag2": mascot_opt_reduced_tags(2).storage_kib,
        "mascot-opt-tag4": mascot_opt_reduced_tags(4).storage_kib,
        "mascot-opt-tag6": mascot_opt_reduced_tags(6).storage_kib,
    }
    points = {
        name: (suite.geomean(name), sizes[name]) for name in predictors
    }
    return Fig15Result(points=points, failures=_suite_failures(suite))
