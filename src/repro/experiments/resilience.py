"""Fault-tolerance policy for suite execution: timeouts, retries, faults.

The parallel engine (:mod:`repro.experiments.parallel`) runs large
``(benchmark, predictor, config)`` grids; a single hung cell, OOM-killed
worker or poisoned input must not abort hours of finished work.  This
module holds the *policy* half of that contract:

* :class:`ResiliencePolicy` — per-cell wall-clock timeout, bounded retries
  with exponential backoff, and the knobs governing pool recovery.
* **Deterministic jitter** — backoff delays are spread by a jitter factor
  derived from the cell's content-address key (:func:`deterministic_jitter`),
  never from ``random`` or the clock, so a retry schedule is reproducible
  and lint-clean (see the det-* rules in :mod:`repro.lint.determinism`).
* :class:`CellFailure` — the positional placeholder merged into a grid for
  a cell that exhausted its retries, so callers can render partial grids.
* **Fault injection** — :func:`maybe_inject_fault` lets tests (and the CI
  fault-injection job) inject worker errors, SIGKILL crashes and hangs into
  real worker processes via the ``REPRO_FAULT_INJECT`` environment variable,
  which crosses the process boundary where monkeypatching cannot.

Failure model
-------------
Failures are classified into three kinds:

``error``
    The cell raised an exception.  Retried up to ``retries`` times with
    backoff; attributable to the cell with certainty.
``timeout``
    The cell exceeded ``cell_timeout`` seconds of wall-clock time.  The
    worker pool is replaced (a hung worker cannot be cancelled), innocent
    in-flight cells are re-dispatched without being charged an attempt.
``worker-lost``
    A worker process died (``BrokenProcessPool``).  Attribution is
    ambiguous — every in-flight future receives the same exception — so
    nobody is charged; the in-flight cells become *suspects* and are
    re-run one at a time.  A suspect that kills its solo worker is the
    culprit and is charged; repeated ambiguous breakages degrade the run
    to inline serial execution with a warning.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import dataclass
from enum import Enum
from pathlib import Path
from typing import List, Optional

__all__ = [
    "FAULT_INJECT_ENV",
    "CellExecutionError",
    "CellFailure",
    "CellTimeoutError",
    "FailureKind",
    "FaultClause",
    "ResiliencePolicy",
    "backoff_delay",
    "cell_label",
    "classify_failure",
    "deterministic_jitter",
    "inline_execution",
    "maybe_inject_fault",
    "parse_fault_spec",
    "take_protocol_fault",
]

#: Environment variable carrying fault-injection clauses (see
#: :func:`parse_fault_spec`).  Inherited by worker processes, which is the
#: whole point: it reaches code a parent-process monkeypatch cannot.
FAULT_INJECT_ENV = "REPRO_FAULT_INJECT"

#: Sleep length of an injected hang without an explicit duration; far past
#: any test timeout, and the hung worker is killed once the timeout fires.
_HANG_SECONDS = 30.0


class FailureKind(Enum):
    """Classification of a cell failure (see the module failure model)."""

    ERROR = "error"
    TIMEOUT = "timeout"
    WORKER_LOST = "worker-lost"
    #: A remote worker stopped heartbeating past the lease deadline
    #: (wedged, partitioned, or silently killed); the cell is requeued.
    LEASE_EXPIRED = "lease-expired"
    #: A result payload failed its content-digest verification; the
    #: payload is discarded (never merged) and the cell is requeued.
    RESULT_CORRUPT = "result-corrupt"


class CellExecutionError(RuntimeError):
    """A cell failed under a fail-fast policy."""


class CellTimeoutError(CellExecutionError):
    """A cell exceeded its wall-clock timeout under a fail-fast policy."""


@dataclass(frozen=True)
class CellFailure:
    """Positional placeholder for a cell that exhausted its retries.

    Grids keep their shape: :func:`~repro.experiments.parallel.execute_cells`
    returns one of these at the failed cell's position so ``suite.py``,
    ``figures.py`` and ``sweeps.py`` can mark the cell instead of crashing.
    """

    #: The failed cell's spec (a CellSpec; typed loosely to avoid an
    #: import cycle with :mod:`repro.experiments.parallel`).
    spec: object
    kind: FailureKind
    #: Dispatch attempts consumed, including the final failing one.
    attempts: int
    message: str = ""

    def describe(self) -> str:
        return (f"{cell_label(self.spec)}: {self.kind.value} after "
                f"{self.attempts} attempt(s): {self.message}")


def cell_label(spec) -> str:
    """Short human-readable identity of a cell for messages and logs."""
    return f"{spec.mode}:{spec.benchmark}/{spec.predictor}"


@dataclass(frozen=True)
class ResiliencePolicy:
    """Retry/timeout policy for one ``execute_cells`` run.

    The default policy reproduces the historical engine behaviour exactly:
    no timeout, no retries, first failure aborts the run (fail fast).
    """

    #: Per-cell wall-clock timeout in seconds; None disables.  Enforced
    #: via future deadlines, so it requires (and forces) the pool path.
    cell_timeout: Optional[float] = None
    #: Extra dispatch attempts after the first (0 = no retries).
    retries: int = 0
    #: First backoff delay in seconds; doubles per attempt by default.
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_max: float = 30.0
    #: Fraction of the delay added as key-derived jitter (0..jitter).
    jitter: float = 0.25
    #: True: first exhausted cell raises.  False (--keep-going): failed
    #: cells become CellFailure placeholders and the run completes.
    fail_fast: bool = True
    #: Ambiguous pool breakages tolerated before degrading to inline
    #: serial execution (attributed solo-probe breakages do not count).
    max_pool_rebuilds: int = 2
    #: Distributed backend only: seconds a worker may stay silent (no
    #: heartbeat, no result) before its lease expires and the cell is
    #: requeued.  Measured on the coordinator's monotonic clock.
    lease_timeout: float = 10.0
    #: Distributed backend only: seconds between worker heartbeats while
    #: a cell computes.  Must leave several beats per lease window so one
    #: dropped datagram-sized delay cannot expire a healthy lease.
    heartbeat_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.cell_timeout is not None and self.cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive")
        if self.max_pool_rebuilds < 0:
            raise ValueError("max_pool_rebuilds must be >= 0")
        if self.lease_timeout <= 0:
            raise ValueError("lease_timeout must be positive")
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_interval >= self.lease_timeout:
            raise ValueError(
                "heartbeat_interval must be shorter than lease_timeout "
                "(a healthy worker must fit several beats per lease window)")


#: The compatibility default: serial semantics identical to the pre-
#: resilience engine (exceptions propagate, nothing is retried).
DEFAULT_POLICY = ResiliencePolicy()


def deterministic_jitter(key: str, attempt: int) -> float:
    """Jitter in ``[0, 1)`` derived from the cell key and attempt number.

    Stable across processes and hosts (SHA-256, not ``hash()``), so retry
    schedules are reproducible and distinct cells de-synchronise their
    retries without consulting ``random`` or the clock.
    """
    digest = hashlib.sha256(f"{key}:{attempt}".encode("utf-8")).hexdigest()
    return int(digest[:13], 16) / float(16 ** 13)


def backoff_delay(policy: ResiliencePolicy, key: str, attempt: int) -> float:
    """Delay in seconds before retry number ``attempt`` (1-based)."""
    raw = policy.backoff_base * (policy.backoff_factor ** max(attempt - 1, 0))
    raw = min(raw, policy.backoff_max)
    return raw * (1.0 + policy.jitter * deterministic_jitter(key, attempt))


def classify_failure(error: BaseException) -> FailureKind:
    """Map an exception observed by the supervisor to a FailureKind."""
    from concurrent.futures.process import BrokenProcessPool

    if isinstance(error, CellTimeoutError):
        return FailureKind.TIMEOUT
    if isinstance(error, BrokenProcessPool):
        return FailureKind.WORKER_LOST
    return FailureKind.ERROR


# ------------------------------------------------------------ fault injection

#: True while cells run inline in the supervising process (jobs == 1 or
#: degraded serial mode).  Destructive injected faults (crash, hang) are
#: downgraded to plain errors there so they cannot kill or stall the
#: supervisor itself.
_INLINE = False


@contextmanager
def inline_execution():
    """Mark the dynamic extent of inline (in-supervisor) cell execution."""
    global _INLINE
    previous = _INLINE
    _INLINE = True
    try:
        yield
    finally:
        _INLINE = previous


@dataclass(frozen=True)
class FaultClause:
    """One parsed ``REPRO_FAULT_INJECT`` clause."""

    kind: str          # "error" | "crash" | "hang"
    benchmark: str
    predictor: str
    once: bool         # fire only while the latch file is absent
    arg: Optional[str]  # latch path (once-variants) or seconds (hang)


#: In-cell faults, fired by :func:`maybe_inject_fault` inside whichever
#: process runs the cell.
_FAULT_KINDS = ("error", "crash", "hang")

#: Protocol-level faults, fired by the ``repro worker`` service around
#: the wire protocol rather than inside the cell: ``stall`` suppresses
#: heartbeats and holds the result (→ lease expiry), ``torn`` truncates
#: the result frame mid-send (→ worker-lost), ``corrupt`` flips the
#: result digest (→ result-corrupt).  Ignored by
#: :func:`maybe_inject_fault`; consumed by :func:`take_protocol_fault`.
_PROTOCOL_KINDS = ("stall", "torn", "corrupt")


def parse_fault_spec(text: str) -> List[FaultClause]:
    """Parse the fault-injection spec grammar.

    ``;``-separated clauses of the form ``kind=benchmark/predictor[@arg]``
    where ``kind`` is ``error``, ``crash`` or ``hang`` (in-cell faults) or
    ``stall``, ``torn`` or ``corrupt`` (worker protocol faults), optionally
    suffixed ``-once`` (fire once, latched via the file named by ``arg``).
    For plain ``hang``/``stall``, ``arg`` is an optional sleep duration in
    seconds.  ``""``, ``"0"`` and ``"1"`` mean "no clauses" so the variable
    doubles as a plain on/off switch for CI jobs.
    """
    clauses: List[FaultClause] = []
    if not text or text in ("0", "1"):
        return clauses
    for chunk in text.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kind, _, target = chunk.partition("=")
        if not target:
            raise ValueError(f"bad fault clause {chunk!r}: missing '='")
        once = kind.endswith("-once")
        if once:
            kind = kind[: -len("-once")]
        if kind not in _FAULT_KINDS and kind not in _PROTOCOL_KINDS:
            raise ValueError(f"unknown fault kind {kind!r} in {chunk!r}")
        target, _, arg = target.partition("@")
        benchmark, _, predictor = target.partition("/")
        if not benchmark or not predictor:
            raise ValueError(
                f"bad fault target {target!r}: want benchmark/predictor")
        if once and not arg:
            raise ValueError(
                f"{chunk!r}: -once faults need a latch path after '@'")
        clauses.append(FaultClause(kind=kind, benchmark=benchmark,
                                   predictor=predictor, once=once,
                                   arg=arg or None))
    return clauses


def maybe_inject_fault(spec) -> None:
    """Fire any configured fault matching ``spec``; no-op when unset.

    Called at the top of ``compute_cell`` in whichever process runs the
    cell.  ``crash`` SIGKILLs the worker (producing a BrokenProcessPool in
    the supervisor); ``hang`` sleeps past any reasonable timeout; ``error``
    raises.  Inline (in-supervisor) execution downgrades crash/hang to
    errors so injected faults can never kill the supervising process.
    """
    text = os.environ.get(FAULT_INJECT_ENV, "")
    if not text or text in ("0", "1"):
        return
    for clause in parse_fault_spec(text):
        if clause.kind in _PROTOCOL_KINDS:
            continue  # worker-service faults; their latches stay unconsumed
        if (clause.benchmark != spec.benchmark
                or clause.predictor != spec.predictor):
            continue
        if clause.once:
            latch = Path(clause.arg)
            if latch.exists():
                continue
            latch.parent.mkdir(parents=True, exist_ok=True)
            latch.write_text("fired")
        _fire(clause)


def take_protocol_fault(spec) -> Optional[FaultClause]:
    """Consume the first protocol-level fault clause matching ``spec``.

    Called by the ``repro worker`` service before computing a cell; the
    returned clause tells it to stall heartbeats, tear the result frame
    or corrupt the result digest.  In-cell kinds (error/crash/hang) are
    ignored here — :func:`maybe_inject_fault` fires those inside
    ``compute_cell``.  ``-once`` latches are honoured the same way.
    """
    text = os.environ.get(FAULT_INJECT_ENV, "")
    if not text or text in ("0", "1"):
        return None
    for clause in parse_fault_spec(text):
        if clause.kind not in _PROTOCOL_KINDS:
            continue
        if (clause.benchmark != spec.benchmark
                or clause.predictor != spec.predictor):
            continue
        if clause.once:
            latch = Path(clause.arg)
            if latch.exists():
                continue
            latch.parent.mkdir(parents=True, exist_ok=True)
            latch.write_text("fired")
        return clause
    return None


def _fire(clause: FaultClause) -> None:
    label = f"{clause.benchmark}/{clause.predictor}"
    if clause.kind == "error":
        raise RuntimeError(f"injected fault: error in {label}")
    if clause.kind == "crash":
        if _INLINE:
            raise RuntimeError(
                f"injected fault: crash in {label} (downgraded inline)")
        os.kill(os.getpid(), signal.SIGKILL)
    if clause.kind == "hang":
        if _INLINE:
            raise RuntimeError(
                f"injected fault: hang in {label} (downgraded inline)")
        seconds = _HANG_SECONDS
        if not clause.once and clause.arg:
            seconds = float(clause.arg)
        time.sleep(seconds)
