"""Single-cell engine-throughput measurement and the committed baseline.

The batched engine (:class:`~repro.core.batched.BatchedPipeline`) exists
for speed; correctness is pinned by the golden equivalence tier.  This
module pins the *speed*: :func:`measure_cell` times one (benchmark,
predictor, core) timing cell under both engines, :func:`run_baseline`
sweeps the standard cell list, and ``repro bench-baseline`` writes the
result to the committed ``benchmarks/BENCH_throughput.json``.

The headline number is the **fig7 IPC cell** — perlbench1 × mascot ×
golden-cove — where the batched engine must hold ≥ 5× the scalar
engine's single-cell throughput (:data:`FIG7_MIN_SPEEDUP`).

Schema 2 adds the **sampled long-trace cell**: a multi-million-uop trace
measured end-to-end under sampled simulation (region selection +
functional warmup + medoid replay on the batched engine, see
:mod:`repro.sampling`) against the full run on the scalar reference
engine.  The two throughput axes multiply — sampling cuts the simulated
uops, batching cuts the per-uop cost — and the committed speedup must
hold :data:`SAMPLED_MIN_SPEEDUP` (≥ 20×).  The row records selection
time, sampled simulation time, full simulation time and the IPC
reconstruction error, so the perf trajectory and the fidelity cost are
tracked together.

Regression checking compares speedup *ratios*, not wall-clock seconds:
the ratio divides out the host's absolute speed, so a baseline committed
on one machine remains meaningful on another (see docs/performance.md).
Absolute times are recorded too, for humans reading the file.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.batched import BatchedPipeline
from ..core.config import GOLDEN_COVE, LION_COVE, CoreConfig
from ..core.pipeline import Pipeline
from ..trace.generator import generate_trace

__all__ = [
    "BASELINE_PATH",
    "BASELINE_SCHEMA",
    "DEFAULT_CELLS",
    "DEFAULT_SAMPLED_CELLS",
    "FIG7_MIN_SPEEDUP",
    "SAMPLED_MIN_SPEEDUP",
    "SAMPLED_RATIO_TOLERANCE",
    "BenchCell",
    "SampledBenchCell",
    "measure_cell",
    "measure_sampled_cell",
    "run_baseline",
    "write_baseline",
    "load_baseline",
    "check_against_baseline",
]

#: Committed baseline location, relative to the repository root.
BASELINE_PATH = Path("benchmarks") / "BENCH_throughput.json"

#: Bump when the JSON layout changes (older files fail the check loudly).
BASELINE_SCHEMA = 2

#: Acceptance floor on the fig7 cell's batched/scalar speedup.
FIG7_MIN_SPEEDUP = 5.0

#: Acceptance floor on the long-trace cell's end-to-end sampled+batched
#: speedup over the full scalar reference run.
SAMPLED_MIN_SPEEDUP = 20.0

#: Ratio tolerance for the sampled cell, wider than the engine cells'
#: 20%: the sampled side finishes in seconds while the reference takes
#: minutes, so host noise moves the end-to-end ratio by tens of percent
#: between healthy runs (observed solo spread ~22-38x on one host).
#: The absolute :data:`SAMPLED_MIN_SPEEDUP` floor is the binding
#: contract; this tolerance only catches collapse-scale regressions.
SAMPLED_RATIO_TOLERANCE = 0.50

_CORES: Dict[str, CoreConfig] = {
    "golden-cove": GOLDEN_COVE,
    "lion-cove": LION_COVE,
}


@dataclass(frozen=True)
class BenchCell:
    """One timed cell: trace parameters plus the measurement window."""

    benchmark: str
    predictor: str
    core: str
    num_uops: int = 40_000
    measure_from: int = 10_000

    @property
    def label(self) -> str:
        return f"{self.benchmark} x {self.predictor} x {self.core}"


#: The standard baseline cells.  First entry is the fig7 IPC cell the
#: acceptance gate applies to; the others cover a second workload shape
#: (streaming FP) and a second predictor family (NoSQ's path-hashed
#: bypass tables).
DEFAULT_CELLS = (
    BenchCell("perlbench1", "mascot", "golden-cove"),
    BenchCell("lbm", "mascot", "golden-cove"),
    BenchCell("perlbench1", "nosq", "golden-cove"),
)


@dataclass(frozen=True)
class SampledBenchCell:
    """One sampled-vs-full cell: a long trace and the sampling policy."""

    benchmark: str
    predictor: str
    core: str
    num_uops: int
    interval_length: int = 10_000
    max_k: int = 6
    warmup_intervals: int = 4
    #: Engine the sampled regions run on; the full reference run always
    #: uses the scalar engine — the end-to-end speedup is the product of
    #: the sampling and batching axes.
    engine: str = "batched"

    @property
    def label(self) -> str:
        return (f"{self.benchmark} x {self.predictor} x {self.core} "
                f"@ {self.num_uops:,} uops (sampled)")

    @property
    def policy(self):
        from ..sampling import SamplingPolicy

        return SamplingPolicy(interval_length=self.interval_length,
                              max_k=self.max_k,
                              warmup_intervals=self.warmup_intervals)


#: The standard sampled long-trace cell.  First entry is the one the
#: :data:`SAMPLED_MIN_SPEEDUP` acceptance gate applies to.
DEFAULT_SAMPLED_CELLS = (
    SampledBenchCell("xz", "mascot", "golden-cove", 8_000_000),
)


def _run_once(engine_cls, cell: BenchCell, trace) -> float:
    """One cold construction + run; returns wall seconds."""
    from .suite import make_predictor

    pipeline = engine_cls(make_predictor(cell.predictor),
                          _CORES[cell.core])
    start = time.perf_counter()
    pipeline.run(trace, measure_from=cell.measure_from)
    return time.perf_counter() - start


def measure_cell(cell: BenchCell, repeats: int = 3) -> Dict[str, object]:
    """Best-of-``repeats`` wall time for both engines on one cell.

    The trace is generated once and shared (generation is not part of
    either engine's cost); each repeat constructs a fresh predictor and
    pipeline, exactly as a suite cell would.  Best-of-N suppresses
    scheduler noise and, for the batched engine, excludes the one-time
    trace columnisation (memoised per trace object, amortised across a
    suite sweep in real use).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    trace = generate_trace(cell.benchmark, cell.num_uops)
    scalar_s = min(_run_once(Pipeline, cell, trace)
                   for _ in range(repeats))
    batched_s = min(_run_once(BatchedPipeline, cell, trace)
                    for _ in range(repeats))
    kuops = (cell.num_uops - cell.measure_from) / 1000.0
    return {
        "benchmark": cell.benchmark,
        "predictor": cell.predictor,
        "core": cell.core,
        "num_uops": cell.num_uops,
        "measure_from": cell.measure_from,
        "scalar_s": round(scalar_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(scalar_s / batched_s, 3),
        "scalar_kuops_per_s": round(kuops / scalar_s, 1),
        "batched_kuops_per_s": round(kuops / batched_s, 1),
    }


def measure_sampled_cell(cell: SampledBenchCell) -> Dict[str, object]:
    """End-to-end sampled-vs-full measurement on one long trace.

    Single-shot by design: the full scalar reference run takes minutes,
    and the committed speedup carries ~10× headroom over the check
    tolerance, so best-of-N buys nothing worth its cost.  The trace is
    generated and columnised once before either side is timed — both
    engines read the memoised columnar form, so columnisation is shared
    trace ingestion, not a per-side cost.  The sampled side is charged
    everything it runs end-to-end: region selection, functional-warmup
    index construction, and the warmed medoid replays.
    """
    from ..sampling.reconstruct import run_sampled_timing
    from ..sampling.select import select_regions
    from ..trace.columns import TraceColumns
    from .runner import run_timing
    from .suite import make_predictor

    config = _CORES[cell.core]
    policy = cell.policy
    trace = generate_trace(cell.benchmark, cell.num_uops)
    TraceColumns.ensure(trace)

    start = time.perf_counter()
    selection = select_regions(trace, policy)
    select_s = time.perf_counter() - start

    start = time.perf_counter()
    sampled = run_sampled_timing(
        trace, lambda: make_predictor(cell.predictor), policy,
        config=config, engine=cell.engine, selection=selection)
    sampled_s = time.perf_counter() - start

    start = time.perf_counter()
    full = run_timing(trace, make_predictor(cell.predictor),
                      config=config, engine="scalar")
    full_s = time.perf_counter() - start

    lo, hi = sampled.ipc_ci
    return {
        "benchmark": cell.benchmark,
        "predictor": cell.predictor,
        "core": cell.core,
        "num_uops": cell.num_uops,
        "engine": cell.engine,
        "policy": policy.to_dict(),
        "k": selection.k,
        "simulated_uops": sampled.simulated_uops,
        "select_s": round(select_s, 4),
        "sampled_s": round(sampled_s, 4),
        "full_s": round(full_s, 4),
        "speedup": round(full_s / (select_s + sampled_s), 3),
        "sampled_ipc": round(sampled.stats.ipc, 6),
        "full_ipc": round(full.ipc, 6),
        "reconstruction_error":
            round(sampled.stats.ipc / full.ipc - 1.0, 6),
        "ipc_ci": [round(lo, 6), round(hi, 6)],
        "ci_covers_full": bool(lo <= full.ipc <= hi),
    }


def run_baseline(
    cells: Sequence[BenchCell] = DEFAULT_CELLS,
    repeats: int = 3,
    verbose: bool = False,
    sampled_cells: Sequence[SampledBenchCell] = DEFAULT_SAMPLED_CELLS,
) -> Dict[str, object]:
    """Measure every cell; returns the baseline document (JSON-shaped)."""
    measured: List[Dict[str, object]] = []
    for cell in cells:
        row = measure_cell(cell, repeats=repeats)
        measured.append(row)
        if verbose:
            print(f"  {cell.label}: scalar {row['scalar_s']}s, "
                  f"batched {row['batched_s']}s "
                  f"({row['speedup']}x)")
    sampled_rows: List[Dict[str, object]] = []
    for cell in sampled_cells:
        row = measure_sampled_cell(cell)
        sampled_rows.append(row)
        if verbose:
            print(f"  {cell.label}: select {row['select_s']}s + sampled "
                  f"{row['sampled_s']}s vs full {row['full_s']}s "
                  f"({row['speedup']}x, error "
                  f"{row['reconstruction_error']:+.2%})")
    return {
        "schema": BASELINE_SCHEMA,
        "repeats": repeats,
        "cells": measured,
        "sampled_cells": sampled_rows,
    }


def write_baseline(document: Dict[str, object],
                   path: Path = BASELINE_PATH) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Path = BASELINE_PATH) -> Dict[str, object]:
    document = json.loads(Path(path).read_text())
    if document.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline schema {document.get('schema')!r} != "
            f"{BASELINE_SCHEMA}; re-run `repro bench-baseline`"
        )
    return document


def check_against_baseline(
    current: Dict[str, object],
    committed: Dict[str, object],
    tolerance: float = 0.20,
    min_fig7_speedup: Optional[float] = FIG7_MIN_SPEEDUP,
    min_sampled_speedup: Optional[float] = SAMPLED_MIN_SPEEDUP,
    sampled_tolerance: float = SAMPLED_RATIO_TOLERANCE,
) -> List[str]:
    """Compare a fresh measurement to the committed baseline.

    Returns a list of violation messages (empty = pass).  A cell
    regresses when its batched/scalar speedup falls more than
    ``tolerance`` below the committed speedup — a machine-independent
    criterion.  The sampled cell's ratio uses the wider
    ``sampled_tolerance`` (see :data:`SAMPLED_RATIO_TOLERANCE`).
    ``min_fig7_speedup`` additionally enforces the absolute
    floor on the first (fig7) cell; ``min_sampled_speedup`` the floor on
    the first sampled long-trace cell.  Pass None to skip either floor.
    Sampled cells must also keep their confidence interval covering the
    full-run IPC — a coverage loss means the *reconstruction* drifted,
    which no timing tolerance excuses.
    """
    violations: List[str] = []
    committed_by_key = {
        (c["benchmark"], c["predictor"], c["core"]): c
        for c in committed["cells"]
    }
    for position, cell in enumerate(current["cells"]):
        key = (cell["benchmark"], cell["predictor"], cell["core"])
        label = " x ".join(key)
        reference = committed_by_key.get(key)
        if reference is None:
            violations.append(f"{label}: not in committed baseline")
            continue
        floor = reference["speedup"] * (1.0 - tolerance)
        if cell["speedup"] < floor:
            violations.append(
                f"{label}: speedup {cell['speedup']}x is more than "
                f"{tolerance:.0%} below the committed "
                f"{reference['speedup']}x (floor {floor:.2f}x)"
            )
        if position == 0 and min_fig7_speedup is not None \
                and cell["speedup"] < min_fig7_speedup:
            violations.append(
                f"{label}: speedup {cell['speedup']}x is below the "
                f"fig7 acceptance floor {min_fig7_speedup}x"
            )
    sampled_reference = {
        (c["benchmark"], c["predictor"], c["core"], c["num_uops"]): c
        for c in committed.get("sampled_cells", [])
    }
    for position, cell in enumerate(current.get("sampled_cells", [])):
        key = (cell["benchmark"], cell["predictor"], cell["core"],
               cell["num_uops"])
        label = (f"{cell['benchmark']} x {cell['predictor']} x "
                 f"{cell['core']} @ {cell['num_uops']:,} (sampled)")
        reference = sampled_reference.get(key)
        if reference is None:
            violations.append(f"{label}: not in committed baseline")
            continue
        floor = reference["speedup"] * (1.0 - sampled_tolerance)
        if cell["speedup"] < floor:
            violations.append(
                f"{label}: end-to-end speedup {cell['speedup']}x is more "
                f"than {sampled_tolerance:.0%} below the committed "
                f"{reference['speedup']}x (floor {floor:.2f}x)"
            )
        if position == 0 and min_sampled_speedup is not None \
                and cell["speedup"] < min_sampled_speedup:
            violations.append(
                f"{label}: end-to-end speedup {cell['speedup']}x is below "
                f"the sampled acceptance floor {min_sampled_speedup}x"
            )
        if not cell["ci_covers_full"]:
            violations.append(
                f"{label}: reconstruction CI {cell['ipc_ci']} no longer "
                f"covers the full-run IPC {cell['full_ipc']}"
            )
    return violations
