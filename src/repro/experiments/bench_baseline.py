"""Single-cell engine-throughput measurement and the committed baseline.

The batched engine (:class:`~repro.core.batched.BatchedPipeline`) exists
for speed; correctness is pinned by the golden equivalence tier.  This
module pins the *speed*: :func:`measure_cell` times one (benchmark,
predictor, core) timing cell under both engines, :func:`run_baseline`
sweeps the standard cell list, and ``repro bench-baseline`` writes the
result to the committed ``benchmarks/BENCH_throughput.json``.

The headline number is the **fig7 IPC cell** — perlbench1 × mascot ×
golden-cove — where the batched engine must hold ≥ 5× the scalar
engine's single-cell throughput (:data:`FIG7_MIN_SPEEDUP`).

Regression checking compares speedup *ratios*, not wall-clock seconds:
the ratio divides out the host's absolute speed, so a baseline committed
on one machine remains meaningful on another (see docs/performance.md).
Absolute times are recorded too, for humans reading the file.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..core.batched import BatchedPipeline
from ..core.config import GOLDEN_COVE, LION_COVE, CoreConfig
from ..core.pipeline import Pipeline
from ..trace.generator import generate_trace

__all__ = [
    "BASELINE_PATH",
    "BASELINE_SCHEMA",
    "DEFAULT_CELLS",
    "FIG7_MIN_SPEEDUP",
    "BenchCell",
    "measure_cell",
    "run_baseline",
    "write_baseline",
    "load_baseline",
    "check_against_baseline",
]

#: Committed baseline location, relative to the repository root.
BASELINE_PATH = Path("benchmarks") / "BENCH_throughput.json"

#: Bump when the JSON layout changes (older files fail the check loudly).
BASELINE_SCHEMA = 1

#: Acceptance floor on the fig7 cell's batched/scalar speedup.
FIG7_MIN_SPEEDUP = 5.0

_CORES: Dict[str, CoreConfig] = {
    "golden-cove": GOLDEN_COVE,
    "lion-cove": LION_COVE,
}


@dataclass(frozen=True)
class BenchCell:
    """One timed cell: trace parameters plus the measurement window."""

    benchmark: str
    predictor: str
    core: str
    num_uops: int = 40_000
    measure_from: int = 10_000

    @property
    def label(self) -> str:
        return f"{self.benchmark} x {self.predictor} x {self.core}"


#: The standard baseline cells.  First entry is the fig7 IPC cell the
#: acceptance gate applies to; the others cover a second workload shape
#: (streaming FP) and a second predictor family (NoSQ's path-hashed
#: bypass tables).
DEFAULT_CELLS = (
    BenchCell("perlbench1", "mascot", "golden-cove"),
    BenchCell("lbm", "mascot", "golden-cove"),
    BenchCell("perlbench1", "nosq", "golden-cove"),
)


def _run_once(engine_cls, cell: BenchCell, trace) -> float:
    """One cold construction + run; returns wall seconds."""
    from .suite import make_predictor

    pipeline = engine_cls(make_predictor(cell.predictor),
                          _CORES[cell.core])
    start = time.perf_counter()
    pipeline.run(trace, measure_from=cell.measure_from)
    return time.perf_counter() - start


def measure_cell(cell: BenchCell, repeats: int = 3) -> Dict[str, object]:
    """Best-of-``repeats`` wall time for both engines on one cell.

    The trace is generated once and shared (generation is not part of
    either engine's cost); each repeat constructs a fresh predictor and
    pipeline, exactly as a suite cell would.  Best-of-N suppresses
    scheduler noise and, for the batched engine, excludes the one-time
    trace columnisation (memoised per trace object, amortised across a
    suite sweep in real use).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    trace = generate_trace(cell.benchmark, cell.num_uops)
    scalar_s = min(_run_once(Pipeline, cell, trace)
                   for _ in range(repeats))
    batched_s = min(_run_once(BatchedPipeline, cell, trace)
                    for _ in range(repeats))
    kuops = (cell.num_uops - cell.measure_from) / 1000.0
    return {
        "benchmark": cell.benchmark,
        "predictor": cell.predictor,
        "core": cell.core,
        "num_uops": cell.num_uops,
        "measure_from": cell.measure_from,
        "scalar_s": round(scalar_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup": round(scalar_s / batched_s, 3),
        "scalar_kuops_per_s": round(kuops / scalar_s, 1),
        "batched_kuops_per_s": round(kuops / batched_s, 1),
    }


def run_baseline(cells: Sequence[BenchCell] = DEFAULT_CELLS,
                 repeats: int = 3, verbose: bool = False) -> Dict[str, object]:
    """Measure every cell; returns the baseline document (JSON-shaped)."""
    measured: List[Dict[str, object]] = []
    for cell in cells:
        row = measure_cell(cell, repeats=repeats)
        measured.append(row)
        if verbose:
            print(f"  {cell.label}: scalar {row['scalar_s']}s, "
                  f"batched {row['batched_s']}s "
                  f"({row['speedup']}x)")
    return {
        "schema": BASELINE_SCHEMA,
        "repeats": repeats,
        "cells": measured,
    }


def write_baseline(document: Dict[str, object],
                   path: Path = BASELINE_PATH) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(path: Path = BASELINE_PATH) -> Dict[str, object]:
    document = json.loads(Path(path).read_text())
    if document.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"baseline schema {document.get('schema')!r} != "
            f"{BASELINE_SCHEMA}; re-run `repro bench-baseline`"
        )
    return document


def check_against_baseline(
    current: Dict[str, object],
    committed: Dict[str, object],
    tolerance: float = 0.20,
    min_fig7_speedup: Optional[float] = FIG7_MIN_SPEEDUP,
) -> List[str]:
    """Compare a fresh measurement to the committed baseline.

    Returns a list of violation messages (empty = pass).  A cell
    regresses when its batched/scalar speedup falls more than
    ``tolerance`` below the committed speedup — a machine-independent
    criterion.  ``min_fig7_speedup`` additionally enforces the absolute
    floor on the first (fig7) cell; pass None to skip it.
    """
    violations: List[str] = []
    committed_by_key = {
        (c["benchmark"], c["predictor"], c["core"]): c
        for c in committed["cells"]
    }
    for position, cell in enumerate(current["cells"]):
        key = (cell["benchmark"], cell["predictor"], cell["core"])
        label = " x ".join(key)
        reference = committed_by_key.get(key)
        if reference is None:
            violations.append(f"{label}: not in committed baseline")
            continue
        floor = reference["speedup"] * (1.0 - tolerance)
        if cell["speedup"] < floor:
            violations.append(
                f"{label}: speedup {cell['speedup']}x is more than "
                f"{tolerance:.0%} below the committed "
                f"{reference['speedup']}x (floor {floor:.2f}x)"
            )
        if position == 0 and min_fig7_speedup is not None \
                and cell["speedup"] < min_fig7_speedup:
            violations.append(
                f"{label}: speedup {cell['speedup']}x is below the "
                f"fig7 acceptance floor {min_fig7_speedup}x"
            )
    return violations
