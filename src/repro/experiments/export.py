"""CSV export of figure results.

Each figure result object renders human-readable text; this module flattens
the same data into CSV rows for plotting outside the repository (the
paper's bar charts are one pandas/matplotlib call away from these files).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

from .figures import (
    Fig2Result,
    Fig8Result,
    Fig10Result,
    Fig13Result,
    IpcFigureResult,
)
from .reporting import csv_lines

__all__ = ["export_csv", "to_csv_rows"]


def to_csv_rows(result) -> List[List[object]]:
    """Flatten a figure result into header+rows (dispatch on type)."""
    if isinstance(result, IpcFigureResult):
        rows: List[List[object]] = [["benchmark", *result.predictors]]
        benches = result.suite.benchmarks or list(
            next(iter(result.suite.ipc.values())).keys())
        normalised = {p: result.normalised(p) for p in result.predictors}
        for bench in benches:
            # A failed cell exports as an empty field, not a crash.
            rows.append([bench] + [
                (round(normalised[p][bench], 6)
                 if bench in normalised[p] else "")
                for p in result.predictors
            ])
        rows.append(["geomean"] + [
            round(result.geomean(p), 6) for p in result.predictors
        ])
        return rows

    if isinstance(result, Fig2Result):
        buckets = ["DirectBypass", "NoOffset", "Offset", "MDP Only"]
        rows = [["benchmark", *buckets]]
        for bench, per in result.percentages.items():
            rows.append([bench] + [round(per[b], 4) for b in buckets])
        return rows

    if isinstance(result, Fig8Result):
        rows = [["predictor", "total", "false_dependencies",
                 "speculative_errors"]]
        for name in result.totals:
            rows.append([name, result.totals[name],
                         result.false_dependencies[name],
                         result.speculative_errors[name]])
        return rows

    if isinstance(result, Fig10Result):
        kinds = ["no_dep", "mdp", "smb"]
        rows = [["benchmark"]
                + [f"pred_{k}" for k in kinds]
                + [f"mis_{k}" for k in kinds]]
        for bench in result.prediction_mix:
            pred = result.prediction_mix[bench]
            mis = result.misprediction_mix[bench]
            rows.append([bench]
                        + [round(pred[k], 4) for k in kinds]
                        + [round(mis[k], 4) for k in kinds])
        return rows

    if isinstance(result, Fig13Result):
        rows = [["source", "percent"]]
        for label, share in zip(result.labels, result.shares):
            rows.append([label, round(share, 4)])
        return rows

    raise TypeError(f"no CSV flattening for {type(result).__name__}")


def export_csv(result, destination: Union[str, Path]) -> Path:
    """Write a figure result as CSV; returns the path written."""
    rows = to_csv_rows(result)
    path = Path(destination)
    path.write_text("\n".join(csv_lines(rows[0], rows[1:])) + "\n")
    return path
