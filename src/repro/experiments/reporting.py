"""Plain-text rendering of experiment results.

The benches print the same rows/series the paper's tables and figures
report; these helpers keep the formatting consistent and make the output
easy to diff across runs (EXPERIMENTS.md is produced from them).
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

__all__ = ["render_table", "render_series", "format_percent", "csv_lines"]


def format_percent(value: float, digits: int = 2) -> str:
    """Render a ratio-1 as a signed percentage (``1.019 -> '+1.90%'``)."""
    return f"{100.0 * (value - 1.0):+.{digits}f}%"


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_digits: int = 3,
) -> str:
    """Fixed-width ASCII table."""
    materialised: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:.{float_digits}f}")
            else:
                cells.append(str(value))
        materialised.append(cells)
    widths = [len(h) for h in headers]
    for row in materialised:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    out = io.StringIO()
    if title:
        out.write(title + "\n")
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    out.write(line.rstrip() + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for row in materialised:
        line = "  ".join(
            cell.ljust(widths[i]) for i, cell in enumerate(row)
        )
        out.write(line.rstrip() + "\n")
    return out.getvalue()


def render_series(
    name: str,
    values: Mapping[str, float],
    float_digits: int = 3,
) -> str:
    """One labelled series, key=value per line (figure data dumps)."""
    out = io.StringIO()
    out.write(f"{name}:\n")
    for key, value in values.items():
        out.write(f"  {key} = {value:.{float_digits}f}\n")
    return out.getvalue()


def csv_lines(headers: Sequence[str],
              rows: Iterable[Sequence[object]]) -> List[str]:
    """CSV rendering (no quoting needed for our identifiers/numbers)."""
    lines = [",".join(headers)]
    for row in rows:
        lines.append(",".join(str(v) for v in row))
    return lines
