"""``repro serve``: async HTTP coordinator front-end for grid submission.

A thin asyncio HTTP/1.1 layer (stdlib only — no web framework) in front
of the existing backend supervisor: a tenant POSTs a JSON grid
description and gets the grid back as an NDJSON stream, one record per
cell *as it settles* plus lease/requeue metric records, ending with a
``done`` record carrying an aggregate summary.  Multiple tenants submit
concurrently; each submission runs :func:`~repro.experiments.parallel
.execute_cells` in its own thread with its own backend connections, so
tenants multiplex onto one ``repro worker`` fleet (start the workers
with ``--sessions`` > 1) and one shared cache — local directory or
``repro cache-serve`` URL.

Endpoints::

    GET  /healthz  -> {"ok": true, "active": N, "submissions": M, ...}
    POST /submit   -> NDJSON stream (Content-Type: application/x-ndjson)

Submission body (JSON object)::

    {"mode": "accuracy" | "timing",
     "predictors": [...],              # required, registry names
     "benchmarks": [...],              # default: the full suite
     "num_uops": 30000,                # default: DEFAULT_TRACE_LENGTH
     "warmup": 0,                      # accuracy only; default uops//4
     "engine": "scalar" | "batched",   # timing only
     "retries": 0, "cell_timeout": null,
     "keep_going": true}               # false: first failure aborts

Stream grammar (one JSON object per line)::

    {"event": "start", "submission": id, "cells": N, ...}
    {"event": "cell", "position": i, "benchmark": ..., "predictor": ...,
     "source": "cache"|"journal"|"computed", "status": "ok",
     "result": <encoded>, "digest": ...}          # or status "failed"
    {"event": "requeue", ...}                      # live, as they happen
    {"event": "sweep", ... "backend": {leases_granted: ...}, "cache": ...}
    {"event": "done", "submission": id, "ok": N, "failed": M,
     "summary": {...}}                             # always the last line

Cell results are the same digest-carrying encoded payloads the cache and
journal use, so a streamed grid is bit-identical to a local run; the
``done`` summary (see :func:`submission_summary`) contains per-cell
content digests — diffing two summaries proves two runs agree.

With the other service modules this is sanctioned for socket use
(``conc-socket``); it reads no clocks and writes no files beyond the
ready file (``det-time`` / ``det-write``).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import threading
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..common.hashing import stable_digest
from ..core.config import GOLDEN_COVE
from ..obs.metrics import MetricsWriter
from ..trace.profiles import suite_names
from .resilience import DEFAULT_POLICY, CellFailure, ResiliencePolicy
from .result_cache import encode_result
from .runner import DEFAULT_TRACE_LENGTH

__all__ = [
    "SubmissionError",
    "SubmissionSpec",
    "main",
    "serve_http",
    "submission_summary",
]

#: Hard ceiling on a submission body; far above any real grid spec.
MAX_BODY_BYTES = 4 * 1024 * 1024


class SubmissionError(ValueError):
    """A submission body that cannot become a valid grid (HTTP 400)."""


class SubmissionSpec:
    """Validated form of one POSTed grid submission.

    Construction performs *all* validation, so a bad submission fails
    before any worker or cache connection is made.  ``cells`` come out in
    the same (benchmark-major) order the suite functions use, so the
    positional merge matches a local
    :func:`~repro.experiments.suite.run_accuracy_suite` /
    :func:`~repro.experiments.suite.run_ipc_suite` of the same grid.
    """

    def __init__(self, body: Dict):
        from .parallel import CellSpec  # deferred: parallel is heavy
        from .suite import PREDICTOR_FACTORIES

        if not isinstance(body, dict):
            raise SubmissionError("submission must be a JSON object")
        known = {"mode", "predictors", "benchmarks", "num_uops", "warmup",
                 "engine", "retries", "cell_timeout", "keep_going"}
        unknown = sorted(set(body) - known)
        if unknown:
            raise SubmissionError(f"unknown submission fields: {unknown}")
        self.mode = body.get("mode", "accuracy")
        if self.mode not in ("accuracy", "timing"):
            raise SubmissionError(f"unknown mode {self.mode!r}")
        predictors = body.get("predictors")
        if (not isinstance(predictors, list) or not predictors
                or not all(isinstance(p, str) for p in predictors)):
            raise SubmissionError("predictors must be a non-empty list")
        bad = sorted(set(predictors) - set(PREDICTOR_FACTORIES))
        if bad:
            raise SubmissionError(f"unknown predictors: {bad}")
        self.predictors = list(predictors)
        benchmarks = body.get("benchmarks")
        if benchmarks is None:
            benchmarks = suite_names()
        if (not isinstance(benchmarks, list) or not benchmarks
                or not all(isinstance(b, str) for b in benchmarks)):
            raise SubmissionError("benchmarks must be a non-empty list")
        bad = sorted(set(benchmarks) - set(suite_names()))
        if bad:
            raise SubmissionError(f"unknown benchmarks: {bad}")
        self.benchmarks = list(benchmarks)
        self.num_uops = body.get("num_uops", DEFAULT_TRACE_LENGTH)
        if not isinstance(self.num_uops, int) or self.num_uops <= 0:
            raise SubmissionError("num_uops must be a positive integer")
        warmup = body.get("warmup")
        if warmup is None:
            warmup = self.num_uops // 4
        if not isinstance(warmup, int) or warmup < 0:
            raise SubmissionError("warmup must be a non-negative integer")
        self.warmup = warmup if self.mode == "accuracy" else 0
        self.engine = body.get("engine", "scalar")
        if self.engine not in ("scalar", "batched"):
            raise SubmissionError(f"unknown engine {self.engine!r}")
        retries = body.get("retries", DEFAULT_POLICY.retries)
        if not isinstance(retries, int) or retries < 0:
            raise SubmissionError("retries must be a non-negative integer")
        cell_timeout = body.get("cell_timeout")
        if cell_timeout is not None and (
                not isinstance(cell_timeout, (int, float))
                or cell_timeout <= 0):
            raise SubmissionError("cell_timeout must be a positive number")
        keep_going = body.get("keep_going", True)
        if not isinstance(keep_going, bool):
            raise SubmissionError("keep_going must be a boolean")
        self.policy = ResiliencePolicy(
            retries=retries,
            cell_timeout=(float(cell_timeout)
                          if cell_timeout is not None else None),
            fail_fast=not keep_going,
        )
        config = GOLDEN_COVE
        if self.mode == "timing":
            self.cells = [
                CellSpec(mode="timing", benchmark=bench,
                         num_uops=self.num_uops, predictor=name,
                         config=config, store_window=config.sb_size,
                         instr_window=config.rob_size, engine=self.engine)
                for bench in self.benchmarks for name in self.predictors
            ]
        else:
            self.cells = [
                CellSpec(mode="accuracy", benchmark=bench,
                         num_uops=self.num_uops, predictor=name,
                         warmup=self.warmup)
                for bench in self.benchmarks for name in self.predictors
            ]


def submission_summary(mode: str, cells: Sequence,
                       results: Sequence) -> Dict[str, object]:
    """Aggregate merged grid results the way the CLI tables do.

    ``digests`` carries a content digest per completed cell — two runs of
    the same grid are bit-identical iff their digest maps are equal, which
    is exactly how the chaos drill compares a served grid against a serial
    reference.  ``totals`` mirrors the human-facing aggregation: summed
    accuracy counters per predictor, or per-benchmark IPC.
    """
    digests: Dict[str, str] = {}
    failures: Dict[str, str] = {}
    totals: Dict[str, Dict] = {}
    for spec, result in zip(cells, results):
        label = f"{spec.benchmark}/{spec.predictor}"
        if isinstance(result, CellFailure):
            failures[label] = result.kind.value
            continue
        digests[label] = stable_digest(encode_result(result))
        if mode == "accuracy":
            acc = result.accuracy
            bucket = totals.setdefault(spec.predictor, {
                "mispredictions": 0, "false_dependencies": 0,
                "speculative_errors": 0,
            })
            bucket["mispredictions"] += acc.mispredictions
            bucket["false_dependencies"] += acc.false_dependencies
            bucket["speculative_errors"] += acc.speculative_errors
        else:
            totals.setdefault(spec.predictor, {})[spec.benchmark] = \
                result.ipc
    return {"digests": digests, "failures": failures, "totals": totals}


class _StreamMetrics(MetricsWriter):
    """A MetricsWriter that pushes records to the NDJSON stream.

    Per-cell records are suppressed (the settle callback streams richer
    ``cell`` records carrying the results); requeue events and the final
    ``sweep`` record (lease/backend/cache counters) pass through live.
    """

    def __init__(self, push):
        # Deliberately no super().__init__: no path, no file.
        self._push = push
        self.records = 0

    def emit(self, record: Dict[str, object]) -> None:
        self.records += 1
        if record.get("event") != "cell":
            self._push(record)

    def close(self) -> None:
        pass


class _Coordinator:
    """Shared config + counters behind one ``repro serve`` listener."""

    def __init__(self, backend: Optional[str], jobs: int,
                 cache: Union[None, bool, str]):
        self.backend = backend
        self.jobs = jobs
        self.cache = cache
        self.submissions = 0
        self.active = 0
        self.lock = threading.Lock()

    def run_submission(self, sub: SubmissionSpec, submission_id: int,
                       push) -> None:
        """Blocking grid execution (runs in a worker thread).

        ``push`` enqueues one NDJSON record onto the tenant's stream
        (thread-safe).  Every exit path emits a terminal ``done`` or
        ``error`` record so the client never hangs on a silent stream.
        """
        from .parallel import execute_cells

        def settle(position, spec, key, outcome, source):
            record = {
                "event": "cell",
                "position": position,
                "benchmark": spec.benchmark,
                "predictor": spec.predictor,
                "key": key,
                "source": source,
            }
            if isinstance(outcome, CellFailure):
                record["status"] = "failed"
                record["failure_kind"] = outcome.kind.value
                record["failure_message"] = outcome.message
            else:
                encoded = encode_result(outcome)
                record["status"] = "ok"
                record["result"] = encoded
                record["digest"] = stable_digest(encoded)
            push(record)

        try:
            results = execute_cells(
                sub.cells,
                jobs=self.jobs,
                cache=self.cache,
                policy=sub.policy,
                metrics=_StreamMetrics(push),
                backend=self.backend,
                settle=settle,
            )
        except Exception as error:  # fail_fast grid, dead fleet, ...
            push({"event": "error", "submission": submission_id,
                  "error": f"{type(error).__name__}: {error}"})
            return
        failed = sum(1 for r in results if isinstance(r, CellFailure))
        push({
            "event": "done",
            "submission": submission_id,
            "ok": len(results) - failed,
            "failed": failed,
            "summary": submission_summary(sub.mode, sub.cells, results),
        })


# ------------------------------------------------------------- HTTP layer

def _ndjson(record: Dict) -> bytes:
    return (json.dumps(record, sort_keys=True) + "\n").encode()


def _http_head(status: str, content_type: str,
               length: Optional[int] = None) -> bytes:
    head = [f"HTTP/1.1 {status}", f"Content-Type: {content_type}",
            "Connection: close"]
    if length is not None:
        head.append(f"Content-Length: {length}")
    return ("\r\n".join(head) + "\r\n\r\n").encode()


async def _read_request(reader: asyncio.StreamReader):
    """Parse one request: ``(method, path, body)`` or None on garbage."""
    try:
        request_line = await reader.readline()
        parts = request_line.decode("latin-1").split()
        if len(parts) < 3:
            return None
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return None
        if content_length > MAX_BODY_BYTES:
            return None
        body = (await reader.readexactly(content_length)
                if content_length else b"")
        return method, path, body
    except (OSError, ValueError, asyncio.IncompleteReadError):
        return None


async def _handle_client(reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter,
                         coordinator: _Coordinator) -> None:
    try:
        request = await _read_request(reader)
        if request is None:
            writer.write(_http_head("400 Bad Request", "application/json",
                                    0))
            return
        method, path, body = request
        if method == "GET" and path == "/healthz":
            payload = json.dumps({
                "ok": True,
                "active": coordinator.active,
                "submissions": coordinator.submissions,
                "backend": coordinator.backend or "local",
                "cache": (coordinator.cache
                          if isinstance(coordinator.cache, str)
                          else bool(coordinator.cache)),
            }, sort_keys=True).encode()
            writer.write(_http_head("200 OK", "application/json",
                                    len(payload)) + payload)
            return
        if method != "POST" or path != "/submit":
            writer.write(_http_head("404 Not Found", "application/json", 0))
            return
        try:
            sub = SubmissionSpec(json.loads(body.decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as error:
            payload = json.dumps({"error": str(error)}).encode()
            writer.write(_http_head("400 Bad Request", "application/json",
                                    len(payload)) + payload)
            return

        with coordinator.lock:
            coordinator.submissions += 1
            coordinator.active += 1
            submission_id = coordinator.submissions
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def push(record: Dict) -> None:
            loop.call_soon_threadsafe(queue.put_nowait, record)

        writer.write(_http_head("200 OK", "application/x-ndjson"))
        writer.write(_ndjson({
            "event": "start", "submission": submission_id,
            "mode": sub.mode, "cells": len(sub.cells),
            "benchmarks": sub.benchmarks, "predictors": sub.predictors,
        }))
        await writer.drain()
        worker = loop.run_in_executor(
            None, coordinator.run_submission, sub, submission_id, push)
        try:
            while True:
                record = await queue.get()
                writer.write(_ndjson(record))
                await writer.drain()
                if record.get("event") in ("done", "error"):
                    break
            await worker
        finally:
            with coordinator.lock:
                coordinator.active -= 1
    except (OSError, ConnectionResetError):
        pass  # tenant hung up mid-stream; the executor thread finishes
    finally:
        try:
            writer.close()
            await writer.wait_closed()
        except OSError:
            pass


async def _serve_async(host: str, port: int, coordinator: _Coordinator,
                       ready_file: Optional[str], quiet: bool,
                       stop: Optional[threading.Event]) -> None:
    server = await asyncio.start_server(
        lambda r, w: _handle_client(r, w, coordinator), host, port)
    bound = server.sockets[0].getsockname()[1]
    if not quiet:
        print(f"[repro-serve] listening on http://{host}:{bound} "
              f"(backend={coordinator.backend or 'local'})", flush=True)
    if ready_file is not None:
        path = Path(ready_file)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(f"{host}:{bound}\n")
    async with server:
        if stop is None:
            await server.serve_forever()
        else:
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, stop.wait)


def serve_http(host: str = "127.0.0.1", port: int = 0,
               workers: Optional[str] = None, jobs: int = 1,
               cache: Union[None, bool, str] = True,
               ready_file: Optional[str] = None,
               quiet: bool = False,
               stop: Optional[threading.Event] = None) -> None:
    """Run the coordinator HTTP front-end until stopped.

    ``workers`` is a ``host:port,...`` fleet (each submission connects to
    every endpoint; run workers with ``--sessions`` sized for the tenant
    count); None computes locally with ``jobs`` processes.  ``cache``
    takes any :data:`~repro.experiments.parallel.CacheSpec` string form —
    notably a ``tcp://`` URL for a shared ``repro cache-serve``.
    """
    coordinator = _Coordinator(backend=workers, jobs=jobs, cache=cache)
    asyncio.run(_serve_async(host, port, coordinator, ready_file, quiet,
                             stop))


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro serve``."""
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="async HTTP coordinator: submit grids, stream NDJSON "
                    "results")
    parser.add_argument("--host", default="127.0.0.1",
                        help="address to bind (default: %(default)s)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: 0 = ephemeral, printed "
                             "and written to --ready-file)")
    parser.add_argument("--ready-file", default=None, metavar="FILE",
                        help="write host:port to this file once listening")
    parser.add_argument("--workers", default=None, metavar="HOST:PORT,...",
                        help="repro worker endpoints every submission "
                             "dispatches to (default: compute locally)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="local process count when no --workers "
                             "(default: %(default)s)")
    cache = parser.add_mutually_exclusive_group()
    cache.add_argument("--cache-url", default=None, metavar="URL",
                       help="tcp://host:port of a repro cache-serve")
    cache.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="local cache directory")
    cache.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
    args = parser.parse_args(argv)
    if args.no_cache:
        cache_spec: Union[None, bool, str] = None
    elif args.cache_url is not None:
        url = args.cache_url
        cache_spec = url if "://" in url else f"tcp://{url}"
    elif args.cache_dir is not None:
        cache_spec = args.cache_dir
    else:
        cache_spec = True
    serve_http(host=args.host, port=args.port, workers=args.workers,
               jobs=args.jobs, cache=cache_spec,
               ready_file=args.ready_file)
    return 0
