"""Experiment harness: runners, suite sweeps and figure regeneration."""

from .figures import (
    fig2_smb_opportunities,
    fig7_ipc_full,
    fig8_mispredictions,
    fig9_ipc_mdp_only,
    fig10_prediction_mix,
    fig11_ablation,
    fig12_future_architectures,
    fig13_table_usage,
    fig14_f1_ranking,
    fig15_mascot_opt,
    table1_configuration,
    table2_sizes,
)
from .export import export_csv, to_csv_rows
from .journal import JournalState, RunJournal, default_journal_dir
from .parallel import (
    CellSpec,
    compute_cell,
    execute_cells,
    resolve_cache,
    resolve_journal,
)
from .reporting import csv_lines, format_percent, render_series, render_table
from .resilience import (
    CellExecutionError,
    CellFailure,
    CellTimeoutError,
    FailureKind,
    ResiliencePolicy,
)
from .result_cache import ResultCache, cell_key, default_cache_dir
from .runner import (
    DEFAULT_TRACE_LENGTH,
    PredictionRunResult,
    TraceCache,
    default_cache,
    run_prediction_only,
    run_timing,
)
from .sweeps import CoreSweepPoint, CoreSweepResult, sweep_core_parameter
from .suite import (
    PREDICTOR_FACTORIES,
    IpcSuiteResult,
    make_predictor,
    run_accuracy_suite,
    run_ipc_suite,
)

__all__ = [
    "fig2_smb_opportunities",
    "fig7_ipc_full",
    "fig8_mispredictions",
    "fig9_ipc_mdp_only",
    "fig10_prediction_mix",
    "fig11_ablation",
    "fig12_future_architectures",
    "fig13_table_usage",
    "fig14_f1_ranking",
    "fig15_mascot_opt",
    "table1_configuration",
    "table2_sizes",
    "csv_lines",
    "export_csv",
    "to_csv_rows",
    "CellSpec",
    "compute_cell",
    "execute_cells",
    "resolve_cache",
    "resolve_journal",
    "CellExecutionError",
    "CellFailure",
    "CellTimeoutError",
    "FailureKind",
    "ResiliencePolicy",
    "JournalState",
    "RunJournal",
    "default_journal_dir",
    "ResultCache",
    "cell_key",
    "default_cache_dir",
    "format_percent",
    "render_series",
    "render_table",
    "DEFAULT_TRACE_LENGTH",
    "PredictionRunResult",
    "TraceCache",
    "default_cache",
    "run_prediction_only",
    "run_timing",
    "CoreSweepPoint",
    "CoreSweepResult",
    "sweep_core_parameter",
    "PREDICTOR_FACTORIES",
    "IpcSuiteResult",
    "make_predictor",
    "run_accuracy_suite",
    "run_ipc_suite",
]
