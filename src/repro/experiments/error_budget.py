"""Sampled-reconstruction error budget: sampled vs full on a tier-1 grid.

Sampling (:mod:`repro.sampling`) buys throughput by simulating only
representative regions; this module pins what that costs in fidelity.
:func:`run_error_budget` runs a benchmark grid both ways — full timing
simulation and sampled reconstruction, same trace, same predictor, same
engine — and reports the per-cell IPC reconstruction error alongside the
confidence interval the reconstruction *claimed*.  Two properties are
enforced (:func:`check_error_budget`, ``repro error-budget``, and the CI
``sampling-error-budget`` job):

* the geometric mean of the absolute IPC errors stays within
  :data:`GEOMEAN_ERROR_BUDGET` (2%), and
* every cell's full-run IPC falls inside its reported confidence
  interval — an estimate may be off, but it must not be *confidently*
  off.

Everything here is bit-deterministic (seeded traces, seeded selection),
so the gate cannot flap: a violation is a real regression in selection,
warmup, or reconstruction, not measurement noise.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..core.config import GOLDEN_COVE, CoreConfig
from ..sampling import SamplingPolicy

__all__ = [
    "ERROR_BUDGET_BENCHMARKS",
    "GEOMEAN_ERROR_BUDGET",
    "run_error_budget",
    "check_error_budget",
    "render_error_budget",
]

#: The tier-1 subset the budget is validated on: two pointer-chasing
#: integer workloads, two streaming FP stencils, and two mixed phases.
ERROR_BUDGET_BENCHMARKS = ("mcf", "xz", "cam4", "cactuBSSN", "lbm", "wrf")

#: Acceptance ceiling on the geomean absolute IPC reconstruction error.
GEOMEAN_ERROR_BUDGET = 0.02


def _geomean(values: Sequence[float]) -> float:
    """Geometric mean, floored at 1e-6 per element (a perfect cell must
    not zero the product)."""
    if not values:
        return 0.0
    return math.exp(
        sum(math.log(max(abs(v), 1e-6)) for v in values) / len(values))


def run_error_budget(
    benchmarks: Sequence[str] = ERROR_BUDGET_BENCHMARKS,
    num_uops: int = 2_000_000,
    predictor: str = "mascot",
    policy: Optional[SamplingPolicy] = None,
    config: CoreConfig = GOLDEN_COVE,
    engine: str = "batched",
    verbose: bool = False,
) -> Dict[str, object]:
    """Run the grid sampled and full; returns the budget report."""
    from ..trace.generator import generate_trace
    from .runner import run_timing
    from .suite import make_predictor

    if policy is None:
        policy = SamplingPolicy(interval_length=10_000)
    rows: List[Dict[str, object]] = []
    for benchmark in benchmarks:
        trace = generate_trace(benchmark, num_uops)
        full = run_timing(trace, make_predictor(predictor),
                          config=config, engine=engine)
        sampled = run_timing(
            trace, None, config=config, engine=engine, sampling=policy,
            predictor_factory=lambda: make_predictor(predictor))
        lo, hi = sampled.sampling["ci"]
        row = {
            "benchmark": benchmark,
            "full_ipc": round(full.ipc, 6),
            "sampled_ipc": round(sampled.ipc, 6),
            "error": round(sampled.ipc / full.ipc - 1.0, 6),
            "ipc_ci": [round(lo, 6), round(hi, 6)],
            "ci_covers_full": bool(lo <= full.ipc <= hi),
            "k": sampled.sampling["k"],
            "coverage": round(sampled.sampling["coverage"], 6),
        }
        rows.append(row)
        if verbose:
            print(f"  {benchmark}: full {row['full_ipc']:.4f}, sampled "
                  f"{row['sampled_ipc']:.4f} ({row['error']:+.2%}, "
                  f"CI covers: {row['ci_covers_full']})", flush=True)
    return {
        "num_uops": num_uops,
        "predictor": predictor,
        "engine": engine,
        "policy": policy.to_dict(),
        "rows": rows,
        "geomean_abs_error": round(
            _geomean([row["error"] for row in rows]), 6),
    }


def check_error_budget(
    report: Dict[str, object],
    budget: float = GEOMEAN_ERROR_BUDGET,
) -> List[str]:
    """Violation messages (empty = the reconstruction holds its budget)."""
    violations: List[str] = []
    geomean = report["geomean_abs_error"]
    if geomean > budget:
        violations.append(
            f"geomean |IPC error| {geomean:.2%} exceeds the "
            f"{budget:.0%} budget")
    for row in report["rows"]:
        if not row["ci_covers_full"]:
            violations.append(
                f"{row['benchmark']}: full-run IPC {row['full_ipc']} "
                f"outside the reported CI {row['ipc_ci']}")
    return violations


def render_error_budget(report: Dict[str, object]) -> str:
    """Human-readable budget table (docs/sampling.md carries one)."""
    lines = [
        f"sampled reconstruction error budget "
        f"({report['num_uops']:,} uops, {report['predictor']}, "
        f"{report['engine']} engine)",
        f"{'benchmark':<12} {'full IPC':>9} {'sampled':>9} {'error':>8} "
        f"{'95% CI':>19} {'covers':>7} {'k':>3}",
    ]
    for row in report["rows"]:
        lo, hi = row["ipc_ci"]
        lines.append(
            f"{row['benchmark']:<12} {row['full_ipc']:>9.4f} "
            f"{row['sampled_ipc']:>9.4f} {row['error']:>+8.2%} "
            f"[{lo:.4f}, {hi:.4f}] {str(row['ci_covers_full']):>7} "
            f"{row['k']:>3}")
    lines.append(f"geomean |error| {report['geomean_abs_error']:.2%} "
                 f"(budget {GEOMEAN_ERROR_BUDGET:.0%})")
    return "\n".join(lines)
