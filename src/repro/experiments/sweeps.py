"""Core-parameter sweeps: how predictor value scales with the machine.

Fig. 12's finding — larger windows raise the SMB ceiling — is one point of
a more general question this module answers mechanically: *sweep any
:class:`~repro.core.config.CoreConfig` field (or several together) and
measure each predictor against the perfect-MDP baseline of the same core.*
Used by ``benchmarks/bench_window_scaling.py`` to extend Fig. 12 into a
full ROB-size curve.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.config import GOLDEN_COVE, CoreConfig
from .parallel import CacheSpec, JournalSpec, ResumeSpec
from .resilience import ResiliencePolicy
from .suite import IpcSuiteResult, run_ipc_suite

__all__ = ["CoreSweepPoint", "CoreSweepResult", "sweep_core_parameter"]


@dataclass
class CoreSweepPoint:
    """One core configuration's results."""

    label: str
    config: CoreConfig
    suite: IpcSuiteResult

    def geomean(self, predictor: str) -> float:
        return self.suite.geomean(predictor)


@dataclass
class CoreSweepResult:
    """All sweep points, in sweep order."""

    points: List[CoreSweepPoint] = field(default_factory=list)

    def series(self, predictor: str) -> Dict[str, float]:
        """label -> geomean IPC vs that core's own perfect MDP."""
        return {p.label: p.geomean(predictor) for p in self.points}

    def monotone_increasing(self, predictor: str,
                            tolerance: float = 0.002) -> bool:
        """Whether the predictor's headroom grows along the sweep."""
        values = [p.geomean(predictor) for p in self.points]
        return all(b >= a - tolerance for a, b in zip(values, values[1:]))


def sweep_core_parameter(
    variations: Sequence[Mapping[str, object]],
    predictors: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = 40_000,
    base: CoreConfig = GOLDEN_COVE,
    jobs: int = 1,
    cache: CacheSpec = None,
    policy: Optional[ResiliencePolicy] = None,
    journal: JournalSpec = None,
    resume: ResumeSpec = None,
) -> CoreSweepResult:
    """Run the predictor set on each varied core.

    ``variations`` is a list of field-override mappings applied to ``base``
    (e.g. ``[{"rob_size": 256}, {"rob_size": 512}, {"rob_size": 1024}]``).
    Window-coupled fields scale sensibly together only if the caller says
    so — the sweep applies exactly what is given.

    Each point is normalised to a perfect-MDP run **on the same core**, so
    the series isolates how much the *predictor* is worth as the machine
    grows, exactly as Fig. 12 does for its two cores.  ``jobs`` and
    ``cache`` are forwarded to every point's
    :func:`~repro.experiments.suite.run_ipc_suite`; the varied core config
    is part of each cell's cache key, so points never alias.
    """
    if not variations:
        raise ValueError("no variations to sweep")
    result = CoreSweepResult()
    for overrides in variations:
        label = ",".join(f"{k}={v}" for k, v in overrides.items())
        config = base.with_(name=f"{base.name}[{label}]", **overrides)
        suite = run_ipc_suite(list(predictors), benchmarks, num_uops,
                              config=config, jobs=jobs, cache=cache,
                              policy=policy, journal=journal,
                              resume=resume)
        result.points.append(CoreSweepPoint(label=label, config=config,
                                            suite=suite))
    return result
