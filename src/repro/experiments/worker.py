"""``repro worker``: serve suite cells to a coordinator over TCP.

One worker process listens on one port and serves one coordinator session
at a time (the coordinator holds one connection per worker and keeps at
most one cell in flight on it).  With ``--sessions N`` the worker instead
accepts up to N concurrent coordinator sessions — the multiplexing mode
``repro serve`` tenants need to share one fleet — computing one cell at
a time under a global compute lock (the host has the same cores either
way) while every queued session's heartbeats keep its lease fresh.
For every ``run`` frame the worker:

1. decodes the wire :class:`~repro.experiments.parallel.CellSpec`,
2. starts a heartbeat thread beating every ``heartbeat`` seconds so the
   coordinator's lease stays fresh while the cell computes,
3. computes the cell in the **main thread** — so an injected ``crash``
   fault (SIGKILL via ``REPRO_FAULT_INJECT``) kills the whole worker
   process and the coordinator observes a dropped socket, exactly like a
   real OOM kill — and
4. replies with one terminal ``result`` frame (encoded payload + content
   digest) or ``error`` frame, then waits for the next ``run``.

A worker is stateless between cells: every cell regenerates its trace
from seeds (sharing the in-process
:class:`~repro.experiments.runner.TraceCache`) and builds a fresh
predictor, so a cell computed here is bit-identical to one computed
locally.  After the coordinator disconnects the worker loops back to
``accept``, so a killed-and-restarted coordinator reuses running workers.

Protocol fault injection (``REPRO_FAULT_INJECT``, see
:func:`~repro.experiments.resilience.take_protocol_fault`): ``stall``
suppresses heartbeats and holds the result (the coordinator expires the
lease), ``torn`` truncates the result frame mid-send (worker-lost),
``corrupt`` flips the result digest (result-corrupt, exercising the
coordinator's payload verification).

With :mod:`repro.experiments.backends`, this is the only module
sanctioned to use sockets (the ``conc-socket`` lint rule enforces it).
"""

from __future__ import annotations

import argparse
import socket
import struct
import threading
import time
from pathlib import Path
from typing import List, Optional

from ..common.hashing import stable_digest
from .backends import (
    PROTOCOL_VERSION,
    FrameError,
    recv_frame,
    send_frame,
    spec_from_wire,
)
from .resilience import take_protocol_fault

__all__ = ["main", "serve"]

#: How long ``accept`` blocks between stop-flag checks.
_ACCEPT_TICK = 0.2

#: Seconds an injected ``stall`` stays silent (no heartbeat, no result)
#: when the clause carries no explicit duration — far past any realistic
#: lease timeout, so the coordinator always expires the lease first.
_STALL_SECONDS = 30.0


def serve(host: str = "127.0.0.1", port: int = 0,
          ready_file: Optional[str] = None,
          max_sessions: Optional[int] = None,
          stop: Optional[threading.Event] = None,
          quiet: bool = False,
          sessions: int = 1) -> int:
    """Listen for coordinator sessions; returns the bound port.

    ``port=0`` binds an ephemeral port, printed on stdout and written
    (as ``host:port``) to ``ready_file`` when given — launch scripts and
    tests poll that file instead of parsing output.  ``max_sessions``
    exits after that many coordinator sessions (tests); ``stop`` is an
    optional event polled between ``accept`` attempts (in-process use).

    ``sessions`` is the concurrent-session capacity.  The default 1 is
    the historical single-coordinator loop: one session at a time, cells
    computed in the main thread (so an injected SIGKILL crash fault
    takes the whole process down, exactly like a real OOM kill).  With
    ``sessions > 1`` each accepted connection gets a session thread and
    cells are computed one at a time under a shared compute lock;
    heartbeats start *before* the lock is taken, so a cell queued behind
    another tenant's cell keeps its lease fresh while it waits.  (A
    SIGKILL still kills the whole process from any thread.)
    """
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind((host, port))
    server.listen(max(1, sessions))
    bound = server.getsockname()[1]
    if not quiet:
        print(f"[repro-worker] listening on {host}:{bound} "
              f"(protocol v{PROTOCOL_VERSION}, sessions={sessions})",
              flush=True)
    if ready_file is not None:
        path = Path(ready_file)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(f"{host}:{bound}\n")
    server.settimeout(_ACCEPT_TICK)
    compute_lock = threading.Lock() if sessions > 1 else None
    threads: List[threading.Thread] = []
    conns: List[socket.socket] = []
    accepted = 0
    try:
        while stop is None or not stop.is_set():
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            accepted += 1
            if sessions > 1:
                threads = [t for t in threads if t.is_alive()]
                conns.append(conn)
                thread = threading.Thread(
                    target=_session_guarded, args=(conn, compute_lock),
                    daemon=True)
                thread.start()
                threads.append(thread)
            else:
                _session_guarded(conn, None)
            if max_sessions is not None and accepted >= max_sessions:
                break
    finally:
        server.close()
        # Unblock session threads parked in recv so shutdown is prompt
        # (close alone does not interrupt a blocked recv);
        # _session_guarded absorbs the resulting OSError.
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
    for thread in threads:
        thread.join(timeout=_STALL_SECONDS * 2)
    return bound


def _session_guarded(conn: socket.socket,
                     compute_lock: Optional[threading.Lock]) -> None:
    """Run one session, absorbing a vanished coordinator."""
    try:
        _session(conn, compute_lock)
    except (OSError, FrameError):
        pass  # coordinator vanished mid-session; await the next
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _session(conn: socket.socket,
             compute_lock: Optional[threading.Lock] = None) -> None:
    """One coordinator session: handshake, then serve run frames."""
    conn.settimeout(None)
    hello = recv_frame(conn)
    if hello is None or hello.get("type") != "hello":
        return
    # Always answer with our version: a skewed coordinator needs the
    # reply to diagnose the skew (probe_endpoint / doctor), after which
    # this side refuses to serve it.
    send_frame(conn, {"type": "hello", "version": PROTOCOL_VERSION,
                      "role": "worker"})
    if hello.get("version") != PROTOCOL_VERSION:
        return
    send_lock = threading.Lock()
    while True:
        frame = recv_frame(conn)
        if frame is None:
            return
        if frame.get("type") == "run":
            _run_cell(conn, send_lock, frame, compute_lock)


def _run_cell(conn: socket.socket, send_lock: threading.Lock,
              frame: dict,
              compute_lock: Optional[threading.Lock] = None) -> None:
    """Compute one leased cell and send its terminal frame."""
    from .parallel import compute_cell  # deferred: parallel imports backends
    from .result_cache import encode_result

    lease = frame.get("lease")
    interval = float(frame.get("heartbeat", 1.0))
    spec = spec_from_wire(frame["spec"])
    fault = take_protocol_fault(spec)
    stalled = fault is not None and fault.kind == "stall"
    stop_beat = threading.Event()
    beat: Optional[threading.Thread] = None
    if stalled:
        # A wedged/partitioned worker: silent past the lease window.  The
        # coordinator expires the lease and drops this connection; the
        # send below then fails and ends the session.
        seconds = _STALL_SECONDS
        if fault.arg is not None and not fault.once:
            seconds = float(fault.arg)
        time.sleep(seconds)
    else:
        beat = threading.Thread(
            target=_heartbeat,
            args=(conn, send_lock, lease, interval, stop_beat),
            daemon=True)
        beat.start()
    try:
        try:
            if compute_lock is not None:
                # Multi-session mode: one cell computes at a time; the
                # heartbeat thread above keeps the lease fresh meanwhile.
                with compute_lock:
                    result = compute_cell(spec)
            else:
                result = compute_cell(spec)
        except Exception as error:  # cell failed; report and stay alive
            send_frame(conn, {"type": "error", "lease": lease,
                              "error": f"{type(error).__name__}: {error}"},
                       send_lock)
            return
        encoded = encode_result(result)
        digest = stable_digest(encoded)
        if fault is not None and fault.kind == "corrupt":
            digest = "0" * len(digest)
        if fault is not None and fault.kind == "torn":
            _send_torn(conn, send_lock)
            raise OSError("injected torn result frame")
        send_frame(conn, {"type": "result", "lease": lease,
                          "result": encoded, "digest": digest}, send_lock)
    finally:
        stop_beat.set()
        if beat is not None:
            beat.join(timeout=max(interval, 1.0) * 2)


def _heartbeat(conn: socket.socket, send_lock: threading.Lock,
               lease: Optional[str], interval: float,
               stop: threading.Event) -> None:
    """Beat every ``interval`` seconds until stopped or the socket dies."""
    while not stop.wait(interval):
        try:
            send_frame(conn, {"type": "heartbeat", "lease": lease},
                       send_lock)
        except OSError:
            return


def _send_torn(conn: socket.socket, send_lock: threading.Lock) -> None:
    """Send a length prefix promising more bytes than follow, then die.

    The coordinator's ``recv_frame`` raises ``FrameError`` ("torn
    frame"), which it classifies as worker-lost — the same as a worker
    killed mid-``sendall``.
    """
    with send_lock:
        conn.sendall(struct.pack(">I", 1 << 16) + b"{\"type\":")
        conn.shutdown(socket.SHUT_RDWR)


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro worker``."""
    parser = argparse.ArgumentParser(
        prog="repro worker",
        description="serve suite cells to a repro coordinator over TCP")
    parser.add_argument("--host", default="127.0.0.1",
                        help="address to bind (default: %(default)s)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: 0 = ephemeral, printed "
                             "and written to --ready-file)")
    parser.add_argument("--ready-file", default=None, metavar="FILE",
                        help="write host:port to this file once listening")
    parser.add_argument("--max-sessions", type=int, default=None,
                        metavar="N",
                        help="exit after N coordinator sessions "
                             "(default: serve forever)")
    parser.add_argument("--sessions", type=int, default=1, metavar="N",
                        help="concurrent coordinator sessions; >1 computes "
                             "cells under a shared lock so repro serve "
                             "tenants can multiplex one fleet "
                             "(default: %(default)s)")
    args = parser.parse_args(argv)
    if args.sessions < 1:
        parser.error("--sessions must be >= 1")
    serve(host=args.host, port=args.port, ready_file=args.ready_file,
          max_sessions=args.max_sessions, sessions=args.sessions)
    return 0
