"""Suite orchestration: sweep (benchmark × predictor) and summarise.

The paper's evaluation grid is a set of predictors run over the SPEC
CPU2017 stand-in suite, with IPC normalised per benchmark to a perfect-MDP
run of the *same* trace on the *same* core.  :func:`run_ipc_suite` and
:func:`run_accuracy_suite` produce those grids; predictor construction goes
through a registry of named factories so figures and benches can request
"mascot" / "phast" / ... uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..common.statistics import geometric_mean, normalise
from ..core.config import GOLDEN_COVE, CoreConfig
from ..core.stats import PipelineStats
from ..predictors.base import MDPredictor
from ..predictors.configs import MASCOT_DEFAULT, MASCOT_OPT, mascot_opt_reduced_tags
from ..predictors.mascot import Mascot
from ..predictors.idist import IDistStoreSets
from ..predictors.nosq import NoSQ
from ..predictors.tage_mdp import TageMdp
from ..predictors.perfect import PerfectMDP, PerfectMDPSMB
from ..predictors.phast import Phast
from ..predictors.store_sets import StoreSets
from ..predictors.tage_nond import TAGE_NO_ND_CONFIG
from ..sampling.policy import SamplingPolicy
from ..trace.profiles import suite_names
from .parallel import (
    BackendSpec,
    CacheSpec,
    CellSpec,
    JournalSpec,
    MetricsSpec,
    ResumeSpec,
    execute_cells,
)
from .resilience import CellFailure, ResiliencePolicy
from .runner import DEFAULT_TRACE_LENGTH, PredictionRunResult

__all__ = [
    "PREDICTOR_FACTORIES",
    "make_predictor",
    "IpcSuiteResult",
    "run_ipc_suite",
    "run_accuracy_suite",
]

#: Registry of predictor factories by canonical name.
PREDICTOR_FACTORIES: Dict[str, Callable[[], MDPredictor]] = {
    "perfect-mdp": PerfectMDP,
    "perfect-mdp-smb": PerfectMDPSMB,
    "mascot": lambda: Mascot(MASCOT_DEFAULT),
    "mascot-mdp": lambda: Mascot(
        MASCOT_DEFAULT.with_(name="mascot-mdp", smb_enabled=False)
    ),
    "mascot-opt": lambda: Mascot(MASCOT_OPT),
    "mascot-opt-tag2": lambda: Mascot(mascot_opt_reduced_tags(2)),
    "mascot-opt-tag4": lambda: Mascot(mascot_opt_reduced_tags(4)),
    "mascot-opt-tag6": lambda: Mascot(mascot_opt_reduced_tags(6)),
    "mascot-offset": lambda: Mascot(
        MASCOT_DEFAULT.with_(name="mascot-offset", offset_bypass=True)
    ),
    "mascot-decay": lambda: Mascot(
        MASCOT_DEFAULT.with_(name="mascot-decay", decay_period=50_000)
    ),
    "tage-no-nd": lambda: Mascot(TAGE_NO_ND_CONFIG),
    "tage-no-nd-mdp": lambda: Mascot(
        TAGE_NO_ND_CONFIG.with_(name="tage-no-nd-mdp", smb_enabled=False)
    ),
    "phast": Phast,
    "tage-mdp": TageMdp,
    "idist+store-sets": IDistStoreSets,
    "nosq": NoSQ,
    "store-sets": StoreSets,
}


def make_predictor(name: str) -> MDPredictor:
    """Build a fresh predictor by canonical name."""
    try:
        factory = PREDICTOR_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(PREDICTOR_FACTORIES))
        raise KeyError(f"unknown predictor {name!r}; known: {known}") from None
    return factory()


@dataclass
class IpcSuiteResult:
    """IPC grid with normalisation helpers.

    Under ``--keep-going`` a cell that exhausted its retries is absent from
    ``ipc``/``stats`` and recorded in ``failures`` instead; the helpers
    operate on the benchmarks both sides of a comparison actually have, so
    a partial grid still summarises (the geomean of an empty intersection
    is ``nan``, never an exception).
    """

    #: ipc[predictor][benchmark]
    ipc: Dict[str, Dict[str, float]]
    #: Full pipeline stats for every run (same key structure).
    stats: Dict[str, Dict[str, PipelineStats]]
    baseline: str
    #: failures[predictor][benchmark] for cells that never completed.
    failures: Dict[str, Dict[str, CellFailure]] = field(default_factory=dict)
    #: The benchmark order the suite was requested with (including benches
    #: where every predictor failed); empty for pre-resilience pickles.
    benchmarks: List[str] = field(default_factory=list)

    def normalised(self, predictor: str) -> Dict[str, float]:
        """Per-benchmark IPC relative to the baseline predictor.

        Restricted to benchmarks where both the predictor and the baseline
        completed.
        """
        base = self.ipc[self.baseline]
        mine = {b: v for b, v in self.ipc[predictor].items() if b in base}
        return normalise(mine, base)

    def geomean(self, predictor: str) -> float:
        values = self.normalised(predictor).values()
        if not values:
            return float("nan")
        return geometric_mean(values)

    def geomean_speedup_over(self, predictor: str, other: str) -> float:
        """Geomean of per-benchmark IPC ratios predictor/other, in percent."""
        ratios = [
            self.ipc[predictor][b] / self.ipc[other][b]
            for b in self.ipc[predictor]
            if b in self.ipc[other]
        ]
        if not ratios:
            return float("nan")
        return 100.0 * (geometric_mean(ratios) - 1.0)


def run_ipc_suite(
    predictors: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
    config: CoreConfig = GOLDEN_COVE,
    baseline: str = "perfect-mdp",
    verbose: bool = False,
    jobs: int = 1,
    cache: CacheSpec = None,
    policy: Optional[ResiliencePolicy] = None,
    journal: JournalSpec = None,
    resume: ResumeSpec = None,
    metrics: MetricsSpec = None,
    backend: BackendSpec = None,
    engine: str = "scalar",
    sampling: Optional[SamplingPolicy] = None,
) -> IpcSuiteResult:
    """Timing-mode sweep; the baseline is added automatically if missing.

    ``jobs`` shards the (benchmark × predictor) cells across worker
    processes; ``cache`` enables the on-disk result cache (see
    :data:`~repro.experiments.parallel.CacheSpec`); ``policy``, ``journal``
    and ``resume`` configure fault tolerance and crash recovery, and
    ``backend`` selects the execution substrate — ``None``/``"local"``
    for the in-process pool, ``"host:port,..."`` for ``repro worker``
    endpoints (see :func:`~repro.experiments.parallel.execute_cells`).  The grid is
    bit-identical for every ``jobs`` value and cache state — and, by the
    golden equivalence tier, for either ``engine`` (``"scalar"`` reference
    pipeline or the faster ``"batched"`` engine).

    ``sampling`` runs every cell sampled under the given policy: only the
    selected regions are simulated and each cell's stats carry
    reconstruction metadata with confidence intervals (see
    :mod:`repro.sampling`).  Reconstructed values are estimates — the
    suite is no longer bit-identical to the full-trace sweep, which is
    the point.
    """
    names = list(predictors)
    if baseline not in names:
        names.insert(0, baseline)
    benchmarks = list(benchmarks) if benchmarks is not None else suite_names()

    cells = [
        CellSpec(mode="timing", benchmark=bench, num_uops=num_uops,
                 predictor=name, config=config,
                 store_window=config.sb_size, instr_window=config.rob_size,
                 engine=engine, sampling=sampling)
        for bench in benchmarks for name in names
    ]
    cell_results = execute_cells(cells, jobs=jobs, cache=cache,
                                 policy=policy, journal=journal,
                                 resume=resume, metrics=metrics,
                                 backend=backend)

    ipc: Dict[str, Dict[str, float]] = {n: {} for n in names}
    stats: Dict[str, Dict[str, PipelineStats]] = {n: {} for n in names}
    failures: Dict[str, Dict[str, CellFailure]] = {}
    grid = iter(cell_results)
    for bench in benchmarks:
        for name in names:
            result = next(grid)
            if isinstance(result, CellFailure):
                failures.setdefault(name, {})[bench] = result
                if verbose:
                    print(f"  {bench:12s} {name:16s} FAILED "
                          f"({result.kind.value})")
                continue
            ipc[name][bench] = result.ipc
            stats[name][bench] = result
            if verbose:
                print(f"  {bench:12s} {name:16s} IPC={result.ipc:.3f}")
    return IpcSuiteResult(ipc=ipc, stats=stats, baseline=baseline,
                          failures=failures, benchmarks=benchmarks)


def run_accuracy_suite(
    predictors: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
    verbose: bool = False,
    warmup: Optional[int] = None,
    jobs: int = 1,
    cache: CacheSpec = None,
    policy: Optional[ResiliencePolicy] = None,
    journal: JournalSpec = None,
    resume: ResumeSpec = None,
    metrics: MetricsSpec = None,
    backend: BackendSpec = None,
    telemetry: bool = False,
    sampling: Optional[SamplingPolicy] = None,
) -> Dict[str, Dict[str, PredictionRunResult]]:
    """Prediction-only sweep: results[predictor][benchmark].

    ``warmup`` defaults to a quarter of the trace: predictors train on it
    but it is excluded from the statistics (steady-state measurement, as
    the paper's warmed SimPoints provide).  ``jobs``, ``cache``,
    ``policy``, ``journal`` and ``resume`` behave as in
    :func:`run_ipc_suite`.  Under ``--keep-going`` a failed cell's value
    is its :class:`~repro.experiments.resilience.CellFailure` placeholder;
    aggregating callers skip those with an ``isinstance`` check.
    ``telemetry`` attaches per-table counting sinks (Fig. 13); the
    counters come back in each result's ``telemetry`` dict.  ``metrics``
    streams per-cell execution records as JSONL (see
    :data:`~repro.experiments.parallel.MetricsSpec`).

    ``sampling`` replays only the policy's selected regions per cell and
    scales the accuracy counts back to the full trace (incompatible with
    ``warmup`` and ``telemetry``; warmup of sampled runs comes from the
    policy's ``warmup_intervals``).
    """
    if sampling is not None:
        if telemetry:
            raise ValueError("sampling is incompatible with telemetry")
        warmup = 0
    elif warmup is None:
        warmup = num_uops // 4
    benchmarks = list(benchmarks) if benchmarks is not None else suite_names()

    names = list(predictors)
    cells = [
        CellSpec(mode="accuracy", benchmark=bench, num_uops=num_uops,
                 predictor=name, warmup=warmup, telemetry=telemetry,
                 sampling=sampling)
        for bench in benchmarks for name in names
    ]
    cell_results = execute_cells(cells, jobs=jobs, cache=cache,
                                 policy=policy, journal=journal,
                                 resume=resume, metrics=metrics,
                                 backend=backend)

    results: Dict[str, Dict[str, PredictionRunResult]] = {
        n: {} for n in names
    }
    grid = iter(cell_results)
    for bench in benchmarks:
        for name in names:
            result = next(grid)
            results[name][bench] = result
            if verbose:
                if isinstance(result, CellFailure):
                    print(f"  {bench:12s} {name:16s} FAILED "
                          f"({result.kind.value})")
                    continue
                acc = result.accuracy
                print(f"  {bench:12s} {name:16s} "
                      f"mispred={acc.mispredictions}")
    return results
