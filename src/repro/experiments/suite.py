"""Suite orchestration: sweep (benchmark × predictor) and summarise.

The paper's evaluation grid is a set of predictors run over the SPEC
CPU2017 stand-in suite, with IPC normalised per benchmark to a perfect-MDP
run of the *same* trace on the *same* core.  :func:`run_ipc_suite` and
:func:`run_accuracy_suite` produce those grids; predictor construction goes
through a registry of named factories so figures and benches can request
"mascot" / "phast" / ... uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..common.statistics import geometric_mean, normalise
from ..core.config import GOLDEN_COVE, CoreConfig
from ..core.stats import PipelineStats
from ..predictors.base import MDPredictor
from ..predictors.configs import MASCOT_DEFAULT, MASCOT_OPT, mascot_opt_reduced_tags
from ..predictors.mascot import Mascot
from ..predictors.idist import IDistStoreSets
from ..predictors.nosq import NoSQ
from ..predictors.tage_mdp import TageMdp
from ..predictors.perfect import PerfectMDP, PerfectMDPSMB
from ..predictors.phast import Phast
from ..predictors.store_sets import StoreSets
from ..predictors.tage_nond import TAGE_NO_ND_CONFIG
from ..trace.profiles import suite_names
from .parallel import CacheSpec, CellSpec, execute_cells
from .runner import DEFAULT_TRACE_LENGTH, PredictionRunResult

__all__ = [
    "PREDICTOR_FACTORIES",
    "make_predictor",
    "IpcSuiteResult",
    "run_ipc_suite",
    "run_accuracy_suite",
]

#: Registry of predictor factories by canonical name.
PREDICTOR_FACTORIES: Dict[str, Callable[[], MDPredictor]] = {
    "perfect-mdp": PerfectMDP,
    "perfect-mdp-smb": PerfectMDPSMB,
    "mascot": lambda: Mascot(MASCOT_DEFAULT),
    "mascot-mdp": lambda: Mascot(
        MASCOT_DEFAULT.with_(name="mascot-mdp", smb_enabled=False)
    ),
    "mascot-opt": lambda: Mascot(MASCOT_OPT),
    "mascot-opt-tag2": lambda: Mascot(mascot_opt_reduced_tags(2)),
    "mascot-opt-tag4": lambda: Mascot(mascot_opt_reduced_tags(4)),
    "mascot-opt-tag6": lambda: Mascot(mascot_opt_reduced_tags(6)),
    "mascot-offset": lambda: Mascot(
        MASCOT_DEFAULT.with_(name="mascot-offset", offset_bypass=True)
    ),
    "mascot-decay": lambda: Mascot(
        MASCOT_DEFAULT.with_(name="mascot-decay", decay_period=50_000)
    ),
    "tage-no-nd": lambda: Mascot(TAGE_NO_ND_CONFIG),
    "tage-no-nd-mdp": lambda: Mascot(
        TAGE_NO_ND_CONFIG.with_(name="tage-no-nd-mdp", smb_enabled=False)
    ),
    "phast": Phast,
    "tage-mdp": TageMdp,
    "idist+store-sets": IDistStoreSets,
    "nosq": NoSQ,
    "store-sets": StoreSets,
}


def make_predictor(name: str) -> MDPredictor:
    """Build a fresh predictor by canonical name."""
    try:
        factory = PREDICTOR_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(PREDICTOR_FACTORIES))
        raise KeyError(f"unknown predictor {name!r}; known: {known}") from None
    return factory()


@dataclass
class IpcSuiteResult:
    """IPC grid with normalisation helpers."""

    #: ipc[predictor][benchmark]
    ipc: Dict[str, Dict[str, float]]
    #: Full pipeline stats for every run (same key structure).
    stats: Dict[str, Dict[str, PipelineStats]]
    baseline: str

    def normalised(self, predictor: str) -> Dict[str, float]:
        """Per-benchmark IPC relative to the baseline predictor."""
        return normalise(self.ipc[predictor], self.ipc[self.baseline])

    def geomean(self, predictor: str) -> float:
        return geometric_mean(self.normalised(predictor).values())

    def geomean_speedup_over(self, predictor: str, other: str) -> float:
        """Geomean of per-benchmark IPC ratios predictor/other, in percent."""
        ratios = [
            self.ipc[predictor][b] / self.ipc[other][b]
            for b in self.ipc[predictor]
        ]
        return 100.0 * (geometric_mean(ratios) - 1.0)


def run_ipc_suite(
    predictors: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
    config: CoreConfig = GOLDEN_COVE,
    baseline: str = "perfect-mdp",
    verbose: bool = False,
    jobs: int = 1,
    cache: CacheSpec = None,
) -> IpcSuiteResult:
    """Timing-mode sweep; the baseline is added automatically if missing.

    ``jobs`` shards the (benchmark × predictor) cells across worker
    processes; ``cache`` enables the on-disk result cache (see
    :data:`~repro.experiments.parallel.CacheSpec`).  The grid is
    bit-identical for every ``jobs`` value and cache state.
    """
    names = list(predictors)
    if baseline not in names:
        names.insert(0, baseline)
    benchmarks = list(benchmarks) if benchmarks is not None else suite_names()

    cells = [
        CellSpec(mode="timing", benchmark=bench, num_uops=num_uops,
                 predictor=name, config=config,
                 store_window=config.sb_size, instr_window=config.rob_size)
        for bench in benchmarks for name in names
    ]
    cell_results = execute_cells(cells, jobs=jobs, cache=cache)

    ipc: Dict[str, Dict[str, float]] = {n: {} for n in names}
    stats: Dict[str, Dict[str, PipelineStats]] = {n: {} for n in names}
    grid = iter(cell_results)
    for bench in benchmarks:
        for name in names:
            result = next(grid)
            ipc[name][bench] = result.ipc
            stats[name][bench] = result
            if verbose:
                print(f"  {bench:12s} {name:16s} IPC={result.ipc:.3f}")
    return IpcSuiteResult(ipc=ipc, stats=stats, baseline=baseline)


def run_accuracy_suite(
    predictors: Sequence[str],
    benchmarks: Optional[Sequence[str]] = None,
    num_uops: int = DEFAULT_TRACE_LENGTH,
    verbose: bool = False,
    warmup: Optional[int] = None,
    jobs: int = 1,
    cache: CacheSpec = None,
) -> Dict[str, Dict[str, PredictionRunResult]]:
    """Prediction-only sweep: results[predictor][benchmark].

    ``warmup`` defaults to a quarter of the trace: predictors train on it
    but it is excluded from the statistics (steady-state measurement, as
    the paper's warmed SimPoints provide).  ``jobs`` and ``cache`` behave
    as in :func:`run_ipc_suite`.
    """
    if warmup is None:
        warmup = num_uops // 4
    benchmarks = list(benchmarks) if benchmarks is not None else suite_names()

    names = list(predictors)
    cells = [
        CellSpec(mode="accuracy", benchmark=bench, num_uops=num_uops,
                 predictor=name, warmup=warmup)
        for bench in benchmarks for name in names
    ]
    cell_results = execute_cells(cells, jobs=jobs, cache=cache)

    results: Dict[str, Dict[str, PredictionRunResult]] = {
        n: {} for n in names
    }
    grid = iter(cell_results)
    for bench in benchmarks:
        for name in names:
            result = next(grid)
            results[name][bench] = result
            if verbose:
                acc = result.accuracy
                print(f"  {bench:12s} {name:16s} "
                      f"mispred={acc.mispredictions}")
    return results
