"""Shared result-cache service: ``repro cache-serve`` + client.

The content-addressed result cache (:mod:`repro.experiments.result_cache`)
is network-safe by construction — schema-v2 entries embed their key and a
digest of the payload, so any transport that moves verified encoded
payloads preserves bit-identical results.  This module makes the cache a
*service* instead of a shared filesystem:

* :func:`serve_cache` / ``repro cache-serve`` — a TCP server speaking the
  same length-prefixed, version-handshaked JSON frame protocol as the
  worker layer (:mod:`repro.experiments.backends`), serving ``load`` /
  ``store`` / ``probe`` / ``stats`` requests against one local cache
  directory.  Stores are digest-checked server-side (a corrupt upload is
  rejected, never persisted); corrupt on-disk entries are quarantined on
  read exactly as in the local cache.  One process serialises all
  writers, so the NFS lock-file discipline (the *filesystem-only legacy
  path*, see :class:`~repro.experiments.result_cache.CacheLock`) is not
  needed.
* :class:`NetworkCacheClient` — slots in wherever
  :class:`~repro.experiments.result_cache.ResultCache` is used (selected
  via ``--cache-url`` or ``$REPRO_CACHE_URL``; see
  :func:`~repro.experiments.parallel.resolve_cache`).  An unreachable
  server degrades the client to *read-only local fallback* with one
  warning: hits are still served from the local cache directory, stores
  are skipped and counted.  A server that dies mid-sweep is retried with
  a reconnect cooldown, so a restarted server (crash drill) is picked
  back up; every failed RPC is just a cache miss — never a wrong number.

Wire grammar (after the ``hello`` exchange)::

    -> {"type": "load",  "key": K}
    <- {"type": "entry", "key": K, "hit": bool, "result": ..., "digest": D}
    -> {"type": "store", "key": K, "result": ..., "digest": D}
    <- {"type": "stored", "key": K, "ok": bool[, "error": ...]}
    -> {"type": "probe", "key": K}
    <- {"type": "probed", "key": K, "present": bool}
    -> {"type": "stats"}
    <- {"type": "stats", "counters": {...}, "directory": ...}

Protocol fault injection ports directly: ``REPRO_FAULT_INJECT`` clauses
targeting ``cache/serve`` (e.g. ``stall=cache/serve@5``, ``torn=cache/
serve-once``, ``corrupt=cache/serve-once``) make the server stall before
replying (the client times out → miss), tear a reply frame mid-send, or
flip the digest on a served entry (the client rejects it → miss).

With :mod:`repro.experiments.backends`, :mod:`repro.experiments.worker`
and :mod:`repro.experiments.serve`, this is one of the only modules
sanctioned to use sockets (``conc-socket`` lint rule).
"""

from __future__ import annotations

import argparse
import os
import socket
import struct
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..common.hashing import stable_digest
from .backends import (
    CONNECT_TIMEOUT,
    PROTOCOL_VERSION,
    FrameError,
    ProtocolVersionError,
    parse_endpoint,
    recv_frame,
    send_frame,
)
from .resilience import take_protocol_fault
from .result_cache import ResultCache, decode_result, encode_result

__all__ = [
    "CACHE_URL_ENV",
    "NetworkCacheClient",
    "cache_url_from_env",
    "is_cache_url",
    "main",
    "parse_cache_url",
    "probe_cache_server",
    "serve_cache",
]

#: Environment variable selecting a cache server for every sweep
#: (equivalent to passing ``--cache-url`` everywhere).
CACHE_URL_ENV = "REPRO_CACHE_URL"

#: How long ``accept`` blocks between stop-flag checks.
_ACCEPT_TICK = 0.2

#: Per-RPC socket timeout: a stalled server must cost one bounded miss,
#: not a wedged sweep.
RPC_TIMEOUT = 10.0

#: Seconds between reconnect attempts once the server is unreachable —
#: a dead server costs one failed ``connect`` per cooldown, not per RPC.
RECONNECT_COOLDOWN = 1.0

#: Seconds an injected ``stall`` holds a reply when the clause carries no
#: explicit duration — far past any client RPC timeout.
_STALL_SECONDS = 30.0


class _FaultPoint:
    """Injection target for the cache server.

    :func:`~repro.experiments.resilience.take_protocol_fault` matches
    clauses by ``benchmark/predictor``; the cache server answers to the
    fixed pair ``cache/serve`` so existing ``REPRO_FAULT_INJECT`` grammar
    selects it with no parser changes.
    """

    benchmark = "cache"
    predictor = "serve"


# repro-lint: allow(conc-mutable-global) -- immutable class-attr shim, no instance state
_FAULT_POINT = _FaultPoint()


# ------------------------------------------------------------- URL plumbing

def is_cache_url(text: str) -> bool:
    """Whether a cache spec string names a server rather than a directory."""
    return "://" in text


def parse_cache_url(url: str) -> Tuple[str, int]:
    """``tcp://host:port`` (or bare ``host:port``) → ``(host, port)``."""
    if is_cache_url(url):
        scheme, _, rest = url.partition("://")
        if scheme != "tcp":
            raise ValueError(
                f"bad cache url {url!r}: only tcp:// is supported")
    else:
        rest = url
    try:
        return parse_endpoint(rest)
    except ValueError as error:
        raise ValueError(f"bad cache url {url!r}: {error}") from None


def cache_url_from_env() -> Optional[str]:
    """``$REPRO_CACHE_URL`` when set and non-empty."""
    return os.environ.get(CACHE_URL_ENV) or None


# ------------------------------------------------------------------ server

class _CacheServer:
    """Shared state behind one ``serve_cache`` listener.

    One lock serialises every cache operation: the on-disk cache below is
    plain :class:`ResultCache` and this single process is the only
    writer, which is exactly what makes the lock-file discipline
    unnecessary here.
    """

    def __init__(self, directory: Union[str, Path, None]):
        self.cache = ResultCache(directory)
        self.lock = threading.Lock()
        self.sessions = 0
        self.loads = 0
        self.stores = 0
        self.rejected_stores = 0
        self.probes = 0

    def handle(self, request: Dict) -> Dict:
        op = request.get("type")
        key = request.get("key")
        if op == "load" and isinstance(key, str):
            with self.lock:
                self.loads += 1
                encoded = self.cache.load_encoded(key)
            if encoded is None:
                return {"type": "entry", "key": key, "hit": False,
                        "result": None, "digest": None}
            return {"type": "entry", "key": key, "hit": True,
                    "result": encoded, "digest": stable_digest(encoded)}
        if op == "store" and isinstance(key, str):
            encoded = request.get("result")
            error = self._validate_store(encoded, request.get("digest"))
            if error is not None:
                with self.lock:
                    self.rejected_stores += 1
                return {"type": "stored", "key": key, "ok": False,
                        "error": error}
            with self.lock:
                self.stores += 1
                self.cache.store_encoded(key, encoded)
            return {"type": "stored", "key": key, "ok": True}
        if op == "probe" and isinstance(key, str):
            with self.lock:
                self.probes += 1
                present = self.cache.contains(key)
            return {"type": "probed", "key": key, "present": present}
        if op == "stats":
            with self.lock:
                counters = dict(self.cache.counters)
                counters.update(sessions=self.sessions, loads=self.loads,
                                server_stores=self.stores,
                                rejected_stores=self.rejected_stores,
                                probes=self.probes)
            return {"type": "stats", "counters": counters,
                    "directory": str(self.cache.directory)}
        return {"type": "error", "error": f"unknown request {op!r}"}

    @staticmethod
    def _validate_store(encoded: object, digest: object) -> Optional[str]:
        """Server-side integrity check: never persist a corrupt upload."""
        if not isinstance(encoded, dict):
            return "result is not an object"
        if digest != stable_digest(encoded):
            return "result digest mismatch"
        try:
            decode_result(encoded)
        except (ValueError, KeyError, TypeError) as error:
            return f"result does not decode: {error}"
        return None


def serve_cache(host: str = "127.0.0.1", port: int = 0,
                directory: Union[str, Path, None] = None,
                ready_file: Optional[str] = None,
                max_sessions: Optional[int] = None,
                stop: Optional[threading.Event] = None,
                quiet: bool = False) -> int:
    """Listen for cache clients; returns the bound port.

    Each connection gets its own session thread (coordinators and ``repro
    serve`` tenants multiplex freely); all of them share one
    :class:`ResultCache` behind one lock.  ``port=0`` binds an ephemeral
    port, written as ``host:port`` to ``ready_file`` when given;
    ``max_sessions`` stops accepting after that many connections (tests);
    ``stop`` is polled between ``accept`` attempts (in-process use).
    """
    server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    server.bind((host, port))
    server.listen(8)
    bound = server.getsockname()[1]
    state = _CacheServer(directory)
    if not quiet:
        print(f"[repro-cache] serving {state.cache.directory} on "
              f"{host}:{bound} (protocol v{PROTOCOL_VERSION})", flush=True)
    if ready_file is not None:
        path = Path(ready_file)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(f"{host}:{bound}\n")
    server.settimeout(_ACCEPT_TICK)
    threads: List[threading.Thread] = []
    conns: List[socket.socket] = []
    try:
        while stop is None or not stop.is_set():
            try:
                conn, _addr = server.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            state.sessions += 1
            conns.append(conn)
            thread = threading.Thread(
                target=_session, args=(conn, state), daemon=True)
            thread.start()
            threads.append(thread)
            if max_sessions is not None and state.sessions >= max_sessions:
                break
    finally:
        server.close()
        # Unblock sessions parked in recv so shutdown is prompt (close
        # alone does not interrupt a blocked recv); their threads absorb
        # the resulting OSError and exit.
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
    for thread in threads:
        thread.join(timeout=_STALL_SECONDS + RPC_TIMEOUT)
    return bound


def _session(conn: socket.socket, state: _CacheServer) -> None:
    """One client session: handshake, then serve request frames."""
    try:
        conn.settimeout(None)
        hello = recv_frame(conn)
        if hello is None or hello.get("type") != "hello":
            return
        # Always answer with our version so a skewed client can diagnose
        # the skew; then refuse to serve it.
        send_frame(conn, {"type": "hello", "version": PROTOCOL_VERSION,
                          "role": "cache-server"})
        if hello.get("version") != PROTOCOL_VERSION:
            return
        while True:
            request = recv_frame(conn)
            if request is None:
                return
            fault = None
            if request.get("type") in ("load", "store"):
                fault = take_protocol_fault(_FAULT_POINT)
            if fault is not None and fault.kind == "stall":
                # A wedged server: the client's RPC timeout expires and
                # the operation degrades to a miss / skipped store.
                seconds = _STALL_SECONDS
                if fault.arg is not None and not fault.once:
                    seconds = float(fault.arg)
                time.sleep(seconds)
            reply = state.handle(request)
            if fault is not None and fault.kind == "torn":
                _send_torn(conn)
                return
            if (fault is not None and fault.kind == "corrupt"
                    and reply.get("type") == "entry" and reply.get("hit")):
                reply = dict(reply, digest="0" * len(reply["digest"]))
            send_frame(conn, reply)
    except (OSError, FrameError):
        pass  # client vanished mid-session; the thread simply ends
    finally:
        try:
            conn.close()
        except OSError:
            pass


def _send_torn(conn: socket.socket) -> None:
    """Send a length prefix promising more bytes than follow, then die."""
    conn.sendall(struct.pack(">I", 1 << 16) + b"{\"type\":")
    conn.shutdown(socket.SHUT_RDWR)


# ------------------------------------------------------------------ client

def _handshake(sock: socket.socket) -> Dict:
    """Exchange hello frames with a cache server.

    Raises :class:`ProtocolVersionError` on version skew and
    :class:`FrameError` when the peer answers but is not a cache server
    (both are permanent — no amount of reconnecting fixes them); a peer
    that closes mid-handshake raises ``OSError`` like any other
    transient connection failure.
    """
    send_frame(sock, {"type": "hello", "version": PROTOCOL_VERSION,
                      "role": "cache-client"})
    reply = recv_frame(sock)
    if reply is None:
        raise OSError("cache server closed during handshake")
    if reply.get("type") != "hello":
        raise FrameError(f"expected hello frame, got {reply!r}")
    if reply.get("version") != PROTOCOL_VERSION:
        raise ProtocolVersionError(
            f"cache server speaks protocol v{reply.get('version')}, "
            f"client v{PROTOCOL_VERSION}")
    if reply.get("role") != "cache-server":
        raise FrameError(
            f"peer is a {reply.get('role')!r}, not a cache server")
    return reply


def probe_cache_server(host: str, port: int,
                       timeout: float = CONNECT_TIMEOUT) -> Dict:
    """Connect + handshake + one ``stats`` round trip (``repro doctor``).

    Raises ``OSError`` when unreachable, :class:`ProtocolVersionError` on
    skew and :class:`FrameError` when the peer is not a cache server.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        _handshake(sock)
        send_frame(sock, {"type": "stats"})
        reply = recv_frame(sock)
        if reply is None or reply.get("type") != "stats":
            raise FrameError(f"expected stats frame, got {reply!r}")
        return reply


class NetworkCacheClient:
    """A :class:`ResultCache`-shaped client for a ``repro cache-serve``.

    Drop-in for the suite layer: same ``load``/``store``/``contains``/
    ``probe_writable`` surface and the same hit/miss/store counters, so
    :func:`~repro.experiments.parallel.resolve_cache` and ``execute_cells``
    need no special cases beyond construction.  Every reply carrying a
    payload is digest-verified client-side (wire corruption → miss, never
    a wrong number).

    Failure semantics: an unreachable server at resolve time flips the
    client ``read_only`` (one warning, stores skipped) while ``load``
    falls back to the *read-only local* cache directory; a server lost
    mid-sweep costs misses/skipped stores until the reconnect cooldown
    readmits it — a restarted server is picked up transparently.
    """

    def __init__(self, url: str,
                 fallback_directory: Union[str, Path, None] = None,
                 rpc_timeout: float = RPC_TIMEOUT,
                 connect_timeout: float = CONNECT_TIMEOUT,
                 reconnect_cooldown: float = RECONNECT_COOLDOWN):
        self.url = url if is_cache_url(url) else f"tcp://{url}"
        self.host, self.port = parse_cache_url(self.url)
        self.fallback = ResultCache(fallback_directory, read_only=True)
        #: Local fallback directory (for warnings and doctor output).
        self.directory = self.fallback.directory
        self.read_only = False
        self.rpc_timeout = float(rpc_timeout)
        self.connect_timeout = float(connect_timeout)
        self.reconnect_cooldown = float(reconnect_cooldown)
        # ResultCache-compatible counters…
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0  # quarantining happens server-side
        self.lock_timeouts = 0  # no lock files on this path
        # …plus network-specific ones.
        self.rpc_errors = 0
        self.reconnects = 0
        self.corrupt_replies = 0
        self.rejected_stores = 0
        self.fallback_hits = 0
        self._sock: Optional[socket.socket] = None
        self._lock = threading.Lock()
        self._retry_at = 0.0
        self._connected_once = False
        self._last_error: Optional[str] = None
        self._fatal: Optional[str] = None

    # -- connection management

    def _ensure_conn_locked(self) -> Tuple[Optional[socket.socket],
                                           Optional[str]]:
        if self._sock is not None:
            return self._sock, None
        if self._fatal is not None:
            return None, self._fatal
        now = time.monotonic()
        if now < self._retry_at:
            return None, self._last_error or "in reconnect cooldown"
        sock: Optional[socket.socket] = None
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout)
            sock.settimeout(self.rpc_timeout)
            _handshake(sock)
        except (ProtocolVersionError, FrameError) as error:
            # Wrong protocol or wrong kind of peer: permanent.
            self._fatal = str(error)
            self._close(sock)
            return None, self._fatal
        except OSError as error:
            self._retry_at = now + self.reconnect_cooldown
            self._last_error = f"{type(error).__name__}: {error}"
            self._close(sock)
            return None, self._last_error
        if self._connected_once:
            self.reconnects += 1
        self._connected_once = True
        self._sock = sock
        return sock, None

    @staticmethod
    def _close(sock: Optional[socket.socket]) -> None:
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def _drop_locked(self) -> None:
        self._close(self._sock)
        self._sock = None

    def close(self) -> None:
        with self._lock:
            self._drop_locked()

    def _rpc(self, request: Dict) -> Optional[Dict]:
        """One request/reply round trip, retrying once across a reconnect.

        The retry covers exactly the restarted-server case: a send on a
        half-dead socket fails, the reconnect succeeds, the request runs.
        A still-dead server fails the reconnect (entering cooldown) and
        the operation reports unreachable (→ miss / skipped store).
        """
        with self._lock:
            for _attempt in (0, 1):
                sock, _error = self._ensure_conn_locked()
                if sock is None:
                    return None
                try:
                    send_frame(sock, request)
                    reply = recv_frame(sock)
                    if reply is None:
                        raise FrameError("cache server closed mid-rpc")
                    return reply
                except (OSError, FrameError):
                    self.rpc_errors += 1
                    self._drop_locked()
                    continue
            return None

    # -- ResultCache-compatible surface

    def probe_writable(self) -> Optional[str]:
        """None when the server answers, else the failure reason.

        :func:`~repro.experiments.parallel.resolve_cache` calls this once
        per sweep; a failure degrades the client to read-only local
        fallback with a single warning.
        """
        with self._lock:
            sock, error = self._ensure_conn_locked()
        if sock is None:
            return error or f"cache server {self.url} unreachable"
        return None

    def contains(self, key: str) -> bool:
        reply = self._rpc({"type": "probe", "key": key})
        if reply is None or reply.get("type") != "probed":
            return self.fallback.contains(key)
        return bool(reply.get("present"))

    def load(self, key: str) -> Optional[object]:
        """Decoded result from the server, or None.

        Unreachable server → read-only local fallback lookup.  A reply
        failing digest verification or decode is counted
        (``corrupt_replies``) and treated as a miss.
        """
        reply = self._rpc({"type": "load", "key": key})
        if reply is None or reply.get("type") != "entry":
            result = self.fallback.load(key)
            if result is not None:
                self.fallback_hits += 1
                self.hits += 1
                return result
            self.misses += 1
            return None
        if not reply.get("hit"):
            self.misses += 1
            return None
        encoded = reply.get("result")
        try:
            if not isinstance(encoded, dict):
                raise ValueError("entry payload is not an object")
            if reply.get("digest") != stable_digest(encoded):
                raise ValueError("entry digest mismatch")
            result = decode_result(encoded)
        except (ValueError, KeyError, TypeError):
            self.corrupt_replies += 1
            self.misses += 1
            return None
        self.hits += 1
        return result

    def store(self, key: str, result: object) -> None:
        """Upload one result; unreachable/rejected stores are counted only.

        ``read_only`` (set at resolve time when the server was already
        down) skips the RPC entirely, mirroring the local cache.
        """
        if self.read_only:
            return
        encoded = encode_result(result)
        reply = self._rpc({"type": "store", "key": key, "result": encoded,
                           "digest": stable_digest(encoded)})
        if reply is None or reply.get("type") != "stored":
            return
        if reply.get("ok"):
            self.stores += 1
        else:
            self.rejected_stores += 1

    def stats(self) -> Optional[Dict]:
        """Server-side counter snapshot, or None when unreachable."""
        reply = self._rpc({"type": "stats"})
        if reply is None or reply.get("type") != "stats":
            return None
        return reply

    @property
    def counters(self) -> Dict[str, int]:
        """Counter snapshot for metrics sweep records and doctor output."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "quarantined": self.quarantined,
            "lock_timeouts": self.lock_timeouts,
            "rpc_errors": self.rpc_errors,
            "reconnects": self.reconnects,
            "corrupt_replies": self.corrupt_replies,
            "rejected_stores": self.rejected_stores,
            "fallback_hits": self.fallback_hits,
        }


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point for ``repro cache-serve``."""
    parser = argparse.ArgumentParser(
        prog="repro cache-serve",
        description="serve a shared result cache to repro coordinators "
                    "over TCP")
    parser.add_argument("--host", default="127.0.0.1",
                        help="address to bind (default: %(default)s)")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: 0 = ephemeral, printed "
                             "and written to --ready-file)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="cache directory to serve (default: "
                             "$REPRO_CACHE_DIR or ~/.cache/repro-mascot)")
    parser.add_argument("--ready-file", default=None, metavar="FILE",
                        help="write host:port to this file once listening")
    parser.add_argument("--max-sessions", type=int, default=None,
                        metavar="N",
                        help="exit after N client sessions "
                             "(default: serve forever)")
    args = parser.parse_args(argv)
    serve_cache(host=args.host, port=args.port, directory=args.cache_dir,
                ready_file=args.ready_file, max_sessions=args.max_sessions)
    return 0
