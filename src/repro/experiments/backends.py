"""Executor backends: where suite cells actually run.

The supervisor loop in :mod:`repro.experiments.parallel` schedules cells,
enforces deadlines and classifies failures — but it no longer owns the
execution substrate.  That is an :class:`ExecutorBackend`:

* :class:`LocalPoolBackend` — today's ``ProcessPoolExecutor``, wrapped
  behaviour-preservingly.  Worker loss is *ambiguous* (every in-flight
  future observes the same ``BrokenProcessPool``), so the supervisor keeps
  its suspect-probation machinery for this backend.
* :class:`WorkerBackend` — one TCP connection per ``repro worker``
  process, which may live on other hosts.  Dispatches are covered by
  *leases*: the worker heartbeats while computing, and a missed heartbeat
  or dropped socket expires the lease and requeues the cell.  Worker loss
  is *attributable* (one connection, one cell), so there is no probation;
  a crashed worker costs exactly one requeue.

Wire protocol
-------------
Length-prefixed JSON frames: a 4-byte big-endian length followed by a
UTF-8 JSON object.  The coordinator connects and sends ``hello`` (version
check), then ``run`` frames carrying the wire-encoded
:class:`~repro.experiments.parallel.CellSpec` and a lease id; the worker
answers with ``heartbeat`` frames while computing and one terminal
``result`` (with a content digest the coordinator verifies — a mismatch
is a ``result-corrupt`` failure, never a wrong number) or ``error``
frame.  A torn frame or dropped socket is classified ``worker-lost``.
Everything on the wire is JSON built from the same encoders as the result
cache and journal, so a remotely computed cell is bit-identical to a
local one.

This module (with :mod:`repro.experiments.worker`) is the only sanctioned
home for socket use — the ``conc-socket`` lint rule keeps network I/O
from leaking into simulation code.
"""

from __future__ import annotations

import json
import select
import socket
import struct
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..core.config import CoreConfig
from ..memory.hierarchy import HierarchyConfig
from ..common.hashing import stable_digest
from .resilience import CellExecutionError

__all__ = [
    "BackendBrokenError",
    "ExecutorBackend",
    "FrameError",
    "LeaseExpiredError",
    "LocalPoolBackend",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolVersionError",
    "RemoteCellError",
    "ResultCorruptError",
    "WorkerBackend",
    "WorkerLostError",
    "lease_id",
    "parse_endpoint",
    "parse_endpoints",
    "probe_endpoint",
    "recv_frame",
    "send_frame",
    "spec_from_wire",
    "spec_to_wire",
]

#: Bump when the frame grammar changes incompatibly.  Exchanged in the
#: ``hello`` handshake; a skewed worker is refused (and reported by
#: ``repro doctor --workers``) rather than fed cells it may misdecode.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's payload; a length prefix beyond this is a
#: protocol violation (torn stream, or not our protocol at all).
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")

#: Default TCP connect timeout (seconds) for worker endpoints.
CONNECT_TIMEOUT = 5.0


class FrameError(ConnectionError):
    """The byte stream violated the framing protocol (torn/oversized)."""


class ProtocolVersionError(ConnectionError):
    """The worker speaks a different protocol version."""


class BackendBrokenError(RuntimeError):
    """The execution substrate is unusable; the supervisor must rebuild."""


class WorkerLostError(CellExecutionError):
    """The process/connection running a cell died mid-flight.

    ``original`` carries the underlying exception when one exists (the
    local pool's ``BrokenProcessPool``), so fail-fast re-raises exactly
    what the historical engine raised.
    """

    def __init__(self, message: str,
                 original: Optional[BaseException] = None):
        super().__init__(message)
        self.original = original


class LeaseExpiredError(CellExecutionError):
    """A worker stopped heartbeating past the lease deadline."""


class ResultCorruptError(CellExecutionError):
    """A result frame failed its content-digest verification."""


class RemoteCellError(CellExecutionError):
    """The cell raised inside a remote worker; message carries the repr."""


# --------------------------------------------------------------- framing

def send_frame(sock: socket.socket, payload: Dict, lock=None) -> None:
    """Serialise ``payload`` as one length-prefixed JSON frame."""
    data = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError(f"frame of {len(data)} bytes exceeds the "
                         f"{MAX_FRAME_BYTES}-byte protocol ceiling")
    message = _HEADER.pack(len(data)) + data
    if lock is not None:
        with lock:
            sock.sendall(message)
    else:
        sock.sendall(message)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks: List[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if chunks:
                raise FrameError(
                    f"torn frame: stream ended {remaining} bytes short")
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict]:
    """Read one frame; None on clean EOF (peer closed between frames)."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(f"frame length {length} exceeds the "
                         f"{MAX_FRAME_BYTES}-byte protocol ceiling")
    body = _recv_exact(sock, length)
    if body is None:
        raise FrameError("torn frame: stream ended before the payload")
    try:
        payload = json.loads(body.decode("utf-8"))
    except ValueError as error:
        raise FrameError(f"undecodable frame payload: {error}") from None
    if not isinstance(payload, dict):
        raise FrameError("frame payload is not a JSON object")
    return payload


# ------------------------------------------------------------ wire codec

def spec_to_wire(spec) -> Dict:
    """JSON-serialisable form of a CellSpec (nested configs flattened)."""
    wire = asdict(spec)
    return wire


def spec_from_wire(wire: Dict):
    """Inverse of :func:`spec_to_wire`; rebuilds the config dataclasses."""
    from .parallel import CellSpec  # local import: parallel imports us

    fields = dict(wire)
    config = fields.pop("config", None)
    if config is not None:
        memory = config.pop("memory", None)
        if memory is not None:
            config["memory"] = HierarchyConfig(**memory)
        config = CoreConfig(**config)
    return CellSpec(config=config, **fields)


def lease_id(key: str, attempt: int) -> str:
    """Deterministic lease id for one dispatch (no clock/entropy reads)."""
    return "lease-" + stable_digest(f"{key}:{attempt}")[:12]


def parse_endpoint(chunk: str) -> Tuple[str, int]:
    """Parse one ``host:port`` (or bracketed ``[v6addr]:port``) endpoint.

    IPv6 literals must be bracketed (``[::1]:5000``) — a bare ``::1:5000``
    is ambiguous.  Ports outside 1–65535 (``int`` happily parses ``-1``
    and ``99999``) are rejected here rather than at connect time.
    """
    chunk = chunk.strip()
    if chunk.startswith("["):
        host, sep, port_text = chunk[1:].partition("]:")
        if not sep or not host:
            raise ValueError(
                f"bad worker endpoint {chunk!r}: want [v6addr]:port")
    else:
        host, sep, port_text = chunk.rpartition(":")
        if not sep or not host:
            raise ValueError(f"bad worker endpoint {chunk!r}: want host:port")
        if ":" in host:
            raise ValueError(
                f"bad worker endpoint {chunk!r}: bracket IPv6 addresses "
                "([::1]:5000)")
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"bad worker endpoint {chunk!r}: port is not an integer"
        ) from None
    if not 1 <= port <= 65535:
        raise ValueError(
            f"bad worker endpoint {chunk!r}: port {port} outside 1-65535")
    return host, port


def parse_endpoints(text: str) -> Tuple[Tuple[str, int], ...]:
    """Parse ``host:port[,host:port...]`` into endpoint tuples.

    A duplicate endpoint is an error: it would silently double-connect
    one worker, and ``repro worker`` serves one session at a time — the
    duplicate connection would deadlock the sweep until its deadline.
    """
    endpoints: List[Tuple[str, int]] = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        endpoint = parse_endpoint(chunk)
        if endpoint in endpoints:
            raise ValueError(
                f"duplicate worker endpoint {chunk!r}: each endpoint is "
                "one worker; list it once")
        endpoints.append(endpoint)
    if not endpoints:
        raise ValueError(f"no worker endpoints in {text!r}")
    return tuple(endpoints)


def _handshake(sock: socket.socket) -> Dict:
    """Exchange hello frames; raises ProtocolVersionError on skew."""
    send_frame(sock, {"type": "hello", "version": PROTOCOL_VERSION,
                      "role": "coordinator"})
    reply = recv_frame(sock)
    if reply is None or reply.get("type") != "hello":
        raise FrameError(f"expected hello frame, got {reply!r}")
    if reply.get("version") != PROTOCOL_VERSION:
        raise ProtocolVersionError(
            f"worker speaks protocol v{reply.get('version')}, "
            f"coordinator v{PROTOCOL_VERSION}")
    return reply


def probe_endpoint(host: str, port: int,
                   timeout: float = CONNECT_TIMEOUT) -> Dict:
    """Connect + handshake one endpoint; returns the worker's hello.

    Used by ``repro doctor --workers``.  Raises ``OSError`` when the
    endpoint is unreachable, :class:`ProtocolVersionError` on version
    skew and :class:`FrameError` when the peer is not a repro worker.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        sock.settimeout(timeout)
        return _handshake(sock)


# ----------------------------------------------------------- backend API

class ExecutorBackend:
    """Where cells run; the supervisor drives this interface.

    ``submit`` hands one cell to the substrate and returns an opaque
    handle; ``wait`` blocks up to ``timeout`` for handles to finish;
    ``result`` returns the cell's result or raises the failure
    (:class:`WorkerLostError`, :class:`LeaseExpiredError`,
    :class:`ResultCorruptError`, :class:`RemoteCellError`, or the cell's
    own exception).  ``attributable`` declares whether a worker loss
    identifies its cell with certainty — when False the supervisor runs
    its suspect-probation protocol; ``isolates_failures`` declares
    whether a hung or lost worker leaves the other in-flight cells
    untouched (True for one-connection-per-worker backends, False for a
    shared process pool that must be replaced wholesale).
    """

    attributable = False
    isolates_failures = False
    #: True when dispatches are covered by journaled leases.
    leased = False

    #: Optional callback ``(action, handle)`` for lease lifecycle events
    #: ("renew"/"expire"); the supervisor wires it to the journal and
    #: metrics writer.  "grant" is recorded by the supervisor at submit.
    lease_observer: Optional[Callable[[str, object], None]] = None

    @property
    def workers(self) -> int:
        """Current concurrent capacity (may shrink as workers die)."""
        raise NotImplementedError

    def submit(self, fn, spec, lease: Optional[str] = None):
        raise NotImplementedError

    def wait(self, timeout: float) -> Set[object]:
        raise NotImplementedError

    def result(self, handle):
        raise NotImplementedError

    def done(self, handle) -> bool:
        raise NotImplementedError

    def forget(self, handle) -> None:
        """Drop one in-flight handle (timeout path); never raises."""
        raise NotImplementedError

    def connect_all(self) -> int:
        """Establish the substrate's connections; returns capacity.

        A no-op for process-pool backends (the pool exists from
        construction); the worker backend dials every endpoint here.
        """
        return self.workers

    def rebuild(self) -> None:
        """Replace a broken substrate; in-flight handles are abandoned."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def describe(self, handle) -> str:
        """Short label of where a handle runs, for messages and leases."""
        return "local"

    #: Lifetime counters for the metrics sweep record.
    counters: Dict[str, int]


class LocalPoolBackend(ExecutorBackend):
    """Today's ProcessPoolExecutor, wrapped behaviour-preservingly.

    Handles are the pool's futures.  ``BrokenProcessPool`` is translated
    to :class:`WorkerLostError` with the original exception attached, so
    the supervisor's fail-fast path re-raises exactly what it always
    raised.  Worker loss is ambiguous (``attributable = False``): the
    supervisor keeps its suspect-probation machinery.
    """

    attributable = False
    isolates_failures = False
    leased = False

    def __init__(self, workers: int):
        self._workers = workers
        self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=workers)
        self._inflight: Set[object] = set()
        self.counters = {}

    @property
    def workers(self) -> int:
        return self._workers

    def submit(self, fn, spec, lease: Optional[str] = None):
        try:
            future = self._pool.submit(fn, spec)
        except BrokenProcessPool as error:
            raise BackendBrokenError(str(error)) from error
        self._inflight.add(future)
        return future

    def wait(self, timeout: float) -> Set[object]:
        if not self._inflight:
            return set()
        done, _ = wait(self._inflight, timeout=timeout,
                       return_when=FIRST_COMPLETED)
        self._inflight -= done
        return done

    def result(self, handle):
        try:
            return handle.result()
        except BrokenProcessPool as error:
            raise WorkerLostError(
                "worker process died (BrokenProcessPool)",
                original=error) from error

    def done(self, handle) -> bool:
        return handle.done()

    def forget(self, handle) -> None:
        self._inflight.discard(handle)

    def rebuild(self) -> None:
        self._terminate()
        self._pool = ProcessPoolExecutor(max_workers=self._workers)

    def close(self) -> None:
        self._terminate()
        self._pool = None

    def _terminate(self) -> None:
        """Tear the pool down without waiting on hung or dead workers."""
        pool = self._pool
        if pool is None:
            return
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # noqa: BLE001 — already-dead worker
                pass
        pool.shutdown(wait=False, cancel_futures=True)
        self._inflight.clear()


# ------------------------------------------------------- worker backend

class _Connection:
    """One coordinator→worker TCP session."""

    def __init__(self, endpoint: Tuple[str, int], sock: socket.socket):
        self.endpoint = endpoint
        self.sock = sock
        self.handle: Optional["RemoteHandle"] = None
        #: Monotonic time of the last heartbeat (or dispatch).
        self.last_beat = 0.0

    @property
    def label(self) -> str:
        return f"{self.endpoint[0]}:{self.endpoint[1]}"

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class RemoteHandle:
    """In-flight (or finished) remote cell; the WorkerBackend's handle."""

    __slots__ = ("lease", "label", "finished", "_result", "_error")

    def __init__(self, lease: str, label: str):
        self.lease = lease
        self.label = label
        self.finished = False
        self._result = None
        self._error: Optional[BaseException] = None

    def settle_ok(self, result) -> None:
        self.finished = True
        self._result = result

    def settle_error(self, error: BaseException) -> None:
        self.finished = True
        self._error = error


class WorkerBackend(ExecutorBackend):
    """Cells dispatched over TCP to ``repro worker`` processes.

    One connection per endpoint, one in-flight cell per connection.
    Capacity is the number of live connections and *shrinks* as workers
    die; dead endpoints are retried on demand (``reconnects`` counter).
    A lease covers every dispatch: the worker heartbeats every
    ``heartbeat_interval`` seconds while computing, and a silent gap
    longer than ``lease_timeout`` expires the lease — the connection is
    declared wedged, dropped, and the cell requeued by the supervisor.

    Worker loss is attributable (one connection runs one cell), so a
    crash costs exactly one requeue and never triggers probation.
    """

    attributable = True
    isolates_failures = True
    leased = True

    def __init__(self, endpoints: Sequence[Tuple[str, int]],
                 lease_timeout: float = 10.0,
                 heartbeat_interval: float = 1.0,
                 connect_timeout: float = CONNECT_TIMEOUT):
        if not endpoints:
            raise ValueError("WorkerBackend needs at least one endpoint")
        self.endpoints: Tuple[Tuple[str, int], ...] = tuple(endpoints)
        self.lease_timeout = lease_timeout
        self.heartbeat_interval = heartbeat_interval
        self.connect_timeout = connect_timeout
        self._conns: Dict[Tuple[str, int], _Connection] = {}
        #: Endpoints refused for protocol-version skew: never retried.
        self._skewed: Dict[Tuple[str, int], str] = {}
        #: Per-endpoint monotonic time before which reconnects are not
        #: attempted, so a dead endpoint is not re-dialled every tick.
        self._retry_at: Dict[Tuple[str, int], float] = {}
        self.reconnect_cooldown = 1.0
        self._done: Set[RemoteHandle] = set()
        self.lease_observer = None
        self.counters = {
            "leases_granted": 0,
            "leases_expired": 0,
            "heartbeats": 0,
            "results": 0,
            "reconnects": 0,
            "worker_losses": 0,
            "corrupt_results": 0,
        }
        self._ever_connected = False

    # ------------------------------------------------------- connections

    def _connect(self, endpoint: Tuple[str, int]) -> Optional[_Connection]:
        if endpoint in self._skewed:
            return None
        if self._retry_at.get(endpoint, 0.0) > time.monotonic():
            return None
        try:
            sock = socket.create_connection(endpoint,
                                            timeout=self.connect_timeout)
            sock.settimeout(self.connect_timeout)
            _handshake(sock)
            sock.settimeout(None)
        except ProtocolVersionError as error:
            self._skewed[endpoint] = str(error)
            return None
        except (OSError, FrameError):
            self._retry_at[endpoint] = (time.monotonic()
                                        + self.reconnect_cooldown)
            return None
        self._retry_at.pop(endpoint, None)
        conn = _Connection(endpoint, sock)
        self._conns[endpoint] = conn
        if self._ever_connected:
            self.counters["reconnects"] += 1
        return conn

    def _drop(self, conn: _Connection) -> None:
        conn.close()
        self._conns.pop(conn.endpoint, None)

    def connect_all(self) -> int:
        """Connect every endpoint not currently live; returns live count."""
        for endpoint in self.endpoints:
            if endpoint not in self._conns:
                self._connect(endpoint)
        if self._conns:
            self._ever_connected = True
        return len(self._conns)

    @property
    def workers(self) -> int:
        return len(self._conns)

    @property
    def skewed(self) -> Dict[Tuple[str, int], str]:
        """Endpoints refused for version skew (doctor/diagnostics)."""
        return dict(self._skewed)

    # --------------------------------------------------------- dispatch

    def submit(self, fn, spec, lease: Optional[str] = None):
        """Send one cell to an idle worker; ``fn`` is unused (remote)."""
        idle = [c for c in self._conns.values() if c.handle is None]
        if not idle:
            self.connect_all()
            idle = [c for c in self._conns.values() if c.handle is None]
        last_error: Optional[Exception] = None
        for conn in idle:
            handle = RemoteHandle(lease or lease_id(stable_digest(
                spec_to_wire(spec)), 1), conn.label)
            try:
                send_frame(conn.sock, {
                    "type": "run",
                    "lease": handle.lease,
                    "heartbeat": self.heartbeat_interval,
                    "spec": spec_to_wire(spec),
                })
            except OSError as error:
                last_error = error
                self._drop(conn)
                continue
            conn.handle = handle
            conn.last_beat = time.monotonic()
            self.counters["leases_granted"] += 1
            return handle
        raise BackendBrokenError(
            "no live worker connection to dispatch to"
            + (f" ({last_error})" if last_error else ""))

    # ----------------------------------------------------------- events

    def wait(self, timeout: float) -> Set[RemoteHandle]:
        deadline = time.monotonic() + timeout
        while True:
            self._poll_sockets(max(deadline - time.monotonic(), 0.0))
            self._expire_leases()
            if self._done or time.monotonic() >= deadline:
                done, self._done = self._done, set()
                return done

    def _poll_sockets(self, timeout: float) -> None:
        conns = list(self._conns.values())
        if not conns:
            if timeout > 0:
                time.sleep(min(timeout, 0.05))
            return
        try:
            readable, _, _ = select.select(
                [c.sock for c in conns], [], [], timeout)
        except (OSError, ValueError):
            # A socket died between listing and selecting; poll each.
            readable = [c.sock for c in conns]
        by_sock = {c.sock: c for c in conns}
        for sock in readable:
            conn = by_sock.get(sock)
            if conn is not None and conn.endpoint in self._conns:
                self._read_one(conn)

    def _read_one(self, conn: _Connection) -> None:
        try:
            frame = recv_frame(conn.sock)
        except (OSError, FrameError) as error:
            self._lose(conn, f"connection to {conn.label} failed: {error}")
            return
        if frame is None:
            self._lose(conn, f"worker {conn.label} closed the connection")
            return
        kind = frame.get("type")
        handle = conn.handle
        if kind == "heartbeat":
            conn.last_beat = time.monotonic()
            self.counters["heartbeats"] += 1
            if handle is not None and self.lease_observer is not None:
                self.lease_observer("renew", handle)
            return
        if handle is None:
            return  # stray frame on an idle connection: ignore
        if kind == "result":
            encoded = frame.get("result")
            if stable_digest(encoded) != frame.get("digest"):
                self.counters["corrupt_results"] += 1
                handle.settle_error(ResultCorruptError(
                    f"result digest mismatch from {conn.label} "
                    f"(lease {handle.lease})"))
            else:
                from .result_cache import decode_result
                try:
                    handle.settle_ok(decode_result(encoded))
                    self.counters["results"] += 1
                except (KeyError, TypeError, ValueError) as error:
                    self.counters["corrupt_results"] += 1
                    handle.settle_error(ResultCorruptError(
                        f"undecodable result from {conn.label}: {error}"))
            conn.handle = None
            self._done.add(handle)
        elif kind == "error":
            handle.settle_error(RemoteCellError(
                f"{frame.get('error')} (on {conn.label})"))
            conn.handle = None
            self._done.add(handle)

    def _lose(self, conn: _Connection, message: str) -> None:
        handle = conn.handle
        self._drop(conn)
        if handle is not None and not handle.finished:
            self.counters["worker_losses"] += 1
            handle.settle_error(WorkerLostError(message))
            self._done.add(handle)

    def _expire_leases(self) -> None:
        now = time.monotonic()
        for conn in list(self._conns.values()):
            handle = conn.handle
            if handle is None:
                continue
            if now - conn.last_beat > self.lease_timeout:
                self.counters["leases_expired"] += 1
                handle.settle_error(LeaseExpiredError(
                    f"lease {handle.lease} on {conn.label} expired: no "
                    f"heartbeat for {self.lease_timeout:.3g}s"))
                if self.lease_observer is not None:
                    self.lease_observer("expire", handle)
                # The worker is wedged or partitioned: the connection
                # cannot be trusted for further dispatches.
                self._done.add(handle)
                self._drop(conn)

    # ---------------------------------------------------------- results

    def result(self, handle: RemoteHandle):
        if handle._error is not None:
            raise handle._error
        return handle._result

    def done(self, handle: RemoteHandle) -> bool:
        return handle.finished

    def forget(self, handle: RemoteHandle) -> None:
        """Abandon one in-flight cell (timeout): drop its connection."""
        self._done.discard(handle)
        for conn in list(self._conns.values()):
            if conn.handle is handle:
                conn.handle = None
                self._drop(conn)

    def rebuild(self) -> None:
        for conn in list(self._conns.values()):
            self._drop(conn)
        self._done.clear()
        self._retry_at.clear()  # a deliberate rebuild re-dials everything
        self.connect_all()

    def close(self) -> None:
        for conn in list(self._conns.values()):
            self._drop(conn)
        self._done.clear()

    def describe(self, handle) -> str:
        return getattr(handle, "label", "worker")
