"""Single-run drivers: prediction-only replay and full timing simulation.

Two evaluation modes (DESIGN.md §5):

* :func:`run_prediction_only` replays a trace through a predictor in
  program order — predict at decode, train at commit, history hooks on
  every branch — and classifies every load.  Fast; used for the accuracy
  figures (2, 8, 10, 13, 14).
* :func:`run_timing` runs the full out-of-order pipeline for IPC
  (figures 7, 9, 11, 12, 15).

Traces are cached per (benchmark, length, seeds, windows) so a suite sweep
over many predictors generates each trace once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.accuracy import AccuracyStats, classify
from ..analysis.f1 import F1Recorder, RankedF1Profile
from ..core.config import GOLDEN_COVE, CoreConfig
from ..core.pipeline import Pipeline
from ..core.stats import PipelineStats
from ..predictors.base import ActualOutcome, MDPredictor
from ..predictors.mascot import Mascot
from ..sampling.policy import SamplingPolicy
from ..trace.generator import generate_trace
from ..trace.uop import MicroOp, OpClass

__all__ = [
    "TraceCache",
    "PredictionRunResult",
    "run_prediction_only",
    "run_timing",
    "DEFAULT_TRACE_LENGTH",
    "TIMING_ENGINES",
]

#: Default dynamic trace length per benchmark.  Chosen so a full-suite,
#: all-predictor sweep completes in minutes in pure Python while giving the
#: predictors thousands of dynamic instances per static load.
DEFAULT_TRACE_LENGTH = 80_000


class TraceCache:
    """Memoises generated traces keyed by all generation parameters."""

    def __init__(self) -> None:
        self._traces: Dict[Tuple, List[MicroOp]] = {}

    def get(
        self,
        benchmark: str,
        num_uops: int,
        program_seed: int = 0,
        trace_seed: int = 1,
        store_window: int = 114,
        instr_window: int = 512,
    ) -> List[MicroOp]:
        key = (benchmark, num_uops, program_seed, trace_seed,
               store_window, instr_window)
        trace = self._traces.get(key)
        if trace is None:
            trace = generate_trace(
                benchmark, num_uops,
                program_seed=program_seed, trace_seed=trace_seed,
                store_window=store_window, instr_window=instr_window,
            )
            self._traces[key] = trace
        return trace

    def clear(self) -> None:
        self._traces.clear()


#: Process-wide default cache used by the figure generators.  Safe across
#: pool workers: entries are pure functions of their generation-parameter
#: keys, so per-worker copies can only agree.
# repro-lint: allow(conc-mutable-global) -- content-keyed trace memo, entries are pure functions of the key
_GLOBAL_CACHE = TraceCache()


def default_cache() -> TraceCache:
    return _GLOBAL_CACHE


@dataclass
class PredictionRunResult:
    """Everything a prediction-only replay produces."""

    accuracy: AccuracyStats
    #: Predictions per source table for TAGE-like predictors (Fig. 13);
    #: empty for predictors without tables.
    predictions_per_table: List[int] = field(default_factory=list)
    #: Ranked F1 profile when an :class:`F1Recorder` was attached (Fig. 14).
    f1_profile: Optional[RankedF1Profile] = None
    #: Per-table telemetry counters (``TableTelemetry.to_dict``) when the
    #: run was made with ``telemetry=True``; None otherwise.
    telemetry: Optional[dict] = None
    #: Sampled-reconstruction metadata (see
    #: :mod:`repro.sampling.reconstruct`); None for full-trace runs.  When
    #: set, the accuracy counts are full-run estimates scaled from the
    #: measured regions.
    sampling: Optional[dict] = None

    # -- serialisation (on-disk result cache) ----------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable form; inverse of :meth:`from_dict`."""
        data = {
            "accuracy": self.accuracy.to_dict(),
            "predictions_per_table": list(self.predictions_per_table),
            "f1_profile": (self.f1_profile.to_dict()
                           if self.f1_profile is not None else None),
            "telemetry": self.telemetry,
        }
        if self.sampling is not None:
            data["sampling"] = self.sampling
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PredictionRunResult":
        profile = data.get("f1_profile")
        telemetry = data.get("telemetry")
        sampling = data.get("sampling")
        return cls(
            accuracy=AccuracyStats.from_dict(data["accuracy"]),
            predictions_per_table=[int(c)
                                   for c in data["predictions_per_table"]],
            f1_profile=(RankedF1Profile.from_dict(profile)
                        if profile is not None else None),
            telemetry=dict(telemetry) if telemetry is not None else None,
            sampling=dict(sampling) if sampling is not None else None,
        )


def run_prediction_only(
    trace: Sequence[MicroOp],
    predictor: Optional[MDPredictor],
    f1_period: Optional[int] = None,
    warmup: int = 0,
    telemetry: bool = False,
    sampling: Optional[SamplingPolicy] = None,
    predictor_factory: Optional[Callable[[], MDPredictor]] = None,
) -> PredictionRunResult:
    """Replay ``trace`` through ``predictor`` and classify every load.

    ``warmup`` micro-ops at the head of the trace train the predictor but
    are excluded from the accuracy statistics — the paper measures warmed
    SimPoint regions, and cold-start allocations would otherwise dominate
    short synthetic traces.

    ``telemetry`` attaches a :class:`~repro.obs.telemetry.TableTelemetry`
    sink to the predictor for the duration of the run; the counters are
    returned in :attr:`PredictionRunResult.telemetry`.

    ``sampling`` switches to sampled replay of the policy's selected
    regions with full-run reconstruction (see
    :func:`repro.sampling.reconstruct.run_sampled_prediction`); it
    requires ``predictor_factory`` (fresh predictor per region, with
    ``predictor`` passed as None) and is incompatible with ``warmup`` /
    ``f1_period`` / ``telemetry``, which describe one contiguous run.
    """
    if sampling is not None:
        if predictor_factory is None:
            raise ValueError(
                "sampled prediction runs need predictor_factory: each "
                "region is measured with a fresh predictor"
            )
        if warmup or f1_period is not None or telemetry:
            raise ValueError(
                "sampling is incompatible with warmup, f1_period and "
                "telemetry: those describe one contiguous replay"
            )
        from ..sampling.reconstruct import run_sampled_prediction

        return run_sampled_prediction(trace, predictor_factory, sampling)
    if predictor is None:
        raise ValueError("full-trace runs need a predictor instance")
    recorder: Optional[F1Recorder] = None
    if f1_period is not None:
        if not isinstance(predictor, Mascot):
            raise TypeError("F1 recording requires a MASCOT-family predictor")
        recorder = F1Recorder(predictor, period_loads=f1_period)
    sink = None
    if telemetry:
        from ..obs.telemetry import TableTelemetry

        sink = predictor.attach_telemetry(TableTelemetry())

    stats = AccuracyStats()
    branch_count = 0
    store_branch: Dict[int, int] = {}
    store_pc: Dict[int, int] = {}

    for uop in trace:
        op = uop.op
        if op is OpClass.BRANCH_COND:
            predictor.on_branch(uop.pc, uop.taken)
            branch_count += 1
        elif op is OpClass.BRANCH_INDIRECT:
            predictor.on_indirect(uop.pc, uop.target)
            branch_count += 1
        elif uop.is_store:
            predictor.on_store(uop)
            store_branch[uop.seq] = branch_count
            store_pc[uop.seq] = uop.pc
            if len(store_branch) > 4096:
                _prune(store_branch, uop.seq)
                _prune(store_pc, uop.seq)
        elif uop.is_load:
            prediction = predictor.predict(uop)
            branches_between = 0
            pc_of_store = None
            if uop.has_dependence:
                branches_between = branch_count - store_branch.get(
                    uop.dep_store_seq, branch_count
                )
                pc_of_store = store_pc.get(uop.dep_store_seq)
            actual = ActualOutcome.from_uop(
                uop, branches_between=branches_between, store_pc=pc_of_store
            )
            if uop.seq >= warmup:
                stats.record(classify(prediction, actual,
                                      predictor.bypassable_classes))
            predictor.train(uop, prediction, actual)
            if recorder is not None:
                recorder.tick()

    # The measured-instruction denominator is exactly the post-warmup
    # region.  A warmup covering the whole trace measures nothing:
    # zero instructions, zero loads (not a phantom instruction that
    # would fabricate a non-zero MPKI denominator).
    stats.instructions = max(len(trace) - warmup, 0)
    per_table = list(getattr(predictor, "predictions_per_table", []))
    profile = recorder.finish() if recorder is not None else None
    return PredictionRunResult(
        accuracy=stats,
        predictions_per_table=per_table,
        f1_profile=profile,
        telemetry=sink.to_dict() if sink is not None else None,
    )


def _prune(mapping: Dict[int, int], current_seq: int,
           horizon: int = 2048) -> None:
    """Drop entries too old to matter for in-flight dependence queries.

    Bounded-memory invariant: pruning fires once the map exceeds 4096
    entries and keeps only stores within ``horizon`` (2048) sequence
    numbers, so the map can never regrow past one store per retained
    sequence number — its size is bounded by ``horizon`` right after a
    prune and by 4097 at any instant.

    This is lossless for classification: the trace generator only
    annotates dependencies within ``instr_window`` (default 512 ≪ 2048)
    micro-ops of the load, and :func:`classify` reads the ground truth
    from the load's own annotations, never from these maps.  What a
    pruned store *does* lose is its auxiliary context — the
    ``branches_between`` and ``store_pc`` hints handed to
    ``ActualOutcome`` — which only degrades training heuristics (e.g.
    Store Sets' SSIT updates) for dependencies older than the horizon;
    with default trace windows that case cannot occur.
    """
    dead = [seq for seq in mapping if current_seq - seq > horizon]
    for seq in dead:
        del mapping[seq]


#: Timing-engine registry: ``scalar`` is the reference event-at-a-time
#: pipeline; ``batched`` the two-phase columnar engine proven bit-identical
#: by the golden equivalence tier (tests/equivalence/).
TIMING_ENGINES = ("scalar", "batched")


def run_timing(
    trace: Sequence[MicroOp],
    predictor: Optional[MDPredictor],
    config: CoreConfig = GOLDEN_COVE,
    engine: str = "scalar",
    measure_from: int = 0,
    sampling: Optional[SamplingPolicy] = None,
    predictor_factory: Optional[Callable[[], MDPredictor]] = None,
    hierarchy=None,
) -> PipelineStats:
    """Run the out-of-order timing model; returns its statistics.

    ``engine`` selects the implementation: ``"scalar"`` (the reference
    :class:`~repro.core.pipeline.Pipeline`) or ``"batched"`` (the
    bit-identical :class:`~repro.core.batched.BatchedPipeline`).
    ``measure_from`` designates a warmup prefix excluded from measurement.
    ``hierarchy`` supplies a pre-built (possibly pre-warmed)
    :class:`~repro.memory.hierarchy.MemoryHierarchy` instead of the cold
    default — sampled runs use it for functional cache warmup.

    ``sampling`` switches to sampled simulation: only the policy's
    selected regions are simulated and the returned statistics are a
    full-run reconstruction carrying ``stats.sampling`` metadata (see
    :mod:`repro.sampling.reconstruct`).  Sampled runs need a fresh
    predictor per region, so ``predictor_factory`` is required (and
    ``predictor`` ignored — pass None).
    """
    if engine not in TIMING_ENGINES:
        raise ValueError(
            f"unknown timing engine {engine!r}; known: "
            + ", ".join(TIMING_ENGINES)
        )
    if sampling is not None:
        if predictor_factory is None:
            raise ValueError(
                "sampled timing runs need predictor_factory: each region "
                "is measured with a fresh predictor"
            )
        if measure_from:
            raise ValueError(
                "measure_from and sampling are mutually exclusive: warmup "
                "of sampled runs is governed by the policy's "
                "warmup_intervals"
            )
        from ..sampling.reconstruct import run_sampled_timing

        return run_sampled_timing(
            trace, predictor_factory, sampling,
            config=config, engine=engine,
        ).stats
    if predictor is None:
        raise ValueError("full-trace runs need a predictor instance")
    if engine == "batched":
        from ..core.batched import BatchedPipeline
        return BatchedPipeline(predictor, config=config,
                               hierarchy=hierarchy).run(
            trace, measure_from=measure_from)
    return Pipeline(predictor, config=config, hierarchy=hierarchy).run(
        trace, measure_from=measure_from)
