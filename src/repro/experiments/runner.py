"""Single-run drivers: prediction-only replay and full timing simulation.

Two evaluation modes (DESIGN.md §5):

* :func:`run_prediction_only` replays a trace through a predictor in
  program order — predict at decode, train at commit, history hooks on
  every branch — and classifies every load.  Fast; used for the accuracy
  figures (2, 8, 10, 13, 14).
* :func:`run_timing` runs the full out-of-order pipeline for IPC
  (figures 7, 9, 11, 12, 15).

Traces are cached per (benchmark, length, seeds, windows) so a suite sweep
over many predictors generates each trace once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.accuracy import AccuracyStats, classify
from ..analysis.f1 import F1Recorder, RankedF1Profile
from ..core.config import GOLDEN_COVE, CoreConfig
from ..core.pipeline import Pipeline
from ..core.stats import PipelineStats
from ..predictors.base import ActualOutcome, MDPredictor
from ..predictors.mascot import Mascot
from ..trace.generator import generate_trace
from ..trace.uop import MicroOp, OpClass

__all__ = [
    "TraceCache",
    "PredictionRunResult",
    "run_prediction_only",
    "run_timing",
    "DEFAULT_TRACE_LENGTH",
    "TIMING_ENGINES",
]

#: Default dynamic trace length per benchmark.  Chosen so a full-suite,
#: all-predictor sweep completes in minutes in pure Python while giving the
#: predictors thousands of dynamic instances per static load.
DEFAULT_TRACE_LENGTH = 80_000


class TraceCache:
    """Memoises generated traces keyed by all generation parameters."""

    def __init__(self) -> None:
        self._traces: Dict[Tuple, List[MicroOp]] = {}

    def get(
        self,
        benchmark: str,
        num_uops: int,
        program_seed: int = 0,
        trace_seed: int = 1,
        store_window: int = 114,
        instr_window: int = 512,
    ) -> List[MicroOp]:
        key = (benchmark, num_uops, program_seed, trace_seed,
               store_window, instr_window)
        trace = self._traces.get(key)
        if trace is None:
            trace = generate_trace(
                benchmark, num_uops,
                program_seed=program_seed, trace_seed=trace_seed,
                store_window=store_window, instr_window=instr_window,
            )
            self._traces[key] = trace
        return trace

    def clear(self) -> None:
        self._traces.clear()


#: Process-wide default cache used by the figure generators.  Safe across
#: pool workers: entries are pure functions of their generation-parameter
#: keys, so per-worker copies can only agree.
# repro-lint: allow(conc-mutable-global) -- content-keyed trace memo, entries are pure functions of the key
_GLOBAL_CACHE = TraceCache()


def default_cache() -> TraceCache:
    return _GLOBAL_CACHE


@dataclass
class PredictionRunResult:
    """Everything a prediction-only replay produces."""

    accuracy: AccuracyStats
    #: Predictions per source table for TAGE-like predictors (Fig. 13);
    #: empty for predictors without tables.
    predictions_per_table: List[int] = field(default_factory=list)
    #: Ranked F1 profile when an :class:`F1Recorder` was attached (Fig. 14).
    f1_profile: Optional[RankedF1Profile] = None
    #: Per-table telemetry counters (``TableTelemetry.to_dict``) when the
    #: run was made with ``telemetry=True``; None otherwise.
    telemetry: Optional[dict] = None

    # -- serialisation (on-disk result cache) ----------------------------------

    def to_dict(self) -> dict:
        """JSON-serialisable form; inverse of :meth:`from_dict`."""
        return {
            "accuracy": self.accuracy.to_dict(),
            "predictions_per_table": list(self.predictions_per_table),
            "f1_profile": (self.f1_profile.to_dict()
                           if self.f1_profile is not None else None),
            "telemetry": self.telemetry,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PredictionRunResult":
        profile = data.get("f1_profile")
        telemetry = data.get("telemetry")
        return cls(
            accuracy=AccuracyStats.from_dict(data["accuracy"]),
            predictions_per_table=[int(c)
                                   for c in data["predictions_per_table"]],
            f1_profile=(RankedF1Profile.from_dict(profile)
                        if profile is not None else None),
            telemetry=dict(telemetry) if telemetry is not None else None,
        )


def run_prediction_only(
    trace: Sequence[MicroOp],
    predictor: MDPredictor,
    f1_period: Optional[int] = None,
    warmup: int = 0,
    telemetry: bool = False,
) -> PredictionRunResult:
    """Replay ``trace`` through ``predictor`` and classify every load.

    ``warmup`` micro-ops at the head of the trace train the predictor but
    are excluded from the accuracy statistics — the paper measures warmed
    SimPoint regions, and cold-start allocations would otherwise dominate
    short synthetic traces.

    ``telemetry`` attaches a :class:`~repro.obs.telemetry.TableTelemetry`
    sink to the predictor for the duration of the run; the counters are
    returned in :attr:`PredictionRunResult.telemetry`.
    """
    recorder: Optional[F1Recorder] = None
    if f1_period is not None:
        if not isinstance(predictor, Mascot):
            raise TypeError("F1 recording requires a MASCOT-family predictor")
        recorder = F1Recorder(predictor, period_loads=f1_period)
    sink = None
    if telemetry:
        from ..obs.telemetry import TableTelemetry

        sink = predictor.attach_telemetry(TableTelemetry())

    stats = AccuracyStats()
    branch_count = 0
    store_branch: Dict[int, int] = {}
    store_pc: Dict[int, int] = {}

    for uop in trace:
        op = uop.op
        if op is OpClass.BRANCH_COND:
            predictor.on_branch(uop.pc, uop.taken)
            branch_count += 1
        elif op is OpClass.BRANCH_INDIRECT:
            predictor.on_indirect(uop.pc, uop.target)
            branch_count += 1
        elif uop.is_store:
            predictor.on_store(uop)
            store_branch[uop.seq] = branch_count
            store_pc[uop.seq] = uop.pc
            if len(store_branch) > 4096:
                _prune(store_branch, uop.seq)
                _prune(store_pc, uop.seq)
        elif uop.is_load:
            prediction = predictor.predict(uop)
            branches_between = 0
            pc_of_store = None
            if uop.has_dependence:
                branches_between = branch_count - store_branch.get(
                    uop.dep_store_seq, branch_count
                )
                pc_of_store = store_pc.get(uop.dep_store_seq)
            actual = ActualOutcome.from_uop(
                uop, branches_between=branches_between, store_pc=pc_of_store
            )
            if uop.seq >= warmup:
                stats.record(classify(prediction, actual,
                                      predictor.bypassable_classes))
            predictor.train(uop, prediction, actual)
            if recorder is not None:
                recorder.tick()

    # The measured-instruction denominator is exactly the post-warmup
    # region.  A warmup covering the whole trace measures nothing:
    # zero instructions, zero loads (not a phantom instruction that
    # would fabricate a non-zero MPKI denominator).
    stats.instructions = max(len(trace) - warmup, 0)
    per_table = list(getattr(predictor, "predictions_per_table", []))
    profile = recorder.finish() if recorder is not None else None
    return PredictionRunResult(
        accuracy=stats,
        predictions_per_table=per_table,
        f1_profile=profile,
        telemetry=sink.to_dict() if sink is not None else None,
    )


def _prune(mapping: Dict[int, int], current_seq: int,
           horizon: int = 2048) -> None:
    """Drop entries too old to matter for in-flight dependence queries.

    Bounded-memory invariant: pruning fires once the map exceeds 4096
    entries and keeps only stores within ``horizon`` (2048) sequence
    numbers, so the map can never regrow past one store per retained
    sequence number — its size is bounded by ``horizon`` right after a
    prune and by 4097 at any instant.

    This is lossless for classification: the trace generator only
    annotates dependencies within ``instr_window`` (default 512 ≪ 2048)
    micro-ops of the load, and :func:`classify` reads the ground truth
    from the load's own annotations, never from these maps.  What a
    pruned store *does* lose is its auxiliary context — the
    ``branches_between`` and ``store_pc`` hints handed to
    ``ActualOutcome`` — which only degrades training heuristics (e.g.
    Store Sets' SSIT updates) for dependencies older than the horizon;
    with default trace windows that case cannot occur.
    """
    dead = [seq for seq in mapping if current_seq - seq > horizon]
    for seq in dead:
        del mapping[seq]


#: Timing-engine registry: ``scalar`` is the reference event-at-a-time
#: pipeline; ``batched`` the two-phase columnar engine proven bit-identical
#: by the golden equivalence tier (tests/equivalence/).
TIMING_ENGINES = ("scalar", "batched")


def run_timing(
    trace: Sequence[MicroOp],
    predictor: MDPredictor,
    config: CoreConfig = GOLDEN_COVE,
    engine: str = "scalar",
) -> PipelineStats:
    """Run the out-of-order timing model; returns its statistics.

    ``engine`` selects the implementation: ``"scalar"`` (the reference
    :class:`~repro.core.pipeline.Pipeline`) or ``"batched"`` (the
    bit-identical :class:`~repro.core.batched.BatchedPipeline`).
    """
    if engine not in TIMING_ENGINES:
        raise ValueError(
            f"unknown timing engine {engine!r}; known: "
            + ", ".join(TIMING_ENGINES)
        )
    if engine == "batched":
        from ..core.batched import BatchedPipeline
        return BatchedPipeline(predictor, config=config).run(trace)
    return Pipeline(predictor, config=config).run(trace)
