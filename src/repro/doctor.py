"""Environment health checks behind ``repro doctor``.

A sweep that fails hours in because the cache directory is read-only, or
worker processes cannot spawn, wastes far more than the seconds these
checks take up front.  ``repro doctor`` probes every piece of machinery a
fault-tolerant suite run relies on and prints one ``ok``/``FAIL`` line per
check with an actionable message; the exit status is non-zero when any
check fails.

Checks:

* result-cache directory is creatable and writable,
* cache-dir lock files can be taken exclusively (``O_EXCL`` honoured —
  shared-filesystem caches sometimes fake it),
* run-journal directory is creatable and writable,
* a worker process can be spawned and returns a result (the parallel
  engine's substrate),
* every ``--workers host:port`` endpoint answers the protocol handshake
  with a matching version (distributed-backend preflight; unreachable or
  version-skewed workers fail the check),
* the ``--cache-url`` cache server answers the handshake and reports its
  counters (shared-cache preflight; sweeps pointed at an unreachable
  server silently degrade to read-only local fallback, so catch it
  here),
* no orphaned ``.tmp*`` files have accumulated in the cache directory
  (a crashed writer leaves at most a few; doctor sweeps ones older than
  an hour and reports what it removed),
* the lint baseline, when present, parses,
* the trace generator produces a benchmark trace (simulator smoke test).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

__all__ = ["run_doctor", "worker_probe"]

#: Generous ceiling for the worker-spawn probe; a healthy pool answers in
#: well under a second, and a hang here is exactly what doctor must catch.
_SPAWN_TIMEOUT = 30.0


def worker_probe(value: int) -> int:
    """Module-level doubling function: picklable under every start method."""
    return 2 * value


def _check_cache_dir(cache_dir: Optional[str]) -> Tuple[bool, str]:
    from .experiments.result_cache import ResultCache

    cache = ResultCache(cache_dir)
    error = cache.probe_writable()
    if error is not None:
        return False, (f"cache dir {cache.directory} not writable: {error} "
                       "— set $REPRO_CACHE_DIR or pass --cache-dir")
    return True, f"cache dir writable: {cache.directory}"


def _check_cache_lock(cache_dir: Optional[str]) -> Tuple[bool, str]:
    from .experiments.result_cache import ResultCache

    cache = ResultCache(cache_dir)
    error = cache.probe_lock()
    if error is not None:
        return False, (f"cache dir {cache.directory} lock probe failed: "
                       f"{error} — concurrent writers on this filesystem "
                       "cannot be serialised")
    return True, f"cache lock discipline ok: {cache.directory}"


def _check_worker_endpoints(workers: str) -> Tuple[bool, str]:
    from .experiments.backends import (
        PROTOCOL_VERSION,
        FrameError,
        ProtocolVersionError,
        parse_endpoints,
        probe_endpoint,
    )

    try:
        endpoints = parse_endpoints(workers)
    except ValueError as error:
        return False, f"bad --workers value: {error}"
    problems = []
    reachable = 0
    for host, port in endpoints:
        try:
            probe_endpoint(host, port)
        except ProtocolVersionError as error:
            problems.append(f"{host}:{port} version skew: {error} — "
                            "redeploy the older side")
        except FrameError as error:
            problems.append(f"{host}:{port} is not a repro worker "
                            f"({error})")
        except OSError as error:
            problems.append(f"{host}:{port} unreachable ({error})")
        else:
            reachable += 1
    if problems:
        return False, "; ".join(problems)
    return True, (f"{reachable}/{len(endpoints)} worker endpoint(s) "
                  f"reachable, protocol v{PROTOCOL_VERSION}")


def _check_cache_server(cache_url: str) -> Tuple[bool, str]:
    from .experiments.backends import FrameError, ProtocolVersionError
    from .experiments.cache_service import (
        parse_cache_url,
        probe_cache_server,
    )

    try:
        host, port = parse_cache_url(cache_url)
    except ValueError as error:
        return False, f"bad --cache-url value: {error}"
    try:
        stats = probe_cache_server(host, port)
    except ProtocolVersionError as error:
        return False, (f"{host}:{port} version skew: {error} — redeploy "
                       "the older side")
    except FrameError as error:
        return False, f"{host}:{port} is not a repro cache server ({error})"
    except OSError as error:
        return False, (f"{host}:{port} unreachable ({error}) — sweeps "
                       "would fall back to a read-only local cache")
    counters = stats.get("counters", {})
    rendered = ", ".join(f"{key}={counters.get(key, 0)}"
                         for key in ("sessions", "loads", "server_stores",
                                     "rejected_stores", "probes"))
    return True, (f"cache server {host}:{port} ok "
                  f"(dir {stats.get('directory', '?')}; {rendered})")


def _check_orphan_tmp(cache_dir: Optional[str]) -> Tuple[bool, str]:
    from .experiments.result_cache import ResultCache

    cache = ResultCache(cache_dir)
    orphans = cache.orphan_tmp_files()
    if not orphans:
        return True, f"no orphaned .tmp files: {cache.directory}"
    swept = cache.sweep_orphan_tmp(min_age=3600.0)
    remaining = len(orphans) - swept
    note = (f"swept {swept} orphaned .tmp file(s) older than 1h, "
            f"{remaining} recent one(s) left in {cache.directory}")
    # Recent temp files may belong to a live writer mid-store; only a
    # backlog that survives the sweep indicates leaking writers.
    return remaining == 0, note


def _check_journal_dir(journal_dir: Optional[str]) -> Tuple[bool, str]:
    from .experiments.journal import RunJournal

    journal = RunJournal(journal_dir)
    error = journal.probe_writable()
    if error is not None:
        return False, (f"journal dir {journal.directory} not writable: "
                       f"{error} — set $REPRO_JOURNAL_DIR or pass "
                       "--journal-dir")
    return True, f"journal dir writable: {journal.directory}"


def _check_worker_spawn() -> Tuple[bool, str]:
    from concurrent.futures import ProcessPoolExecutor

    try:
        with ProcessPoolExecutor(max_workers=1) as pool:
            result = pool.submit(worker_probe, 21).result(
                timeout=_SPAWN_TIMEOUT)
    except Exception as error:  # noqa: BLE001 — any spawn failure mode
        return False, (f"worker spawn failed: {type(error).__name__}: "
                       f"{error} — parallel execution (--jobs) will not "
                       "work on this host")
    if result != 42:
        return False, f"worker returned {result!r}, expected 42"
    return True, "worker spawn ok"


def _check_lint_baseline() -> Tuple[bool, str]:
    from pathlib import Path

    from .lint.baseline import load_baseline
    from .lint.cli import DEFAULT_BASELINE

    path = Path(DEFAULT_BASELINE)
    if not path.exists():
        return True, f"lint baseline absent ({path}): nothing to check"
    try:
        baseline = load_baseline(path)
    except Exception as error:  # noqa: BLE001 — report any parse failure
        return False, (f"lint baseline {path} unreadable: {error} — "
                       "regenerate with 'repro lint --update-baseline'")
    return True, f"lint baseline ok: {sum(baseline.values())} entries"


def _check_simulator() -> Tuple[bool, str]:
    from .trace import generate_trace

    try:
        trace = generate_trace("exchange2", 64)
    except Exception as error:  # noqa: BLE001 — smoke test, report anything
        return False, f"trace generation failed: {type(error).__name__}: " \
                      f"{error}"
    return True, f"simulator smoke ok: generated {len(trace)} micro-ops"


def run_doctor(cache_dir: Optional[str] = None,
               journal_dir: Optional[str] = None,
               workers: Optional[str] = None,
               cache_url: Optional[str] = None) -> int:
    """Run every check, print one line each; 0 iff all passed.

    ``workers`` is a ``host:port,...`` list of ``repro worker`` endpoints
    to preflight (the ``--workers`` value a sweep would use); omitted, the
    distributed checks are skipped.  ``cache_url`` likewise preflights a
    ``repro cache-serve`` endpoint (the ``--cache-url`` value).
    """
    checks: List[Tuple[str, Callable[[], Tuple[bool, str]]]] = [
        ("cache", lambda: _check_cache_dir(cache_dir)),
        ("cache-lock", lambda: _check_cache_lock(cache_dir)),
        ("cache-tmp", lambda: _check_orphan_tmp(cache_dir)),
        ("journal", lambda: _check_journal_dir(journal_dir)),
        ("workers", _check_worker_spawn),
        ("lint", _check_lint_baseline),
        ("simulator", _check_simulator),
    ]
    if workers is not None:
        checks.insert(5, ("endpoints",
                          lambda: _check_worker_endpoints(workers)))
    if cache_url is not None:
        checks.insert(3, ("cache-server",
                          lambda: _check_cache_server(cache_url)))
    failures = 0
    for name, check in checks:
        passed, message = check()
        status = "ok  " if passed else "FAIL"
        print(f"{status} [{name}] {message}")
        if not passed:
            failures += 1
    if failures:
        print(f"{failures} check(s) failed")
        return 1
    print("all checks passed")
    return 0
