"""Region selection: PCA projection + BIC-selected k-means + medoids.

Follows the LoopPoint/SimPoint recipe: project the high-dimensional
region signatures down with PCA, cluster the projections with k-means for
every candidate k, score each clustering with the Bayesian information
criterion under a spherical-Gaussian model (the X-means formulation), and
keep the best.  Each surviving cluster contributes its medoid region,
weighted by the cluster's share of the trace.

Selection is bit-deterministic for a given (trace, policy): seeded
k-means++, deterministic empty-cluster repair
(:func:`repro.trace.simpoints.kmeans_labels`), deterministic SVD, and a
content digest over the integer-valued outcome so two processes can
*prove* they selected the same regions.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..common.hashing import stable_digest
from ..trace.simpoints import kmeans_labels
from ..trace.uop import MicroOp
from .features import num_intervals, region_signatures
from .policy import SamplingPolicy

__all__ = ["Region", "RegionSelection", "pca_project", "select_regions"]


@dataclass(frozen=True)
class Region:
    """One representative region and the trace share it stands for."""

    #: Region (interval) index within the trace.
    index: int
    #: First uop of the region (inclusive).
    start: int
    #: One past the last uop of the region.
    end: int
    #: Cluster share of the trace; weights over a selection sum to 1.
    weight: float
    #: Number of regions in the cluster this one represents.
    cluster_size: int
    #: Mean distance of the cluster's members to its centroid in the
    #: projected signature space — the dispersion that seeds this
    #: region's error-bound contribution.
    dispersion: float


@dataclass(frozen=True)
class RegionSelection:
    """Outcome of one region-selection run."""

    policy: SamplingPolicy
    n_intervals: int
    interval_length: int
    k: int
    regions: Tuple[Region, ...]
    #: BIC score per candidate k (higher is better).
    bic_by_k: Dict[int, float]
    #: Cluster centroids in projected space, row j for ``regions[j]``.
    centroids: Tuple[Tuple[float, ...], ...]
    #: Content digest of the selection (see :func:`selection_digest`).
    digest: str

    @property
    def coverage(self) -> float:
        """Fraction of the trace actually simulated (without warmup)."""
        total = self.n_intervals * self.interval_length
        simulated = sum(r.end - r.start for r in self.regions)
        return simulated / total if total else 0.0


def pca_project(signatures: np.ndarray, dims: int) -> np.ndarray:
    """Centre and project the signatures onto their top principal axes.

    Deterministic: SVD of a fixed matrix, with the conventional
    sign-fixing (largest-magnitude loading of each component made
    positive) so equivalent decompositions cannot flip component signs
    between platforms.
    """
    centred = signatures - signatures.mean(axis=0, keepdims=True)
    dims = max(1, min(dims, min(centred.shape)))
    _, _, vt = np.linalg.svd(centred, full_matrices=False)
    components = vt[:dims]
    signs = np.sign(components[np.arange(dims),
                               np.abs(components).argmax(axis=1)])
    signs[signs == 0.0] = 1.0
    return centred @ (components * signs[:, None]).T


def _bic(vectors: np.ndarray, labels: np.ndarray, k: int) -> float:
    """Spherical-Gaussian BIC of one clustering (X-means, higher=better)."""
    n, dims = vectors.shape
    centers = np.vstack([
        vectors[labels == j].mean(axis=0) if np.any(labels == j)
        else np.zeros(dims)
        for j in range(k)
    ])
    distortion = float(((vectors - centers[labels]) ** 2).sum())
    # Pooled ML variance estimate; floor avoids log(0) on degenerate
    # (duplicate-region) data where the fit is exact.
    denominator = max(n - k, 1)
    variance = max(distortion / (denominator * dims), 1e-12)
    sizes = np.bincount(labels, minlength=k)
    log_likelihood = 0.0
    for j in range(k):
        size = int(sizes[j])
        if size <= 0:
            continue
        log_likelihood += (
            size * math.log(size / n)
            - 0.5 * size * dims * math.log(2.0 * math.pi * variance)
            - 0.5 * (size - 1) * dims
        )
    free_parameters = k * (dims + 1)
    return log_likelihood - 0.5 * free_parameters * math.log(n)


def _selection_digest(policy: SamplingPolicy, n_intervals: int,
                      regions: Sequence[Region]) -> str:
    """Content digest over the integer-valued selection outcome.

    Built from exact integers only (indices and cluster sizes; weights
    are ``cluster_size / n_intervals`` by construction), so equal
    selections digest equally on any host.
    """
    return stable_digest({
        "policy": policy.to_dict(),
        "n_intervals": n_intervals,
        "regions": [
            {"index": r.index, "cluster_size": r.cluster_size}
            for r in regions
        ],
    })


def select_regions(trace: Sequence[MicroOp],
                   policy: SamplingPolicy) -> RegionSelection:
    """Choose representative regions of ``trace`` under ``policy``."""
    n_regions = num_intervals(len(trace), policy.interval_length)
    if n_regions == 0:
        raise ValueError(
            f"trace of {len(trace)} uops yields no "
            f"{policy.interval_length}-uop regions"
        )
    signatures = region_signatures(trace, policy.interval_length)
    projected = pca_project(signatures, policy.projection_dims)

    max_k = min(policy.max_k, n_regions)
    best_k = 1
    best_labels = np.zeros(n_regions, dtype=np.int64)
    best_bic = -math.inf
    bic_by_k: Dict[int, float] = {}
    for k in range(1, max_k + 1):
        labels = (np.zeros(n_regions, dtype=np.int64) if k == 1
                  else kmeans_labels(projected, k, policy.seed))
        score = _bic(projected, labels, k)
        bic_by_k[k] = score
        if score > best_bic:
            best_k, best_labels, best_bic = k, labels, score

    regions: List[Region] = []
    centroids: List[Tuple[float, ...]] = []
    for j in range(best_k):
        member_ids = np.flatnonzero(best_labels == j)
        if len(member_ids) == 0:
            continue  # degenerate duplicate-heavy data: fewer clusters
        members = projected[member_ids]
        centroid = members.mean(axis=0)
        member_distances = np.sqrt(
            ((members - centroid) ** 2).sum(axis=1))
        medoid_pos = int(member_distances.argmin())
        index = int(member_ids[medoid_pos])
        regions.append(Region(
            index=index,
            start=index * policy.interval_length,
            end=(index + 1) * policy.interval_length,
            weight=len(member_ids) / n_regions,
            cluster_size=len(member_ids),
            dispersion=float(member_distances.mean()),
        ))
        centroids.append(tuple(float(c) for c in centroid))

    order = sorted(range(len(regions)), key=lambda i: regions[i].index)
    regions = [regions[i] for i in order]
    centroids = [centroids[i] for i in order]
    return RegionSelection(
        policy=policy,
        n_intervals=n_regions,
        interval_length=policy.interval_length,
        k=len(regions),
        regions=tuple(regions),
        bic_by_k=bic_by_k,
        centroids=tuple(centroids),
        digest=_selection_digest(policy, n_regions, regions),
    )
