"""Vectorised region fingerprints: basic-block + memory-access vectors.

The classic SimPoint feature is the basic-block vector — per-PC execution
frequencies of each fixed-length region.  Alone it is blind to memory
behaviour: two regions executing the same code over different working
sets (streaming vs. resident, dependent vs. independent stores) are
indistinguishable, and exactly those differences dominate IPC in a
memory-dependence study.  Each region therefore also gets a
**memory-access vector**: a stride histogram over consecutive memory
accesses, a cache-line footprint density, and dependence-distance /
bypass-class histograms over its dependent loads.

Everything here is computed from :class:`~repro.trace.columns.TraceColumns`
with ``bincount`` / segment reductions — one pass of numpy per feature
block, no per-uop Python loop.  The central trick: a per-(region, bucket)
count is one flat ``bincount`` over ``region_index * n_buckets + bucket``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..trace.columns import BYPASS_CODES, OP_CODES, TraceColumns
from ..trace.uop import MicroOp, OpClass

__all__ = [
    "MAV_STRIDE_BUCKETS",
    "MAV_DEP_BUCKETS",
    "mav_dim",
    "num_intervals",
    "pc_frequency_vectors",
    "memory_access_vectors",
    "region_signatures",
]

#: Log2 buckets of the absolute address delta between consecutive memory
#: accesses: bucket 0 = same address, bucket b = delta in [2^(b-1), 2^b).
#: The last bucket absorbs everything beyond.
MAV_STRIDE_BUCKETS = 16

#: Log2 buckets of a dependent load's store distance (>= 1 by
#: construction): bucket b = distance in [2^b, 2^(b+1)); last absorbs.
MAV_DEP_BUCKETS = 10

#: Bytes-per-cache-line shift for the footprint feature.
_LINE_SHIFT = 6

#: Exact integer floor(log2): ``searchsorted`` against powers of two
#: avoids float ``log2`` rounding at bucket boundaries.
_POW2 = (np.uint64(1) << np.arange(63, dtype=np.uint64))


def _floor_log2(values: np.ndarray) -> np.ndarray:
    """Elementwise floor(log2(v)) for positive int64 values, exactly."""
    return np.searchsorted(_POW2, values.astype(np.uint64),
                           side="right") - 1


def mav_dim() -> int:
    """Width of one memory-access vector."""
    # stride histogram + footprint density + dependence rate
    # + dependence-distance histogram + bypass-class mix.
    return MAV_STRIDE_BUCKETS + 1 + 1 + MAV_DEP_BUCKETS + len(BYPASS_CODES)


def num_intervals(n: int, interval_length: int) -> int:
    """Full regions in an ``n``-uop trace (the tail is dropped)."""
    if interval_length <= 0:
        raise ValueError("interval length must be positive")
    return n // interval_length


def _bucket_rows(region: np.ndarray, bucket: np.ndarray, n_regions: int,
                 n_buckets: int) -> np.ndarray:
    """(n_regions, n_buckets) counts via one flat bincount."""
    flat = region.astype(np.int64) * n_buckets + bucket.astype(np.int64)
    counts = np.bincount(flat, minlength=n_regions * n_buckets)
    return counts.reshape(n_regions, n_buckets).astype(np.float64)


def _normalise_rows(matrix: np.ndarray) -> np.ndarray:
    """L1-normalise each row in place; all-zero rows stay zero."""
    sums = matrix.sum(axis=1, keepdims=True)
    sums[sums == 0.0] = 1.0
    matrix /= sums
    return matrix


def pc_frequency_vectors(cols: TraceColumns,
                         interval_length: int) -> np.ndarray:
    """L1-normalised per-PC frequency vectors, one row per region.

    The PC axis is ordered by ascending PC (``np.unique``) — a fixed
    permutation of :func:`repro.trace.simpoints.basic_block_vectors`'s
    first-appearance order, which no distance computation can tell apart.
    """
    n_regions = num_intervals(cols.n, interval_length)
    if n_regions == 0:
        raise ValueError("no intervals to fingerprint")
    used = n_regions * interval_length
    _, pc_ids = np.unique(cols.pc[:used], return_inverse=True)
    region = np.arange(used, dtype=np.int64) // interval_length
    vectors = _bucket_rows(region, pc_ids, n_regions,
                           int(pc_ids.max()) + 1)
    return _normalise_rows(vectors)


def memory_access_vectors(cols: TraceColumns,
                          interval_length: int) -> np.ndarray:
    """One memory-access vector per region; every feature lies in [0, 1].

    Layout per row (see :func:`mav_dim`):

    * ``[0, S)`` — stride histogram: log2-bucketed absolute address
      deltas between consecutive memory accesses within the region,
      normalised to sum to 1 over the region's access pairs;
    * ``[S]`` — footprint density: distinct cache lines touched divided
      by the region length;
    * ``[S+1]`` — dependence rate: dependent loads / loads;
    * ``[S+2, S+2+D)`` — dependence-distance histogram over dependent
      loads' store distances, normalised;
    * ``[S+2+D, ...)`` — bypass-class mix over dependent loads,
      normalised.
    """
    n_regions = num_intervals(cols.n, interval_length)
    if n_regions == 0:
        raise ValueError("no intervals to fingerprint")
    used = n_regions * interval_length
    op = cols.op[:used]
    address = cols.address[:used]

    load_code = np.int8(OP_CODES[OpClass.LOAD])
    store_code = np.int8(OP_CODES[OpClass.STORE])
    mem = np.flatnonzero((op == load_code) | (op == store_code))
    mem_region = mem // interval_length

    # -- stride histogram ------------------------------------------------------
    stride_hist = np.zeros((n_regions, MAV_STRIDE_BUCKETS))
    if len(mem) > 1:
        same = mem_region[1:] == mem_region[:-1]
        delta = np.abs(address[mem[1:]] - address[mem[:-1]])[same]
        pair_region = mem_region[1:][same]
        bucket = np.zeros(len(delta), dtype=np.int64)
        nonzero = delta > 0
        bucket[nonzero] = np.minimum(_floor_log2(delta[nonzero]) + 1,
                                     MAV_STRIDE_BUCKETS - 1)
        stride_hist = _normalise_rows(_bucket_rows(
            pair_region, bucket, n_regions, MAV_STRIDE_BUCKETS))

    # -- footprint density -----------------------------------------------------
    footprint = np.zeros(n_regions)
    if len(mem):
        lines = address[mem] >> _LINE_SHIFT
        order = np.lexsort((lines, mem_region))
        sorted_region = mem_region[order]
        sorted_lines = lines[order]
        first = np.ones(len(mem), dtype=bool)
        first[1:] = ((sorted_region[1:] != sorted_region[:-1])
                     | (sorted_lines[1:] != sorted_lines[:-1]))
        footprint = np.bincount(sorted_region[first],
                                minlength=n_regions).astype(np.float64)
        footprint /= float(interval_length)

    # -- dependence features ---------------------------------------------------
    loads = np.flatnonzero(op == load_code)
    load_region = loads // interval_length
    loads_per_region = np.bincount(load_region, minlength=n_regions)
    dep_mask = cols.dep_store_seq[:used][loads] >= 0
    dep_loads = loads[dep_mask]
    dep_region = load_region[dep_mask]
    deps_per_region = np.bincount(dep_region, minlength=n_regions)
    dep_rate = deps_per_region / np.maximum(loads_per_region, 1)

    dep_hist = np.zeros((n_regions, MAV_DEP_BUCKETS))
    bypass_mix = np.zeros((n_regions, len(BYPASS_CODES)))
    if len(dep_loads):
        distance = cols.store_distance[:used][dep_loads].astype(np.int64)
        bucket = np.minimum(_floor_log2(np.maximum(distance, 1)),
                            MAV_DEP_BUCKETS - 1)
        dep_hist = _normalise_rows(_bucket_rows(
            dep_region, bucket, n_regions, MAV_DEP_BUCKETS))
        bypass_mix = _normalise_rows(_bucket_rows(
            dep_region, cols.bypass[:used][dep_loads].astype(np.int64),
            n_regions, len(BYPASS_CODES)))

    return np.hstack([
        stride_hist,
        footprint[:, None],
        dep_rate[:, None],
        dep_hist,
        bypass_mix,
    ])


def region_signatures(trace: Sequence[MicroOp],
                      interval_length: int) -> np.ndarray:
    """Concatenated BBV + MAV signature matrix, one row per region.

    Both blocks are row-normalised to comparable [0, 1] scales, so the
    euclidean metric the clustering uses weighs code identity and memory
    behaviour on equal footing.
    """
    cols = TraceColumns.ensure(trace)
    bbv = pc_frequency_vectors(cols, interval_length)
    mav = memory_access_vectors(cols, interval_length)
    return np.hstack([bbv, mav])
