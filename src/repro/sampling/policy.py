"""The value-typed sampling configuration carried through the stack.

:class:`SamplingPolicy` is frozen and built only from plain value types so
it can sit on a :class:`~repro.experiments.parallel.CellSpec` (which must
stay hashable and picklable across process boundaries) and be serialised
into result-cache keys — any single-knob change yields a different cell
key, exactly like every other simulation parameter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["SamplingPolicy"]


@dataclass(frozen=True)
class SamplingPolicy:
    """Knobs of one sampled run; the defaults suit suite-sized traces."""

    #: Micro-ops per region (the SimPoint "interval").  A short tail that
    #: does not fill a region is dropped, as SimPoint does.
    interval_length: int
    #: Upper bound on the number of clusters; the actual k is selected by
    #: BIC over 1..max_k (capped by the number of regions).
    max_k: int = 6
    #: Per-region warmup, in intervals: the intervals immediately
    #: *preceding* a representative region are replayed (but not
    #: measured) before it, training the branch predictor on exactly the
    #: code the full run would have just executed; regions near the
    #: start of the trace get a shorter — faithfully cold — warmup.
    #: Caches are warmed separately (``functional_warmup``), so this
    #: only needs to span the predictor transient, not the cache one.
    warmup_intervals: int = 4
    #: PCA target dimensionality for the concatenated BBV+MAV signatures
    #: (capped by the data's own rank).
    projection_dims: int = 8
    #: Seed for k-means++ seeding; selection is bit-deterministic for a
    #: given (trace, policy).
    seed: int = 0
    #: Reconstruct each region's cache state from the preceding memory
    #: accesses (Memory Timestamp Record style, see
    #: :mod:`repro.memory.warmup`) before simulating it.  The warmup
    #: replay alone cannot warm the L3 (~200k lines), so disabling this
    #: biases timing reconstructions downward on cache-resident
    #: workloads; it exists for ablations and prediction-only runs.
    functional_warmup: bool = True
    #: Two-sided confidence level of the reported IPC interval.
    confidence: float = 0.95
    #: Lower bound on the reported CI half-width, relative to the
    #: reconstructed value — the dispersion model can report arbitrarily
    #: tight intervals on near-homogeneous traces, and no sampled
    #: estimate is more trustworthy than this floor.
    min_ci_relative: float = 0.015

    def __post_init__(self) -> None:
        if self.interval_length <= 0:
            raise ValueError("interval_length must be positive")
        if self.max_k < 1:
            raise ValueError("max_k must be >= 1")
        if self.warmup_intervals < 0:
            raise ValueError("warmup_intervals must be non-negative")
        if self.projection_dims < 1:
            raise ValueError("projection_dims must be >= 1")
        if not 0.0 < self.confidence < 1.0:
            raise ValueError("confidence must be in (0, 1)")
        if self.min_ci_relative < 0.0:
            raise ValueError("min_ci_relative must be non-negative")

    # -- serialisation (cache keys, sampled-result metadata) -------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-serialisable form; inverse of :meth:`from_dict`."""
        return {
            "interval_length": self.interval_length,
            "max_k": self.max_k,
            "warmup_intervals": self.warmup_intervals,
            "projection_dims": self.projection_dims,
            "seed": self.seed,
            "functional_warmup": self.functional_warmup,
            "confidence": self.confidence,
            "min_ci_relative": self.min_ci_relative,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SamplingPolicy":
        return cls(
            interval_length=int(data["interval_length"]),
            max_k=int(data["max_k"]),
            warmup_intervals=int(data["warmup_intervals"]),
            projection_dims=int(data["projection_dims"]),
            seed=int(data["seed"]),
            functional_warmup=bool(data.get("functional_warmup", True)),
            confidence=float(data["confidence"]),
            min_ci_relative=float(data["min_ci_relative"]),
        )
