"""Simulate only representative regions and rebuild full-run metrics.

Each selected region is extracted together with the ``warmup_intervals``
intervals immediately **preceding** it as one contiguous slice
(:func:`repro.trace.simpoints.rebase_interval`), replayed with a *fresh*
predictor (sampled regions are independent — predictor state must not
leak across them), and measured from the region's first micro-op.  The
adjacent replay trains the branch predictor on exactly the code that
precedes the region in the full run; what it *cannot* warm affordably is
the cache hierarchy (the L3 alone holds ~200k lines), which is why the
slice starts from a **functionally warmed** hierarchy instead of a cold
one: :class:`repro.memory.WarmupIndex` reconstructs each level's LRU
state from the entire access stream before the slice in vectorised time
(see :mod:`repro.memory.warmup` — disabling
:attr:`~repro.sampling.policy.SamplingPolicy.functional_warmup` biases
IPC downward on cache-resident workloads).  The earliest regions get a
shorter (possibly empty) warmup, faithfully: the full run reaches them
in exactly that state.  Full-run metrics then follow the SimPoint
identity: regions have equal length, so a cluster's weight is
simultaneously its share of intervals, of instructions, and of each
per-instruction event rate:

    rate_full  = sum_j w_j * rate_j
    cycles_full = round(N * sum_j w_j * cpi_j)

Every reconstructed counter is therefore a scaled estimate; the
``sampling`` metadata attached to the result says so explicitly and
carries the error bound.

**Error bound.**  The reconstruction error of cluster j is driven by how
much CPI varies *within* the cluster, which is unobservable from the
medoid alone.  We bound it with a Lipschitz argument: the measured
medoids give an empirical sensitivity of CPI to signature distance
(max pairwise ``|cpi_a - cpi_b| / ||centroid_a - centroid_b||``), and
cluster j's members sit ``dispersion_j`` away from their centroid on
average, so ``sigma_j = sensitivity * dispersion_j`` estimates the CPI
spread the medoid glosses over.  Weighted independent-cluster variance
``var = sum_j w_j^2 sigma_j^2`` yields a z-scaled confidence interval,
floored at :attr:`~repro.sampling.policy.SamplingPolicy.min_ci_relative`
of the estimate — a single-cluster selection has no pairwise evidence
and must not report a zero-width interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import NormalDist
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..analysis.accuracy import AccuracyStats
from ..core.config import GOLDEN_COVE, CoreConfig
from ..core.stats import PipelineStats
from ..predictors.base import MDPredictor
from ..trace.simpoints import Interval, rebase_interval
from ..trace.uop import MicroOp
from .policy import SamplingPolicy
from .select import Region, RegionSelection, select_regions

__all__ = [
    "SampledTiming",
    "run_sampled_timing",
    "run_sampled_prediction",
    "warmed_interval",
]


@dataclass
class SampledTiming:
    """A sampled timing run: the reconstruction plus its raw parts."""

    #: Full-run estimate; ``stats.sampling`` carries the metadata below.
    stats: PipelineStats
    selection: RegionSelection
    #: Per-region measured statistics, aligned with ``selection.regions``.
    region_stats: List[PipelineStats]
    #: Two-sided confidence interval on the reconstructed IPC.
    ipc_ci: Tuple[float, float]
    #: Micro-ops actually simulated, warmup included.
    simulated_uops: int
    #: Per-region measured cycle stacks (``accounting=True`` only).
    region_stacks: Optional[List] = None
    #: Reconstructed full-run cycle stack (``accounting=True`` only);
    #: sums exactly to ``stats.cycles`` like a measured stack would.
    stack: Optional[object] = None


def _z_score(confidence: float) -> float:
    return NormalDist().inv_cdf(0.5 + confidence / 2.0)


def _pairwise_sensitivity(values: Sequence[float],
                          selection: RegionSelection) -> float:
    """Empirical Lipschitz constant of ``values`` over centroid distance."""
    sensitivity = 0.0
    centroids = selection.centroids
    for a in range(len(values)):
        for b in range(a + 1, len(values)):
            distance = sum(
                (x - y) ** 2 for x, y in zip(centroids[a], centroids[b])
            ) ** 0.5
            if distance <= 0.0:
                continue
            sensitivity = max(sensitivity,
                              abs(values[a] - values[b]) / distance)
    return sensitivity


def _ci_half_width(values: Sequence[float], selection: RegionSelection,
                   estimate: float) -> float:
    """z-scaled half-width around ``estimate`` (see module docstring)."""
    policy = selection.policy
    sensitivity = _pairwise_sensitivity(values, selection)
    variance = sum(
        (region.weight * sensitivity * region.dispersion) ** 2
        for region in selection.regions
    )
    half = _z_score(policy.confidence) * variance ** 0.5
    return max(half, policy.min_ci_relative * abs(estimate))


def warmed_interval(trace: Sequence[MicroOp], region: Region,
                    policy: SamplingPolicy) -> Tuple[List[MicroOp], int]:
    """One contiguous slice: the region plus its preceding warmup.

    Returns ``(piece, warmup)`` where ``piece[warmup:]`` is the region
    itself and ``piece[:warmup]`` the (up to) ``warmup_intervals``
    intervals before it — clipped at the start of the trace, so the
    earliest regions replay exactly the cold-start the full run gives
    them.
    """
    warm_start = max(0, region.start
                     - policy.warmup_intervals * policy.interval_length)
    piece = rebase_interval(trace, Interval(
        index=region.index, start=warm_start, end=region.end))
    return piece, region.start - warm_start


def _warm_hierarchy_at(config: CoreConfig, index, start: int):
    """A hierarchy functionally warmed with the accesses before ``start``.

    Returns None (the engine builds its cold default) when functional
    warmup is disabled; see :mod:`repro.memory.warmup` for the
    reconstruction rule.
    """
    if index is None:
        return None
    from ..memory.hierarchy import MemoryHierarchy

    hierarchy = MemoryHierarchy(config.memory)
    index.warm(hierarchy, start)
    return hierarchy


def _scaled_accuracy(per_region: Sequence[AccuracyStats],
                     selection: RegionSelection,
                     instructions: int) -> AccuracyStats:
    """Full-run accuracy counts from per-region measurements."""
    scaled = AccuracyStats()
    scaled.instructions = instructions

    def scale(count_of: Callable[[AccuracyStats], int]) -> int:
        rate = sum(
            region.weight * count_of(stats) / max(stats.instructions, 1)
            for region, stats in zip(selection.regions, per_region)
        )
        return round(instructions * rate)

    scaled.loads = scale(lambda s: s.loads)
    for kind in scaled.outcome_counts:
        scaled.outcome_counts[kind] = scale(
            lambda s, _k=kind: s.outcome_counts[_k])
    for kind in scaled.prediction_counts:
        scaled.prediction_counts[kind] = scale(
            lambda s, _k=kind: s.prediction_counts[_k])
    return scaled


def _sampling_metadata(selection: RegionSelection, simulated: int,
                       metric_name: str, estimate: float,
                       half_width: float) -> Dict[str, object]:
    lo, hi = estimate - half_width, estimate + half_width
    return {
        "policy": selection.policy.to_dict(),
        "digest": selection.digest,
        "k": selection.k,
        "n_intervals": selection.n_intervals,
        "coverage": selection.coverage,
        "simulated_uops": simulated,
        "confidence": selection.policy.confidence,
        "metric": metric_name,
        "estimate": estimate,
        "ci": [lo, hi],
        "regions": [
            {"index": r.index, "weight": r.weight,
             "cluster_size": r.cluster_size}
            for r in selection.regions
        ],
    }


def run_sampled_timing(
    trace: Sequence[MicroOp],
    predictor_factory: Callable[[], MDPredictor],
    policy: SamplingPolicy,
    config: CoreConfig = GOLDEN_COVE,
    engine: str = "scalar",
    selection: Optional[RegionSelection] = None,
    accounting: bool = False,
) -> SampledTiming:
    """Timing-simulate only the selected regions; reconstruct full stats.

    ``predictor_factory`` builds one fresh predictor per region — regions
    are measured independently, and predictor state carried from one
    region into another would couple them.  Pass ``selection`` to reuse a
    selection already computed for this (trace, policy).  ``accounting``
    additionally measures each region's cycle stack and reconstructs the
    full-run stack (``repro profile --sampling``).
    """
    from ..experiments.runner import run_timing

    if selection is None:
        selection = select_regions(trace, policy)
    index = None
    if policy.functional_warmup:
        from ..memory.warmup import WarmupIndex
        index = WarmupIndex.from_trace(trace, config.memory.line_size)
    region_stats: List[PipelineStats] = []
    region_stacks: Optional[List] = [] if accounting else None
    simulated = 0
    for region in selection.regions:
        piece, warmup = warmed_interval(trace, region, policy)
        simulated += len(piece)
        warm_start = region.start - warmup
        hierarchy = _warm_hierarchy_at(config, index, warm_start)
        if accounting:
            if engine == "batched":
                from ..core.batched import BatchedPipeline as engine_cls
            else:
                from ..core.pipeline import Pipeline as engine_cls
            pipe = engine_cls(predictor_factory(), config=config,
                              hierarchy=hierarchy, accounting=True)
            region_stats.append(pipe.run(piece, measure_from=warmup))
            region_stacks.append(pipe.cycle_stack)
        else:
            region_stats.append(run_timing(
                piece, predictor_factory(), config=config, engine=engine,
                measure_from=warmup, hierarchy=hierarchy,
            ))

    instructions = len(trace)
    stats = PipelineStats()
    stats.instructions = instructions
    for name in PipelineStats._COUNTER_FIELDS:
        if name == "instructions":
            continue
        rate = sum(
            region.weight * getattr(rs, name) / max(rs.instructions, 1)
            for region, rs in zip(selection.regions, region_stats)
        )
        setattr(stats, name, round(instructions * rate))
    stats.accuracy = _scaled_accuracy(
        [rs.accuracy for rs in region_stats], selection, instructions)

    # The CI lives on CPI (the weighted-sum domain) and maps to IPC
    # through the first-order delta |d(1/x)| = dx / x^2.
    cpis = [rs.cycles / max(rs.instructions, 1) for rs in region_stats]
    cpi = sum(r.weight * c for r, c in zip(selection.regions, cpis))
    half_cpi = _ci_half_width(cpis, selection, cpi)
    ipc = stats.ipc
    half_ipc = half_cpi / (cpi * cpi) if cpi > 0 else 0.0
    half_ipc = max(half_ipc, selection.policy.min_ci_relative * ipc)
    stats.sampling = _sampling_metadata(
        selection, simulated, "ipc", ipc, half_ipc)
    stack = None
    if accounting:
        stack = _reconstruct_stack(region_stacks, region_stats, selection,
                                   instructions, stats.cycles)
    return SampledTiming(
        stats=stats,
        selection=selection,
        region_stats=region_stats,
        ipc_ci=(ipc - half_ipc, ipc + half_ipc),
        simulated_uops=simulated,
        region_stacks=region_stacks,
        stack=stack,
    )


def _reconstruct_stack(region_stacks, region_stats, selection,
                       instructions: int, cycles: int):
    """Weight per-region cycle stacks into a full-run stack.

    Each category scales like any other counter (``N * sum_j w_j *
    rate_j``); independent rounding can then miss the reconstructed
    cycle count by a few units, so the residue lands in ``commit`` —
    the same category that absorbs measured runs' tails — keeping the
    accounting invariant (stack sums to cycles) exact.
    """
    from ..obs.cycles import CYCLE_CATEGORIES, CycleStack

    stack = CycleStack()
    for category in CYCLE_CATEGORIES:
        rate = sum(
            region.weight * rstack.cycles[category] / max(rs.instructions, 1)
            for region, rstack, rs in zip(selection.regions, region_stacks,
                                          region_stats)
        )
        stack.cycles[category] = round(instructions * rate)
    residue = cycles - sum(stack.cycles.values())
    stack.cycles["commit"] += residue
    if stack.cycles["commit"] < 0:
        largest = max(stack.cycles, key=stack.cycles.get)
        stack.cycles[largest] += stack.cycles["commit"]
        stack.cycles["commit"] = 0
    return stack


def run_sampled_prediction(
    trace: Sequence[MicroOp],
    predictor_factory: Callable[[], MDPredictor],
    policy: SamplingPolicy,
    selection: Optional[RegionSelection] = None,
):
    """Prediction-only replay of the selected regions, reconstructed.

    Returns a :class:`~repro.experiments.runner.PredictionRunResult` whose
    accuracy counts are scaled to the full trace and whose ``sampling``
    metadata carries the selection digest and an MPKI confidence interval.
    Per-table prediction counts, F1 profiles and telemetry are not
    reconstructable from slices and are left empty.
    """
    from ..experiments.runner import PredictionRunResult, run_prediction_only

    if selection is None:
        selection = select_regions(trace, policy)
    per_region: List[AccuracyStats] = []
    simulated = 0
    for region in selection.regions:
        piece, warmup = warmed_interval(trace, region, policy)
        simulated += len(piece)
        per_region.append(
            run_prediction_only(piece, predictor_factory(),
                                warmup=warmup).accuracy)

    instructions = len(trace)
    accuracy = _scaled_accuracy(per_region, selection, instructions)
    mpkis = [stats.mpki() for stats in per_region]
    mpki = sum(r.weight * m for r, m in zip(selection.regions, mpkis))
    half = _ci_half_width(mpkis, selection, mpki)
    return PredictionRunResult(
        accuracy=accuracy,
        sampling=_sampling_metadata(
            selection, simulated, "mpki", mpki, half),
    )
