"""Sampled simulation: SimPoint/LoopPoint region selection + reconstruction.

Full-trace cells are one axis of the suite's throughput ceiling; this
package removes it by simulating only *representative* regions and
reconstructing full-run metrics with explicit error bounds:

1. :mod:`~repro.sampling.features` slices the trace into fixed-length
   regions and fingerprints each with a concatenated **basic-block
   vector** (per-PC execution frequencies, the classic SimPoint feature)
   and **memory-access vector** (stride / footprint / dependence-distance
   histograms — "Memory Access Vectors": sampling fidelity on
   memory-bound workloads needs memory behaviour in the signature), all
   computed vectorised from :class:`~repro.trace.columns.TraceColumns`.
2. :mod:`~repro.sampling.select` projects the signatures with PCA and
   clusters them with BIC-selected k-means (empty clusters re-seeded
   deterministically), yielding each cluster's medoid region, its trace
   share as weight, and a content digest of the whole selection.
3. :mod:`~repro.sampling.reconstruct` simulates only the medoid regions
   (functionally warmed by the preceding interval), scales the measured
   per-instruction rates back to the full run, and attaches per-cell
   confidence intervals derived from intra-cluster dispersion.

:class:`~repro.sampling.policy.SamplingPolicy` is the value-typed knob
object carried on :class:`~repro.experiments.parallel.CellSpec` and
hashed into result-cache keys.
"""

from .features import (
    MAV_STRIDE_BUCKETS,
    MAV_DEP_BUCKETS,
    mav_dim,
    memory_access_vectors,
    num_intervals,
    pc_frequency_vectors,
    region_signatures,
)
from .policy import SamplingPolicy
from .reconstruct import (
    SampledTiming,
    run_sampled_prediction,
    run_sampled_timing,
)
from .select import Region, RegionSelection, pca_project, select_regions

__all__ = [
    "MAV_STRIDE_BUCKETS",
    "MAV_DEP_BUCKETS",
    "mav_dim",
    "memory_access_vectors",
    "num_intervals",
    "pc_frequency_vectors",
    "region_signatures",
    "SamplingPolicy",
    "Region",
    "RegionSelection",
    "pca_project",
    "select_regions",
    "SampledTiming",
    "run_sampled_prediction",
    "run_sampled_timing",
]
