"""Set-associative cache model.

The paper models its memory hierarchy with GEMS; we substitute a classic
set-associative LRU cache usable at every level.  Only hit/miss behaviour
and latency matter to the experiments (no coherence, no data values): SMB's
benefit is measured against how long a load would otherwise take, which this
model supplies.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["Cache", "CacheStats"]


class CacheStats:
    """Hit/miss counters for one cache level."""

    __slots__ = ("accesses", "hits", "misses", "evictions", "prefetch_fills")

    def __init__(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.prefetch_fills = 0

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def __repr__(self) -> str:
        return (
            f"CacheStats(accesses={self.accesses}, hits={self.hits}, "
            f"misses={self.misses})"
        )


class Cache:
    """A single set-associative cache level with true-LRU replacement.

    Sizes are given in bytes; ``line_size`` must be a power of two.  LRU
    order is maintained with per-set lists of line addresses ordered from
    least- to most-recently used, which is simple and fast at the
    associativities involved (8–12 ways).
    """

    def __init__(self, name: str, size_bytes: int, ways: int, line_size: int = 64):
        if size_bytes <= 0 or ways <= 0 or line_size <= 0:
            raise ValueError("cache geometry must be positive")
        if line_size & (line_size - 1):
            raise ValueError("line size must be a power of two")
        if size_bytes % (ways * line_size):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by ways*line "
                f"({ways}*{line_size})"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.line_size = line_size
        self.num_sets = size_bytes // (ways * line_size)
        self._offset_bits = line_size.bit_length() - 1
        # Power-of-two set counts index with a mask; others fall back to
        # modulo (both geometries appear in sensitivity sweeps).
        self._set_mask = (
            self.num_sets - 1
            if self.num_sets & (self.num_sets - 1) == 0 else None
        )
        self.stats = CacheStats()
        # set index -> list of tags, LRU first.
        self._sets: Dict[int, List[int]] = {}

    def _line(self, address: int) -> int:
        return address >> self._offset_bits

    def _set_index(self, line: int) -> int:
        if self._set_mask is not None:
            return line & self._set_mask
        return line % self.num_sets

    def lookup(self, address: int, *, fill: bool = True,
               is_prefetch: bool = False) -> bool:
        """Probe the cache; returns True on hit.

        On a miss the line is filled (allocate-on-miss) unless ``fill`` is
        False.  Prefetch fills are counted separately so prefetcher accuracy
        is observable in the stats.
        """
        line = address >> self._offset_bits
        set_mask = self._set_mask
        set_index = (line & set_mask if set_mask is not None
                     else line % self.num_sets)
        ways = self._sets.get(set_index)
        stats = self.stats
        stats.accesses += 1
        if ways is not None and line in ways:
            stats.hits += 1
            # Move to MRU position (no-op when already there).
            if ways[-1] != line:
                ways.remove(line)
                ways.append(line)
            return True
        stats.misses += 1
        if fill:
            # Allocate-on-miss, inline (the line is known absent).
            if ways is None:
                ways = self._sets[set_index] = []
            elif len(ways) >= self.ways:
                ways.pop(0)
                stats.evictions += 1
            ways.append(line)
            if is_prefetch:
                stats.prefetch_fills += 1
        return False

    def contains(self, address: int) -> bool:
        """Non-destructive probe (no stats, no LRU update)."""
        line = address >> self._offset_bits
        set_mask = self._set_mask
        ways = self._sets.get(line & set_mask if set_mask is not None
                              else line % self.num_sets)
        return ways is not None and line in ways

    def fill(self, address: int, *, is_prefetch: bool = False) -> Optional[int]:
        """Insert a line; returns the evicted line address (or None)."""
        line = address >> self._offset_bits
        set_mask = self._set_mask
        set_index = (line & set_mask if set_mask is not None
                     else line % self.num_sets)
        ways = self._sets.get(set_index)
        if ways is None:
            ways = self._sets[set_index] = []
        elif line in ways:
            if ways[-1] != line:
                ways.remove(line)
                ways.append(line)
            return None
        evicted = None
        if len(ways) >= self.ways:
            evicted = ways.pop(0) << self._offset_bits
            self.stats.evictions += 1
        ways.append(line)
        if is_prefetch:
            self.stats.prefetch_fills += 1
        return evicted

    def preload(self, set_index: int, lines: List[int]) -> None:
        """Install one set's content as pre-existing state (LRU first).

        Used by functional warmup (:mod:`repro.memory.warmup`) to place a
        reconstructed steady state without paying per-access replay; the
        fill bypasses the stats counters, exactly like state inherited
        from before a measurement window.
        """
        if not 0 <= set_index < self.num_sets:
            raise ValueError(f"{self.name}: set {set_index} out of range")
        if len(lines) > self.ways:
            raise ValueError(
                f"{self.name}: {len(lines)} lines exceed {self.ways} ways"
            )
        self._sets[set_index] = list(lines)

    def reset(self) -> None:
        self._sets.clear()
        self.stats = CacheStats()

    def __repr__(self) -> str:
        return (
            f"Cache({self.name}, {self.size_bytes // 1024}KB, "
            f"{self.ways}-way, {self.num_sets} sets)"
        )
