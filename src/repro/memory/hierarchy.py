"""Three-level cache hierarchy with Table I's Golden Cove parameters.

``MemoryHierarchy.load_latency(pc, address)`` is the single entry point the
timing pipeline uses: it probes L1D → L2 → L3, fills on the way back, feeds
the IP-stride prefetcher, and returns the access latency in cycles.  Stores
probe without timing consequence in our model (the store buffer hides store
latency; Table I's machine drains stores post-commit).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .cache import Cache
from .mshr import MSHRFile
from .prefetch import IPStridePrefetcher

__all__ = ["HierarchyConfig", "MemoryHierarchy"]


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and latencies of the modelled hierarchy (Table I)."""

    l1d_size: int = 48 * 1024
    l1d_ways: int = 12
    l1d_latency: int = 5

    l2_size: int = 1_280 * 1024  # 1.25 MB
    l2_ways: int = 10
    l2_latency: int = 14

    l3_size: int = 12 * 1024 * 1024  # 3 MB/bank x 4 banks
    l3_ways: int = 12
    l3_latency: int = 36

    memory_latency: int = 100
    line_size: int = 64

    prefetch_degree: int = 3
    prefetch_enabled: bool = True

    #: Outstanding-miss registers at the L1D (Table I: 64 MSHRs); 0
    #: disables the bound (infinite MLP).
    mshr_entries: int = 64

    def __post_init__(self) -> None:
        for name in ("l1d_latency", "l2_latency", "l3_latency", "memory_latency"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if not (self.l1d_latency < self.l2_latency < self.l3_latency
                < self.memory_latency):
            raise ValueError("latencies must increase down the hierarchy")


class MemoryHierarchy:
    """L1D + L2 + L3 + memory with an L1D IP-stride prefetcher."""

    def __init__(self, config: Optional[HierarchyConfig] = None):
        self.config = config or HierarchyConfig()
        c = self.config
        self.l1d = Cache("L1D", c.l1d_size, c.l1d_ways, c.line_size)
        self.l2 = Cache("L2", c.l2_size, c.l2_ways, c.line_size)
        self.l3 = Cache("L3", c.l3_size, c.l3_ways, c.line_size)
        self.prefetcher = IPStridePrefetcher(degree=c.prefetch_degree)
        self.mshrs = (
            MSHRFile(c.mshr_entries) if c.mshr_entries > 0 else None
        )
        # Hot-path constants hoisted out of the per-load attribute chain
        # (the config dataclass is frozen, so these can never go stale).
        self._lat_l1d = c.l1d_latency
        self._lat_l2 = c.l2_latency
        self._lat_l3 = c.l3_latency
        self._lat_mem = c.memory_latency
        self._line_shift = c.line_size.bit_length() - 1
        self._prefetch_enabled = c.prefetch_enabled

    def load_latency(self, pc: int, address: int) -> int:
        """Demand load: probe the hierarchy and return latency in cycles."""
        latency = self._access(address)
        if self._prefetch_enabled:
            for prefetch_addr in self.prefetcher.observe(pc, address):
                self._prefetch(prefetch_addr)
        return latency

    def timed_load(self, pc: int, address: int, now: int) -> int:
        """Demand load at cycle ``now``; returns the completion cycle.

        Misses pass through the L1D MSHR file (Table I: 64 entries): when
        all registers hold outstanding fills, a new miss waits for the
        earliest fill to retire, bounding memory-level parallelism exactly
        as the hardware does.  Secondary misses to an in-flight line merge
        and complete with the original fill.
        """
        latency = self._access(address)
        if self._prefetch_enabled:
            for prefetch_addr in self.prefetcher.observe(pc, address):
                self._prefetch(prefetch_addr)
        if self.mshrs is None or latency <= self._lat_l1d:
            return now + latency
        _, completion = self.mshrs.request(
            address >> self._line_shift, now, latency)
        return completion

    def store_probe(self, address: int) -> None:
        """Bring a store's line in (write-allocate); no timing effect."""
        self._access(address)

    def _access(self, address: int) -> int:
        # lookup() allocates on miss, so a miss at level N both probes and
        # fills level N; deeper levels are only touched after a miss.
        if self.l1d.lookup(address):
            return self._lat_l1d
        if self.l2.lookup(address):
            return self._lat_l2
        if self.l3.lookup(address):
            return self._lat_l3
        return self._lat_mem

    def _prefetch(self, address: int) -> None:
        """Prefetch into L1D (and outer levels) without demand stats."""
        if self.l1d.contains(address):
            return
        self.l1d.fill(address, is_prefetch=True)
        if not self.l2.contains(address):
            self.l2.fill(address, is_prefetch=True)

    def reset(self) -> None:
        self.l1d.reset()
        self.l2.reset()
        self.l3.reset()
        self.prefetcher.reset()
        if self.mshrs is not None:
            self.mshrs.reset()
