"""Cache hierarchy substrate (Table I memory parameters)."""

from .cache import Cache, CacheStats
from .hierarchy import HierarchyConfig, MemoryHierarchy
from .mshr import MSHRFile
from .prefetch import IPStridePrefetcher, StrideEntry

__all__ = [
    "Cache",
    "CacheStats",
    "HierarchyConfig",
    "MemoryHierarchy",
    "MSHRFile",
    "IPStridePrefetcher",
    "StrideEntry",
]
