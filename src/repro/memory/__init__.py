"""Cache hierarchy substrate (Table I memory parameters)."""

from .cache import Cache, CacheStats
from .hierarchy import HierarchyConfig, MemoryHierarchy
from .mshr import MSHRFile
from .prefetch import IPStridePrefetcher, StrideEntry
from .warmup import (
    WarmupIndex,
    memory_access_stream,
    preload_cache,
    warm_hierarchy,
)

__all__ = [
    "Cache",
    "CacheStats",
    "HierarchyConfig",
    "MemoryHierarchy",
    "MSHRFile",
    "IPStridePrefetcher",
    "StrideEntry",
    "WarmupIndex",
    "memory_access_stream",
    "preload_cache",
    "warm_hierarchy",
]
