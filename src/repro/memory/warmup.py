"""Functional cache warmup: reconstruct LRU state without replaying.

Sampled simulation (:mod:`repro.sampling`) measures a region mid-trace,
but a freshly built :class:`~repro.memory.hierarchy.MemoryHierarchy`
starts cold — and the L3 alone holds ~200k lines, so replaying enough of
the trace to warm it would cost more than the sampling saves.  This
module rebuilds the caches' steady state directly from the memory-access
stream preceding the region, in a few vectorised passes.

The reconstruction rule: for a true-LRU set-associative cache with
allocate-on-miss and move-to-MRU-on-hit, the content of each set after
an access stream is the set's last ``ways`` *distinct* lines, ordered by
last access.  For the L1D — which observes every demand access — this is
the exact final state.  The outer levels observe only the inner levels'
misses, so their true recency order is by last *miss*, not last access;
using last access instead is the classic Memory Timestamp Record
approximation (Barr et al., ISPASS 2005): a line recently re-accessed
through an inner-level hit is assumed still resident and warm in the
outer levels too.  Prefetcher-inserted lines and MSHR occupancy are
transient and not reconstructed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..trace.columns import OP_CODES, TraceColumns
from ..trace.uop import MicroOp, OpClass
from .cache import Cache
from .hierarchy import MemoryHierarchy

__all__ = [
    "WarmupIndex",
    "memory_access_stream",
    "preload_cache",
    "warm_hierarchy",
]


def memory_access_stream(
    trace: Sequence[MicroOp],
) -> Tuple[np.ndarray, np.ndarray]:
    """(positions, addresses) of the trace's memory accesses, in order.

    Loads and stores both probe the hierarchy
    (:meth:`~repro.memory.hierarchy.MemoryHierarchy.store_probe` models
    write-allocate), so both appear in the stream.  ``positions`` are uop
    sequence numbers — callers cut the stream at a region boundary with
    ``np.searchsorted(positions, start)``.
    """
    cols = TraceColumns.ensure(trace)
    mask = (cols.op == OP_CODES[OpClass.LOAD]) | (
        cols.op == OP_CODES[OpClass.STORE])
    return np.flatnonzero(mask), cols.address[mask]


class WarmupIndex:
    """Reusable index for warming hierarchies at many trace positions.

    The naive per-position reconstruction re-sorts the whole access
    prefix for every region — O(k · N log N) across a selection.  This
    index pays one stable sort of the access stream grouped by line,
    after which the state before any cut falls out of a single O(N)
    ``maximum.reduceat`` pass: within each line's group the access
    indices ascend, so the largest index below the cut is that line's
    last access before it (and lines whose group holds no such index are
    not yet resident).
    """

    def __init__(self, positions: np.ndarray, addresses: np.ndarray,
                 line_size: int):
        self.positions = positions
        shift = line_size.bit_length() - 1
        lines = addresses >> shift
        order = np.argsort(lines, kind="stable")
        sorted_lines = lines[order]
        if len(sorted_lines):
            first = np.r_[True, sorted_lines[1:] != sorted_lines[:-1]]
            self._group_starts = np.flatnonzero(first)
            self._group_lines = sorted_lines[self._group_starts]
        else:
            self._group_starts = np.zeros(0, dtype=np.int64)
            self._group_lines = sorted_lines
        self._access_index = order

    @classmethod
    def from_trace(cls, trace: Sequence[MicroOp],
                   line_size: int) -> "WarmupIndex":
        positions, addresses = memory_access_stream(trace)
        return cls(positions, addresses, line_size)

    def state_before(self, start: int) -> Tuple[np.ndarray, np.ndarray]:
        """(unique_lines, last_access) for the stream before uop ``start``."""
        if not len(self._group_lines):
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty
        cut = int(np.searchsorted(self.positions, start))
        candidate = np.where(self._access_index < cut,
                             self._access_index, -1)
        last = np.maximum.reduceat(candidate, self._group_starts)
        present = last >= 0
        return self._group_lines[present], last[present]

    def warm(self, hierarchy: MemoryHierarchy, start: int) -> None:
        """Preload every level with the state before uop ``start``."""
        unique_lines, last_access = self.state_before(start)
        for cache in (hierarchy.l1d, hierarchy.l2, hierarchy.l3):
            preload_cache(cache, unique_lines, last_access)


def _last_occurrences(lines: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct lines with the stream position of their last access."""
    reversed_lines = lines[::-1]
    unique, first_in_reversed = np.unique(reversed_lines, return_index=True)
    return unique, lines.shape[0] - 1 - first_in_reversed


def preload_cache(cache: Cache, unique_lines: np.ndarray,
                  last_access: np.ndarray) -> None:
    """Install the reconstructed LRU state into one cache level."""
    if unique_lines.shape[0] == 0:
        return
    if cache._set_mask is not None:
        set_index = unique_lines & cache._set_mask
    else:
        set_index = unique_lines % cache.num_sets
    order = np.lexsort((last_access, set_index))
    sorted_sets = set_index[order]
    sorted_lines = unique_lines[order]
    boundaries = np.flatnonzero(np.diff(sorted_sets)) + 1
    starts = np.concatenate(([0], boundaries))
    ends = np.concatenate((boundaries, [sorted_sets.shape[0]]))
    ways = cache.ways
    for a, b in zip(starts, ends):
        take = sorted_lines[max(a, b - ways):b]
        cache.preload(int(sorted_sets[a]), [int(line) for line in take])


def warm_hierarchy(hierarchy: MemoryHierarchy,
                   addresses: np.ndarray) -> None:
    """Warm every cache level from an in-order address stream.

    ``addresses`` is the demand stream (loads + stores) preceding the
    measurement point, as produced by :func:`memory_access_stream`.  All
    levels share the hierarchy's line size, so the distinct-line/last-
    access computation is done once and regrouped per level's geometry.
    """
    if addresses.shape[0] == 0:
        return
    shift = hierarchy.config.line_size.bit_length() - 1
    lines = addresses >> shift
    unique_lines, last_access = _last_occurrences(lines)
    for cache in (hierarchy.l1d, hierarchy.l2, hierarchy.l3):
        preload_cache(cache, unique_lines, last_access)
