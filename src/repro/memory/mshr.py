"""Miss-status holding registers (MSHRs).

Table I gives every cache level 64 MSHRs.  MSHRs bound the number of
outstanding misses: a miss that finds all registers busy must wait for the
earliest outstanding fill to complete before it can even be issued to the
next level.  Misses to a line that already has an MSHR allocated merge into
it (secondary misses) and complete with the original fill.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

__all__ = ["MSHRFile"]


class MSHRFile:
    """A bounded set of outstanding line fills.

    The timing model is trace-driven rather than globally event-driven, so
    requests may arrive with non-monotonic timestamps; the file keeps
    (line, completion-time) pairs and expires them lazily against each
    request's own clock.  This approximates hardware behaviour well at the
    occupancy levels that matter (full vs not-full).
    """

    def __init__(self, entries: int = 64):
        if entries <= 0:
            raise ValueError("MSHR count must be positive")
        self.entries = entries
        #: line -> completion time of its outstanding fill.
        self._outstanding: Dict[int, int] = {}
        self.primary_misses = 0
        self.secondary_misses = 0
        self.stalls = 0

    def _expire(self, now: int) -> None:
        dead = [line for line, done in self._outstanding.items()
                if done <= now]
        for line in dead:
            del self._outstanding[line]

    def request(self, line: int, now: int, fill_latency: int) -> Tuple[int, int]:
        """Register a miss for ``line`` at time ``now``.

        Returns ``(start_time, completion_time)``: the miss begins at
        ``start_time`` (delayed past ``now`` when the file is full) and the
        line is filled at ``completion_time``.  A secondary miss to an
        already-outstanding line returns the existing completion time.
        """
        self._expire(now)
        existing = self._outstanding.get(line)
        if existing is not None:
            self.secondary_misses += 1
            return now, existing

        start = now
        if len(self._outstanding) >= self.entries:
            # Wait for the earliest outstanding fill to free a register.
            self.stalls += 1
            start = min(self._outstanding.values())
            self._expire(start)
            # The expiry above is guaranteed to free at least one slot.
        completion = start + fill_latency
        self._outstanding[line] = completion
        self.primary_misses += 1
        return start, completion

    @property
    def occupancy(self) -> int:
        return len(self._outstanding)

    def reset(self) -> None:
        self._outstanding.clear()
        self.primary_misses = 0
        self.secondary_misses = 0
        self.stalls = 0
