"""IP-stride prefetcher (Table I: "IP-stride with a prefetch degree of 3").

Per-load-PC stride detection: when the same static load exhibits a stable
address stride across consecutive executions, the next ``degree`` strided
lines are pushed into the L1D.  The table is small and direct-mapped like a
real IP-stride engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..common.bitops import mask

__all__ = ["IPStridePrefetcher", "StrideEntry"]


@dataclass(slots=True)
class StrideEntry:
    """One IP-stride table entry."""

    tag: int = -1
    last_address: int = 0
    stride: int = 0
    confidence: int = 0  # 2-bit


class IPStridePrefetcher:
    """Classic per-PC stride prefetcher."""

    def __init__(self, table_bits: int = 8, degree: int = 3,
                 confidence_threshold: int = 2):
        if degree <= 0:
            raise ValueError("prefetch degree must be positive")
        self.table_bits = table_bits
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        self._index_mask = mask(table_bits)
        self._table = [StrideEntry() for _ in range(1 << table_bits)]
        self.issued = 0

    def observe(self, pc: int, address: int) -> List[int]:
        """Record a demand access; return addresses to prefetch."""
        index = (pc >> 1) & self._index_mask
        tag = pc >> (1 + self.table_bits)
        entry = self._table[index]

        if entry.tag != tag:
            self._table[index] = StrideEntry(tag=tag, last_address=address)
            return []

        stride = address - entry.last_address
        matched = stride == entry.stride and stride != 0
        if matched:
            entry.confidence = min(3, entry.confidence + 1)
        else:
            entry.confidence = max(0, entry.confidence - 1)
            if entry.confidence == 0:
                entry.stride = stride
        entry.last_address = address

        # Only run ahead when this access itself followed the stride — a
        # break in the pattern must not launch prefetches down the old one.
        if matched and entry.confidence >= self.confidence_threshold:
            prefetches = [
                address + entry.stride * (i + 1) for i in range(self.degree)
            ]
            self.issued += len(prefetches)
            return prefetches
        return []

    def reset(self) -> None:
        self._table = [StrideEntry() for _ in range(1 << self.table_bits)]
        self.issued = 0
