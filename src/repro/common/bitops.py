"""Bit-manipulation helpers shared by predictors and history registers.

All predictor structures in this package (MASCOT, PHAST, NoSQ, the branch
predictors) index their tables with *folded* combinations of program counters
and history bits.  These helpers centralise the masking/folding arithmetic so
that every structure computes indices the same way and the storage-accounting
code in :mod:`repro.predictors.sizing` can reason about field widths.
"""

from __future__ import annotations

__all__ = [
    "mask",
    "bits_required",
    "fold_bits",
    "extract_bits",
    "rotate_left",
    "parity",
]


def mask(width: int) -> int:
    """Return a bit-mask of ``width`` ones (``mask(3) == 0b111``).

    ``width`` must be non-negative; ``mask(0)`` is 0.
    """
    if width < 0:
        raise ValueError(f"mask width must be >= 0, got {width}")
    return (1 << width) - 1


def bits_required(value: int) -> int:
    """Number of bits needed to represent ``value`` (``0`` needs 1 bit)."""
    if value < 0:
        raise ValueError(f"bits_required is defined for non-negative values, got {value}")
    return max(1, value.bit_length())


def fold_bits(value: int, in_width: int, out_width: int) -> int:
    """XOR-fold the low ``in_width`` bits of ``value`` down to ``out_width`` bits.

    This is the classic TAGE folding operation: the input is split into
    ``out_width``-bit chunks which are XOR-ed together.  Folding a value into
    itself (``in_width <= out_width``) simply masks it.
    """
    if out_width <= 0:
        return 0
    value &= mask(in_width)
    folded = 0
    while value:
        folded ^= value & mask(out_width)
        value >>= out_width
    return folded


def extract_bits(value: int, low: int, width: int) -> int:
    """Return ``width`` bits of ``value`` starting at bit ``low``."""
    return (value >> low) & mask(width)


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate the low ``width`` bits of ``value`` left by ``amount``."""
    if width <= 0:
        return 0
    amount %= width
    value &= mask(width)
    return ((value << amount) | (value >> (width - amount))) & mask(width)


def parity(value: int) -> int:
    """Return the XOR of all bits of ``value`` (0 or 1)."""
    if value < 0:
        raise ValueError("parity is defined for non-negative values")
    result = 0
    while value:
        result ^= value & 1
        value >>= 1
    return result
