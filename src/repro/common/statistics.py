"""Small statistics helpers used by the experiment harness.

The paper reports geometric-mean IPC ratios (Figs. 7, 9, 11, 12, 15),
per-benchmark histograms (Figs. 2, 10, 13) and averaged rankings (Fig. 14).
These helpers keep that arithmetic in one audited place.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

__all__ = [
    "geometric_mean",
    "arithmetic_mean",
    "normalise",
    "percent_change",
    "Histogram",
    "f1_score",
]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    Raises ``ValueError`` on an empty sequence or non-positive values, which
    would silently corrupt a speedup summary.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain mean; raises on an empty sequence."""
    values = list(values)
    if not values:
        raise ValueError("mean of an empty sequence")
    return sum(values) / len(values)


def normalise(values: Mapping[str, float], baseline: Mapping[str, float]) -> Dict[str, float]:
    """Per-key ratio ``values[k] / baseline[k]``.

    Used to normalise per-benchmark IPC to the perfect-MDP predictor as every
    IPC figure in the paper does.  Keys missing from either side raise.
    """
    out: Dict[str, float] = {}
    for key, value in values.items():
        if key not in baseline:
            raise KeyError(f"baseline is missing benchmark {key!r}")
        base = baseline[key]
        if base <= 0:
            raise ValueError(f"non-positive baseline value for {key!r}: {base}")
        out[key] = value / base
    return out


def percent_change(new: float, old: float) -> float:
    """``(new - old) / old`` in percent."""
    if old == 0:
        raise ValueError("percent change relative to zero")
    return 100.0 * (new - old) / old


def f1_score(true_positives: int, false_positives: int, false_negatives: int) -> float:
    """F1 = harmonic mean of precision and recall (paper footnote 2).

    Returns 0.0 when the entry made no positive predictions and had no
    positives to find (an unused entry scores 0, matching the tuning
    methodology in Sec. IV-F where unused entries rank last).
    """
    denominator = 2 * true_positives + false_positives + false_negatives
    if denominator == 0:
        return 0.0
    return 2 * true_positives / denominator


class Histogram:
    """A named-bucket counter with percentage views.

    Used for the SMB-opportunity mix (Fig. 2), prediction-type mix (Fig. 10)
    and per-table prediction distribution (Fig. 13).
    """

    def __init__(self, buckets: Sequence[str]):
        if not buckets:
            raise ValueError("histogram needs at least one bucket")
        if len(set(buckets)) != len(buckets):
            raise ValueError("duplicate bucket names")
        self._counts: Dict[str, int] = {name: 0 for name in buckets}

    @property
    def buckets(self) -> List[str]:
        return list(self._counts)

    def add(self, bucket: str, count: int = 1) -> None:
        if bucket not in self._counts:
            raise KeyError(f"unknown bucket {bucket!r}")
        if count < 0:
            raise ValueError("count must be non-negative")
        self._counts[bucket] += count

    def count(self, bucket: str) -> int:
        return self._counts[bucket]

    def total(self) -> int:
        return sum(self._counts.values())

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def percentages(self, denominator: int = 0) -> Dict[str, float]:
        """Bucket shares in percent.

        ``denominator`` overrides the total (Fig. 2 reports buckets as a
        percentage of *all executed loads*, not of dependent loads only).
        """
        denom = denominator or self.total()
        if denom == 0:
            return {name: 0.0 for name in self._counts}
        return {name: 100.0 * c / denom for name, c in self._counts.items()}

    def merge(self, other: "Histogram") -> None:
        """Accumulate another histogram with identical buckets."""
        if set(other._counts) != set(self._counts):
            raise ValueError("histograms have different buckets")
        for name, count in other._counts.items():
            self._counts[name] += count

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self._counts.items())
        return f"Histogram({inner})"
