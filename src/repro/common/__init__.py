"""Shared low-level infrastructure: bit ops, counters, history, statistics."""

from .bitops import bits_required, extract_bits, fold_bits, mask, parity, rotate_left
from .counters import SaturatingCounter
from .hashing import mix64, table_index, table_tag
from .history import (
    INDIRECT_TARGET_BITS,
    FoldedRegister,
    GlobalHistory,
    PathHistory,
)
from .statistics import (
    Histogram,
    arithmetic_mean,
    f1_score,
    geometric_mean,
    normalise,
    percent_change,
)

__all__ = [
    "bits_required",
    "extract_bits",
    "fold_bits",
    "mask",
    "parity",
    "rotate_left",
    "SaturatingCounter",
    "mix64",
    "table_index",
    "table_tag",
    "INDIRECT_TARGET_BITS",
    "FoldedRegister",
    "GlobalHistory",
    "PathHistory",
    "Histogram",
    "arithmetic_mean",
    "f1_score",
    "geometric_mean",
    "normalise",
    "percent_change",
]
