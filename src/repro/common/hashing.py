"""Index/tag hash functions for tagged-table predictors.

All the TAGE-like structures in this package compute, per table:

* an **index** selecting a set, from the load PC, a folded window of global
  history and the path history;
* a **tag** stored in / compared against the entry, from the same inputs but
  folded with a different alignment so that index and tag decorrelate.

The exact hash in the paper is unspecified (as is traditional for TAGE
papers); we follow the standard TAGE recipe of XOR-ing PC shifts with one or
two differently-folded history registers.

This module also hosts :func:`stable_digest`, the content-addressing hash
used by the on-disk result cache (:mod:`repro.experiments.result_cache`):
unlike the table hashes above it must be stable across processes and
interpreter invocations, so it is built on canonical JSON + SHA-256 rather
than anything touching ``hash()``.
"""

from __future__ import annotations

import hashlib
import json

from .bitops import fold_bits, mask

__all__ = ["table_index", "table_tag", "mix64", "stable_digest"]


def stable_digest(payload: object) -> str:
    """SHA-256 hex digest of the canonical JSON encoding of ``payload``.

    ``payload`` must be built from JSON-serialisable types (dicts, lists,
    tuples, strings, numbers, booleans, None).  Keys are sorted and
    separators fixed so the digest is independent of insertion order and
    whitespace; tuples encode identically to lists.
    """
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def mix64(value: int) -> int:
    """A cheap 64-bit integer mixer (splitmix64 finaliser).

    Used where a software model needs a well-spread hash (e.g. direct-mapped
    Store Sets SSIT indexing) without pretending to be hardware-exact.
    """
    value &= mask(64)
    value = (value ^ (value >> 30)) * 0xBF58476D1CE4E5B9 & mask(64)
    value = (value ^ (value >> 27)) * 0x94D049BB133111EB & mask(64)
    return value ^ (value >> 31)


def table_index(
    pc: int,
    index_bits: int,
    folded_index: int,
    path_history: int = 0,
    table_number: int = 0,
) -> int:
    """Compute a set index for one tagged table.

    ``folded_index`` must already be folded to ``index_bits`` (the caller owns
    the :class:`~repro.common.history.FoldedRegister`).  The table number is
    mixed in so that the zero-history table of two different predictors (or
    two tables with identical history lengths) do not collide systematically.
    """
    if index_bits <= 0:
        return 0
    pc >>= 1  # instruction alignment
    value = pc ^ (pc >> index_bits) ^ (pc >> (2 * index_bits))
    value ^= folded_index
    value ^= fold_bits(path_history, max(path_history.bit_length(), 1), index_bits)
    value ^= table_number * 0x9E37  # small odd-ish constant per table
    return value & mask(index_bits)


def table_tag(
    pc: int,
    tag_bits: int,
    folded_tag: int,
    folded_tag2: int = 0,
) -> int:
    """Compute an entry tag for one tagged table.

    Follows the TAGE convention ``tag = pc ^ fold(hist, W) ^ (fold(hist,
    W-1) << 1)``: the second fold (one bit narrower, shifted left) breaks the
    symmetry that would otherwise make tag collisions correlate with index
    collisions.
    """
    if tag_bits <= 0:
        return 0
    pc >>= 1
    value = pc ^ (pc >> tag_bits)
    value ^= folded_tag ^ (folded_tag2 << 1)
    return value & mask(tag_bits)
