"""Saturating counters.

MASCOT entries carry two independent saturating counters (a 3-bit usefulness
counter for MDP confidence and a 2-bit bypass counter for SMB confidence);
PHAST uses a 4-bit usefulness counter and NoSQ a 7-bit confidence counter.
This module provides a single well-tested implementation used by all of them.
"""

from __future__ import annotations

from .bitops import mask

__all__ = ["SaturatingCounter"]


class SaturatingCounter:
    """An unsigned saturating counter of a configurable bit width.

    The counter saturates at ``2**bits - 1`` on increment and at 0 on
    decrement.  Instances compare equal to their integer value, which keeps
    predictor code readable (``if entry.usefulness == 0``).
    """

    __slots__ = ("_bits", "_max", "_value")

    def __init__(self, bits: int, initial: int = 0):
        if bits <= 0:
            raise ValueError(f"counter width must be positive, got {bits}")
        self._bits = bits
        self._max = mask(bits)
        if not 0 <= initial <= self._max:
            raise ValueError(
                f"initial value {initial} out of range for a {bits}-bit counter"
            )
        self._value = initial

    @property
    def bits(self) -> int:
        """Bit width of the counter (used for storage accounting)."""
        return self._bits

    @property
    def value(self) -> int:
        return self._value

    @property
    def maximum(self) -> int:
        """Largest representable value (the saturation point)."""
        return self._max

    def increment(self, amount: int = 1) -> int:
        """Add ``amount`` (default 1), saturating at the maximum."""
        if amount < 0:
            raise ValueError("use decrement() for negative adjustments")
        self._value = min(self._max, self._value + amount)
        return self._value

    def decrement(self, amount: int = 1) -> int:
        """Subtract ``amount`` (default 1), saturating at zero."""
        if amount < 0:
            raise ValueError("use increment() for positive adjustments")
        self._value = max(0, self._value - amount)
        return self._value

    def reset(self, value: int = 0) -> None:
        """Force the counter to ``value`` (must be representable)."""
        if not 0 <= value <= self._max:
            raise ValueError(f"{value} out of range for a {self._bits}-bit counter")
        self._value = value

    def is_saturated(self) -> bool:
        return self._value == self._max

    def is_zero(self) -> bool:
        return self._value == 0

    # Integer-like behaviour -------------------------------------------------

    def __int__(self) -> int:
        return self._value

    def __index__(self) -> int:
        return self._value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, SaturatingCounter):
            return self._value == other._value
        if isinstance(other, int):
            return self._value == other
        return NotImplemented

    def __lt__(self, other) -> bool:
        return self._value < int(other)

    def __le__(self, other) -> bool:
        return self._value <= int(other)

    def __gt__(self, other) -> bool:
        return self._value > int(other)

    def __ge__(self, other) -> bool:
        return self._value >= int(other)

    def __hash__(self) -> int:
        return hash((self._bits, self._value))

    def __repr__(self) -> str:
        return f"SaturatingCounter(bits={self._bits}, value={self._value})"
