"""Vectorised fold-value series for a branch stream known ahead of time.

The batched engine replays the *architectural* branch-outcome stream, which
is a pure function of the trace — so every folded-history register value a
predictor will ever observe during a run can be computed up front with
numpy, instead of updating ~20 registers per conditional branch in Python
(:meth:`FoldVector.push_bit`, the dominant Phase A cost).

The closed form exploits the :class:`~repro.common.history.FoldedRegister`
invariant (see ``GlobalHistory.fold_snapshot``): at all times

    value = XOR over ages a < length of  bit(age a) << (a % width)

which holds from attach (seeded via ``fold_snapshot``) and is preserved by
the update recurrence.  Writing the combined stream (pre-existing history
bits, then the pushed bits) as ``ext``, the bit ``r`` of the value after
``k`` pushes is the parity of a fixed-stride slice of ``ext`` — computable
for *all* ``k`` at once from per-residue prefix parities.  The series is
verified against the live register values at ``k == 0`` on construction,
so a violated invariant degrades to an error instead of silent skew.

:class:`BranchStream` packages the per-event arrays (conditional outcome
bits, indirect targets folded to :data:`INDIRECT_TARGET_BITS` bits) that
feed the plans, and :func:`path_series` gives the matching closed form for
:class:`~repro.common.history.PathHistory`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from .history import INDIRECT_TARGET_BITS
from .foldvec import FoldVector

__all__ = ["BranchStream", "FoldPlan", "path_series"]

_IND_MASK = (1 << INDIRECT_TARGET_BITS) - 1


class BranchStream:
    """Per-event arrays of one trace's architectural branch stream.

    ``kind`` is 0 for conditional, 1 for indirect; ``val`` holds the taken
    bit (conditional) or the target address (indirect); ``pc`` the branch
    PC.  Events are in trace order.  The expanded history bit streams are
    built lazily and cached: :meth:`mixed` interleaves one bit per
    conditional with :data:`INDIRECT_TARGET_BITS` folded target bits per
    indirect (the ``GlobalHistory`` push stream); :meth:`cond_only` keeps
    just the conditional bits (predictors that never see indirects).
    """

    __slots__ = ("kind", "pc", "val", "n_events", "_mixed", "_cond", "_ind")

    def __init__(self, kind: np.ndarray, pc: np.ndarray,
                 val: np.ndarray) -> None:
        self.kind = kind
        self.pc = pc
        self.val = val
        self.n_events = int(kind.shape[0])
        self._mixed: Optional[Tuple[np.ndarray, np.ndarray]] = None
        self._cond: Optional[np.ndarray] = None
        self._ind: Optional[np.ndarray] = None

    def mixed(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(bits, offsets)``: the interleaved push stream and, per event,
        the number of bits pushed *before* that event."""
        if self._mixed is None:
            kind = self.kind
            lens = np.where(kind == 0, 1, INDIRECT_TARGET_BITS)
            ofs = np.cumsum(lens) - lens
            total = int(lens.sum())
            bits = np.zeros(total, dtype=np.int64)
            cond = kind == 0
            bits[ofs[cond]] = self.val[cond] & 1
            ind = ~cond
            if ind.any():
                targets = self.val[ind]
                # fold_bits(target, bit_length, 5) == fixed-chunk XOR, since
                # the all-zero high chunks contribute nothing.
                folded = np.zeros(targets.shape[0], dtype=np.int64)
                chunks = max(
                    1, -(-int(targets.max()).bit_length() //
                         INDIRECT_TARGET_BITS),
                )
                for c in range(chunks):
                    folded ^= (targets >> (c * INDIRECT_TARGET_BITS)) \
                        & _IND_MASK
                io = ofs[ind]
                for i in range(INDIRECT_TARGET_BITS):
                    bits[io + i] = (folded >> (
                        INDIRECT_TARGET_BITS - 1 - i)) & 1
            self._mixed = (bits, ofs)
        return self._mixed

    def cond_only(self) -> np.ndarray:
        """Conditional outcome bits only, in event order."""
        if self._cond is None:
            cond = self.kind == 0
            self._cond = (self.val[cond] & 1).astype(np.int64)
        return self._cond

    def ind_only(self) -> np.ndarray:
        """Folded target bits of indirect events only, MSB-first per event
        (the push stream of an ITTAGE's private history)."""
        if self._ind is None:
            targets = self.val[self.kind != 0]
            n = int(targets.shape[0])
            bits = np.zeros(n * INDIRECT_TARGET_BITS, dtype=np.int64)
            if n:
                folded = np.zeros(n, dtype=np.int64)
                chunks = max(
                    1, -(-int(targets.max()).bit_length() //
                         INDIRECT_TARGET_BITS),
                )
                for c in range(chunks):
                    folded ^= (targets >> (c * INDIRECT_TARGET_BITS)) \
                        & _IND_MASK
                for i in range(INDIRECT_TARGET_BITS):
                    bits[i::INDIRECT_TARGET_BITS] = (folded >> (
                        INDIRECT_TARGET_BITS - 1 - i)) & 1
            self._ind = bits
        return self._ind


class FoldPlan:
    """All fold-register values of a :class:`FoldVector` over a bit stream.

    ``series[slot][k]`` is the register value after the first ``k`` bits of
    ``pushed`` (``k == 0`` is the pre-stream state).  Construction verifies
    the ``k == 0`` column against the live register values and raises
    ``RuntimeError`` on mismatch; callers fall back to the incremental
    :meth:`FoldVector.push_bit` path in that case.

    :meth:`finalize` advances the underlying :class:`FoldVector` to the
    post-stream state (values, ring bits, position) so the usual
    ``sync_back`` hand-off applies unchanged.
    """

    __slots__ = ("fv", "series", "_pushed")

    def __init__(self, fv: FoldVector, pushed: np.ndarray) -> None:
        self.fv = fv
        self._pushed = pushed
        n = int(pushed.shape[0])
        ring = np.asarray(fv._ring, dtype=np.int64)
        rmask = fv._ring_mask
        pos = fv._pos
        tracked = fv._ghist.max_bits
        ages = np.arange(tracked)
        init = ring[(pos - 1 - ages) & rmask][::-1]  # oldest first

        lengths = fv._lengths
        widths = fv._widths
        wmax = max(widths, default=1)
        pad = wmax + 8
        ext = np.concatenate(
            [np.zeros(pad, dtype=np.int64), init, pushed])
        base0 = pad + tracked - 1
        out_len = n + 1

        # Per-residue prefix parities, one table per distinct fold width.
        parity_by_width = {}
        series: List[np.ndarray] = []
        for i in range(len(lengths)):
            length = lengths[i]
            width = widths[i]
            if length == 0:
                series.append(np.full(out_len, fv.values[i], dtype=np.int64))
                continue
            pref = parity_by_width.get(width)
            if pref is None:
                tail = (-ext.shape[0]) % width
                padded = np.concatenate(
                    [ext, np.zeros(tail, dtype=np.int64)]) if tail else ext
                pref = np.bitwise_and(
                    np.cumsum(padded.reshape(-1, width), axis=0), 1).ravel()
                parity_by_width[width] = pref
            value = np.zeros(out_len, dtype=np.int64)
            for r in range(min(width, length)):
                span = width * ((length - 1 - r) // width + 1)
                hi = base0 - r
                lo = hi - span
                par = pref[hi:hi + out_len] ^ pref[lo:lo + out_len]
                value ^= par << r if r else par
            series.append(value)

        for i, col in enumerate(series):
            if int(col[0]) != fv.values[i]:
                raise RuntimeError(
                    "fold register out of sync with history bits "
                    f"(slot {i}: {int(col[0])} != {fv.values[i]})"
                )
        self.series = series

    def finalize(self) -> None:
        """Advance the FoldVector to the post-stream state."""
        fv = self.fv
        for i, col in enumerate(self.series):
            fv.values[i] = int(col[-1])
        pushed = self._pushed
        n = int(pushed.shape[0])
        ring = fv._ring
        rmask = fv._ring_mask
        pos = fv._pos
        start = max(0, n - (rmask + 1))
        base = pos + start
        for off, bit in enumerate(pushed[start:].tolist()):
            ring[(base + off) & rmask] = bit
        fv._pos = pos + n


def path_series(initial: int, width: int, bits_per_branch: int,
                chunks: np.ndarray) -> np.ndarray:
    """:class:`PathHistory` values before each of ``n`` pushes (length
    ``n + 1``; index 0 is ``initial``).

    ``chunks`` holds the per-event inserted chunk (``(pc >> 1) & mask``).
    The register is a plain shift-in window, so each value is an OR of the
    last ``ceil(width / bits_per_branch)`` chunks — including, for early
    events, the chunks of the initial value itself.
    """
    nb = -(-width // bits_per_branch)
    wmask = (1 << width) - 1
    bmask = (1 << bits_per_branch) - 1
    n = int(chunks.shape[0])
    init = np.array(
        [(initial >> (a * bits_per_branch)) & bmask
         for a in range(nb - 1, -1, -1)],
        dtype=np.int64,
    )
    ext = np.concatenate([init, chunks])
    values = np.zeros(n + 1, dtype=np.int64)
    base = nb - 1
    for m in range(nb):
        values |= ext[base - m:base - m + n + 1] << (m * bits_per_branch)
    return values & wmask
