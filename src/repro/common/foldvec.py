"""Flattened, ring-buffered mirror of a :class:`GlobalHistory`.

The scalar :class:`~repro.common.history.GlobalHistory` keeps its bits in a
deque and updates each attached :class:`FoldedRegister` by reading the bit
about to leave that register's window — ``self._bits[reg.length - 1]`` —
which is an O(length) deque walk per register per pushed bit.  On the
simulator hot path (every conditional branch updates up to ~20 registers
with windows up to 128 bits) this is the dominant history cost.

:class:`FoldVector` is the batched engine's drop-in mirror: the bits live
in a power-of-two ring (O(1) evicted-bit reads) and the fold values in a
flat list updated with the exact :class:`FoldedRegister` recurrence.  A
session builds one from the live ``GlobalHistory`` at the start of a run
and :meth:`sync_back`\\ s at the end, so the predictor object's state after
a batched run is indistinguishable from a scalar run.  Equivalence against
``GlobalHistory.fold_snapshot`` is property-tested.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

from .bitops import fold_bits
from .history import INDIRECT_TARGET_BITS, GlobalHistory

__all__ = ["FoldVector"]


class FoldVector:
    """Ring-buffered history bits plus flattened folded registers."""

    __slots__ = ("_ghist", "_ring", "_ring_mask", "_pos", "_keys",
                 "_lengths", "_widths", "_evict_xor", "_masks", "values",
                 "_slots")

    def __init__(self, ghist: GlobalHistory) -> None:
        self._ghist = ghist
        size = 1
        while size < ghist.max_bits:
            size <<= 1
        self._ring_mask = size - 1
        ring = [0] * size
        # ghist.bits() returns newest-first; lay the ring out oldest-first
        # so the bit of age k sits at (pos - 1 - k) & mask.
        pos = 0
        for bit in reversed(ghist.bits(ghist.max_bits)):
            ring[pos] = bit
            pos += 1
        self._ring = ring
        self._pos = pos

        keys: List[Tuple[int, int]] = []
        lengths: List[int] = []
        widths: List[int] = []
        evict_xor: List[int] = []
        masks: List[int] = []
        values: List[int] = []
        for (length, width), reg in ghist._folds.items():
            keys.append((length, width))
            lengths.append(length)
            widths.append(width)
            evict_xor.append((1 << (length % width)) if length else 0)
            masks.append((1 << width) - 1)
            values.append(reg.value)
        self._keys = keys
        self._lengths = lengths
        self._widths = widths
        self._evict_xor = evict_xor
        self._masks = masks
        self.values = values
        self._slots: Dict[Tuple[int, int], int] = {
            key: i for i, key in enumerate(keys)
        }

    def slot(self, length: int, width: int) -> int:
        """Index into :attr:`values` for the ``(length, width)`` register."""
        return self._slots[(length, width)]

    # -- updates ---------------------------------------------------------------

    def push_bit(self, bit: int) -> None:
        """Mirror of ``GlobalHistory._push_bit`` (same recurrence, O(1) reads)."""
        bit &= 1
        pos = self._pos
        ring = self._ring
        rmask = self._ring_mask
        values = self.values
        lengths = self._lengths
        widths = self._widths
        evict_xor = self._evict_xor
        masks = self._masks
        for i in range(len(values)):
            length = lengths[i]
            if length == 0:
                continue
            value = (values[i] << 1) | bit
            value ^= value >> widths[i]
            value &= masks[i]
            if ring[(pos - length) & rmask]:
                value ^= evict_xor[i]
            values[i] = value
        ring[pos & rmask] = bit
        self._pos = pos + 1

    def push_indirect(self, target: int) -> None:
        folded = fold_bits(target, max(target.bit_length(), 1),
                           INDIRECT_TARGET_BITS)
        push = self.push_bit
        for i in range(INDIRECT_TARGET_BITS - 1, -1, -1):
            push((folded >> i) & 1)

    # -- hand-off --------------------------------------------------------------

    def sync_back(self) -> None:
        """Write bits and fold values back into the source GlobalHistory."""
        ghist = self._ghist
        folds = ghist._folds
        for key, value in zip(self._keys, self.values):
            folds[key].value = value
        pos = self._pos
        ring = self._ring
        rmask = self._ring_mask
        newest_first = [ring[(pos - 1 - k) & rmask]
                        for k in range(ghist.max_bits)]
        ghist._bits = deque(newest_first, maxlen=ghist.max_bits)

    def bits(self, length: int) -> List[int]:
        """Most recent ``length`` bits, newest first (test oracle hook)."""
        pos = self._pos
        ring = self._ring
        rmask = self._ring_mask
        return [ring[(pos - 1 - k) & rmask] for k in range(length)]
